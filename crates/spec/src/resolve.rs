//! Resolution: surface syntax → resolved [`Spec`], enforcing the ECL
//! variable discipline (§6.1) with span-carrying diagnostics.

use crate::ast::{Binder, CommuteDecl, FormulaAst, Pattern, SpecAst, TermAst};
use crate::error::{Span, SpecError};
use crate::formula::{CmpOp, Formula, Pred, Side, Term};
use crate::spec::Spec;
use crace_model::{MethodId, MethodSig};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A single `commute` rule resolved against a method table, before any
/// whole-spec well-formedness checks (duplicates, symmetry).
///
/// The pair is stored in canonical orientation (`m1 <= m2`) with the formula
/// swapped to match, so two rules for the same unordered pair compare
/// directly. Tools that need to diagnose rather than reject — the spec
/// linter — resolve rule-by-rule with [`resolve_rule`] and apply their own
/// policy; [`crate::parse`] layers the strict checks on top.
#[derive(Clone, Debug)]
pub struct ResolvedRule {
    /// First method of the canonically-oriented pair (`m1 <= m2`).
    pub m1: MethodId,
    /// Second method of the canonically-oriented pair.
    pub m2: MethodId,
    /// The commutativity condition, oriented to match `(m1, m2)`.
    pub formula: Formula,
    /// Span of the whole `commute` declaration.
    pub span: Span,
    /// Span of the `when` formula alone (the interesting part of most
    /// rule-level diagnostics).
    pub formula_span: Span,
    /// Whether the declaration named the pair in the reverse order
    /// (`(m2, m1)`) and was swapped into canonical orientation.
    pub swapped: bool,
}

/// Resolves the `method` declarations of a parsed spec into a method table,
/// rejecting duplicate names.
pub fn resolve_methods(ast: &SpecAst) -> Result<Vec<MethodSig>, SpecError> {
    let mut methods: Vec<MethodSig> = Vec::new();
    let mut seen: HashMap<&str, ()> = HashMap::new();
    for decl in &ast.methods {
        if seen.insert(decl.name.as_str(), ()).is_some() {
            return Err(SpecError::new(
                format!("method `{}` declared twice", decl.name),
                decl.span,
            ));
        }
        methods.push(MethodSig::new(decl.name.clone(), decl.args.len()));
    }
    Ok(methods)
}

/// Resolves one `commute` declaration against a method table.
///
/// Checks everything local to the rule (unknown methods, arity, variable
/// discipline, cross-action atom shape) but none of the whole-spec
/// invariants — callers that want those use [`crate::parse`].
pub fn resolve_rule(rule: &CommuteDecl, methods: &[MethodSig]) -> Result<ResolvedRule, SpecError> {
    let by_name: HashMap<&str, MethodId> = methods
        .iter()
        .enumerate()
        .map(|(i, sig)| (sig.name(), MethodId(i as u32)))
        .collect();
    let (m1, bind1) = bind_pattern(&rule.first, methods, &by_name, Side::First)?;
    let (m2, bind2) = bind_pattern(&rule.second, methods, &by_name, Side::Second)?;
    // A name bound in both patterns would be ambiguous in the formula.
    for (name, (_, _, span)) in &bind2 {
        if bind1.contains_key(name.as_str()) {
            return Err(SpecError::new(
                format!(
                    "variable `{name}` is bound by both action patterns; \
                     use distinct names for the two actions"
                ),
                *span,
            ));
        }
    }
    let mut bindings = bind1;
    bindings.extend(bind2);
    let formula = resolve_formula(&rule.formula, &bindings)?;

    let ((m1, m2), oriented, swapped) = if m1 <= m2 {
        ((m1, m2), formula, false)
    } else {
        ((m2, m1), formula.swap_sides(), true)
    };
    Ok(ResolvedRule {
        m1,
        m2,
        formula: oriented,
        span: rule.span,
        formula_span: rule.formula.span(),
        swapped,
    })
}

/// Resolves one parsed `spec` block.
pub fn resolve(ast: &SpecAst) -> Result<Spec, SpecError> {
    let methods = resolve_methods(ast)?;

    let mut rules: BTreeMap<(MethodId, MethodId), Formula> = BTreeMap::new();
    let mut spans: BTreeMap<(MethodId, MethodId), Span> = BTreeMap::new();
    for rule in &ast.rules {
        let resolved = resolve_rule(rule, &methods)?;
        let key = (resolved.m1, resolved.m2);
        if rules.contains_key(&key) {
            return Err(SpecError::new(
                format!(
                    "duplicate commute rule for pair ({}, {})",
                    methods[key.0.index()].name(),
                    methods[key.1.index()].name()
                ),
                rule.span,
            ));
        }
        if key.0 == key.1 && !is_symmetric(&resolved.formula) {
            return Err(SpecError::new(
                format!(
                    "commutativity of ({0}, {0}) must be symmetric: \
                     ϕ(x⃗₁;x⃗₂) must be equivalent to ϕ(x⃗₂;x⃗₁)",
                    methods[key.0.index()].name()
                ),
                resolved.formula_span,
            ));
        }
        spans.insert(key, resolved.span);
        rules.insert(key, resolved.formula);
    }

    Ok(Spec::from_parts(ast.name.clone(), methods, rules, spans))
}

type Bindings = HashMap<String, (Side, usize, Span)>;

fn bind_pattern(
    pattern: &Pattern,
    methods: &[MethodSig],
    by_name: &HashMap<&str, MethodId>,
    side: Side,
) -> Result<(MethodId, Bindings), SpecError> {
    let id = *by_name.get(pattern.method.as_str()).ok_or_else(|| {
        SpecError::new(format!("unknown method `{}`", pattern.method), pattern.span)
    })?;
    let sig = &methods[id.index()];
    if pattern.args.len() != sig.num_args() {
        return Err(SpecError::new(
            format!(
                "method `{}` takes {} argument(s), pattern has {}",
                sig.name(),
                sig.num_args(),
                pattern.args.len()
            ),
            pattern.span,
        ));
    }
    let mut bindings = Bindings::new();
    let binders = pattern
        .args
        .iter()
        .chain(std::iter::once(&pattern.ret))
        .enumerate();
    for (slot, binder) in binders {
        if let Binder::Named(name, span) = binder {
            if bindings.contains_key(name.as_str()) {
                return Err(SpecError::new(
                    format!("variable `{name}` bound twice in the same pattern"),
                    *span,
                ));
            }
            bindings.insert(name.clone(), (side, slot, *span));
        }
    }
    Ok((id, bindings))
}

fn resolve_formula(ast: &FormulaAst, bindings: &Bindings) -> Result<Formula, SpecError> {
    match ast {
        FormulaAst::True(_) => Ok(Formula::True),
        FormulaAst::False(_) => Ok(Formula::False),
        FormulaAst::Not(inner, _) => Ok(resolve_formula(inner, bindings)?.not()),
        FormulaAst::And(a, b) => {
            Ok(resolve_formula(a, bindings)?.and(resolve_formula(b, bindings)?))
        }
        FormulaAst::Or(a, b) => Ok(resolve_formula(a, bindings)?.or(resolve_formula(b, bindings)?)),
        FormulaAst::Cmp { op, lhs, rhs, span } => resolve_cmp(*op, lhs, rhs, *span, bindings),
    }
}

enum RTerm {
    Var(Side, usize),
    Lit(crace_model::Value),
}

fn resolve_term(ast: &TermAst, bindings: &Bindings) -> Result<RTerm, SpecError> {
    match ast {
        TermAst::Lit(v, _) => Ok(RTerm::Lit(v.clone())),
        TermAst::Var(name, span) => {
            let (side, slot, _) = bindings
                .get(name.as_str())
                .ok_or_else(|| SpecError::new(format!("unknown variable `{name}`"), *span))?;
            Ok(RTerm::Var(*side, *slot))
        }
    }
}

fn resolve_cmp(
    op: CmpOp,
    lhs: &TermAst,
    rhs: &TermAst,
    span: Span,
    bindings: &Bindings,
) -> Result<Formula, SpecError> {
    let l = resolve_term(lhs, bindings)?;
    let r = resolve_term(rhs, bindings)?;
    match (l, r) {
        // Both literals: constant-fold.
        (RTerm::Lit(a), RTerm::Lit(b)) => Ok(if op.apply(&a, &b) {
            Formula::True
        } else {
            Formula::False
        }),
        // Cross-action atom: only `x != y` is admitted (the LS atom).
        (RTerm::Var(s1, i), RTerm::Var(s2, j)) if s1 != s2 => {
            if op != CmpOp::Ne {
                return Err(SpecError::new(
                    format!(
                        "cross-action comparison `{op}` is outside ECL; \
                         only `!=` may relate variables of the two actions (§6.1)"
                    ),
                    span,
                ));
            }
            let (i, j) = if s1 == Side::First { (i, j) } else { (j, i) };
            Ok(Formula::NeqCross { i, j })
        }
        // Single-side atom (LB), canonicalized to `==`/`<` predicates.
        (RTerm::Var(side, i), RTerm::Var(_, j)) => {
            Ok(Formula::atom(side, op, Term::Slot(i), Term::Slot(j)))
        }
        (RTerm::Var(side, i), RTerm::Lit(v)) => {
            Ok(Formula::atom(side, op, Term::Slot(i), Term::Const(v)))
        }
        (RTerm::Lit(v), RTerm::Var(side, i)) => Ok(Formula::atom(
            side,
            op.swap(),
            Term::Slot(i),
            Term::Const(v),
        )),
    }
}

/// Checks `ϕ(x⃗₁;x⃗₂) ≡ ϕ(x⃗₂;x⃗₁)` by truth-table over the formula's atoms.
///
/// Atoms are treated as free boolean variables; this is sound (never accepts
/// an asymmetric formula) and complete for formulas whose atoms are
/// semantically independent, which covers all practical specifications.
/// Formulas with more than 16 distinct atoms are accepted without checking.
pub fn is_symmetric(phi: &Formula) -> bool {
    let swapped = phi.swap_sides();
    let mut atoms = BTreeSet::new();
    collect_atoms(phi, &mut atoms);
    collect_atoms(&swapped, &mut atoms);
    let atoms: Vec<AtomKey> = atoms.into_iter().collect();
    if atoms.len() > 16 {
        return true;
    }
    for mask in 0u32..(1 << atoms.len()) {
        let assign = |key: &AtomKey| -> bool {
            let idx = atoms.binary_search(key).expect("atom collected");
            mask & (1 << idx) != 0
        };
        if eval_abstract(phi, &assign) != eval_abstract(&swapped, &assign) {
            return false;
        }
    }
    true
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum AtomKey {
    Cross(usize, usize),
    Lb(Side, Pred),
}

fn collect_atoms(phi: &Formula, out: &mut BTreeSet<AtomKey>) {
    match phi {
        Formula::True | Formula::False => {}
        Formula::NeqCross { i, j } => {
            out.insert(AtomKey::Cross(*i, *j));
        }
        Formula::Atom { side, pred } => {
            out.insert(AtomKey::Lb(*side, pred.clone()));
        }
        Formula::Not(f) => collect_atoms(f, out),
        Formula::And(a, b) | Formula::Or(a, b) => {
            collect_atoms(a, out);
            collect_atoms(b, out);
        }
    }
}

fn eval_abstract(phi: &Formula, assign: &dyn Fn(&AtomKey) -> bool) -> bool {
    match phi {
        Formula::True => true,
        Formula::False => false,
        Formula::NeqCross { i, j } => assign(&AtomKey::Cross(*i, *j)),
        Formula::Atom { side, pred } => assign(&AtomKey::Lb(*side, pred.clone())),
        Formula::Not(f) => !eval_abstract(f, assign),
        Formula::And(a, b) => eval_abstract(a, assign) && eval_abstract(b, assign),
        Formula::Or(a, b) => eval_abstract(a, assign) || eval_abstract(b, assign),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crace_model::Value;

    #[test]
    fn resolves_dictionary_put_put() {
        let spec = parse(
            r#"spec d {
                method put(k, v) -> p;
                commute put(k1, v1) -> p1, put(k2, v2) -> p2
                    when k1 != k2 || (v1 == p1 && v2 == p2);
            }"#,
        )
        .unwrap();
        let put = spec.method_id("put").unwrap();
        let phi = spec.formula(put, put);
        // Structure: Or(NeqCross(0,0), And(Atom1, Atom2)).
        match phi {
            Formula::Or(l, r) => {
                assert_eq!(*l, Formula::NeqCross { i: 0, j: 0 });
                assert!(matches!(*r, Formula::And(_, _)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
        assert!(spec.is_ecl());
    }

    #[test]
    fn unknown_method_in_rule() {
        let err = parse("spec s { commute a(), b() when true; }").unwrap_err();
        assert!(err.message().contains("unknown method `a`"));
    }

    #[test]
    fn arity_mismatch_in_pattern() {
        let err = parse("spec s { method m(a, b); commute m(x), m(_, _) when true; }").unwrap_err();
        assert!(err.message().contains("takes 2 argument(s)"));
    }

    #[test]
    fn variable_shared_between_patterns() {
        let err = parse("spec s { method m(a); commute m(x), m(x) when true; }").unwrap_err();
        assert!(err.message().contains("both action patterns"));
    }

    #[test]
    fn variable_bound_twice_in_one_pattern() {
        let err =
            parse("spec s { method m(a, b); commute m(x, x), m(_, _) when true; }").unwrap_err();
        assert!(err.message().contains("bound twice"));
    }

    #[test]
    fn unknown_variable_in_formula() {
        let err = parse("spec s { method m(a); commute m(x), m(_) when z != x; }").unwrap_err();
        assert!(err.message().contains("unknown variable `z`"));
    }

    #[test]
    fn cross_equality_rejected() {
        let err = parse("spec s { method m(a); commute m(x1), m(x2) when x1 == x2; }").unwrap_err();
        assert!(err.message().contains("outside ECL"));
    }

    #[test]
    fn cross_ordering_rejected() {
        let err = parse("spec s { method m(a); commute m(x1), m(x2) when x1 < x2; }").unwrap_err();
        assert!(err.message().contains("outside ECL"));
    }

    #[test]
    fn cross_neq_orientation_normalized() {
        // Writing y != x (second-action var first) resolves to the same
        // NeqCross as x != y.
        let spec = parse("spec s { method m(a); commute m(x1), m(x2) when x2 != x1; }").unwrap();
        let m = spec.method_id("m").unwrap();
        assert_eq!(spec.formula(m, m), Formula::NeqCross { i: 0, j: 0 });
    }

    #[test]
    fn literal_comparisons_fold() {
        let spec = parse("spec s { method m(); commute m(), m() when 1 == 1; }").unwrap();
        let m = spec.method_id("m").unwrap();
        assert_eq!(spec.formula(m, m), Formula::True);
    }

    #[test]
    fn literal_on_left_swaps_operator() {
        let spec = parse(
            "spec s { method m(a); commute m(x1), m(x2) when (3 < x1 && 3 < x2) || x1 != x2; }",
        )
        .unwrap();
        let m = spec.method_id("m").unwrap();
        let phi = spec.formula(m, m);
        // 3 < x becomes the atom x > 3, canonicalized to 3 < x on slot terms;
        // just verify evaluation semantics.
        let lo = vec![Value::Int(1), Value::Nil];
        let hi = vec![Value::Int(5), Value::Nil];
        assert!(phi.eval(&hi, &hi.clone())); // both > 3
        assert!(!phi.eval(&lo, &lo.clone())); // same value, not > 3
    }

    #[test]
    fn asymmetric_same_method_rule_rejected() {
        let err =
            parse("spec s { method m(a) -> r; commute m(x1) -> r1, m(x2) -> r2 when x1 == r1; }")
                .unwrap_err();
        assert!(err.message().contains("symmetric"));
    }

    #[test]
    fn three_line_rule_error_renders_against_the_right_line() {
        // The rule spans three source lines; the symmetry violation lives in
        // the `when` formula on the last one, and the caret must land there —
        // not on the first line of the rule.
        let src = "spec s {\n\
                   method m(a) -> r;\n\
                   commute m(x1) -> r1,\n\
                   m(x2) -> r2\n\
                   when x1 == r1;\n\
                   }";
        let err = parse(src).unwrap_err();
        assert!(err.message().contains("symmetric"));
        let rendered = err.render(src);
        assert!(rendered.contains("line 5"), "{rendered}");
        assert!(rendered.contains("  | when x1 == r1;\n"), "{rendered}");
        // The caret line sits under the formula, starting past `when `.
        assert!(rendered.contains("  |      ^"), "{rendered}");
        assert!(!rendered.contains("commute"), "{rendered}");
    }

    #[test]
    fn resolve_rule_is_lenient_about_whole_spec_invariants() {
        // An asymmetric same-method rule fails strict `resolve` but
        // round-trips through `resolve_rule` so tools can diagnose it.
        let src = "spec s { method m(a) -> r; commute m(x1) -> r1, m(x2) -> r2 when x1 == r1; }";
        let ast = crate::parser::parse_source(src).unwrap();
        let methods = resolve_methods(&ast).unwrap();
        let rule = resolve_rule(&ast.rules[0], &methods).unwrap();
        assert_eq!(rule.m1, rule.m2);
        assert!(!rule.swapped);
        assert!(!is_symmetric(&rule.formula));
        assert!(rule.formula_span.start > rule.span.start);
    }

    #[test]
    fn resolve_rule_swaps_reversed_pairs() {
        let src = "spec s { method a(); method b(x); commute b(x2) -> _, a() when x2 == 1; }";
        let ast = crate::parser::parse_source(src).unwrap();
        let methods = resolve_methods(&ast).unwrap();
        let rule = resolve_rule(&ast.rules[0], &methods).unwrap();
        assert!(rule.swapped);
        assert!(rule.m1 < rule.m2);
        // The formula's atom moved to the second side under the swap.
        assert!(matches!(
            rule.formula,
            Formula::Atom {
                side: Side::Second,
                ..
            }
        ));
    }

    #[test]
    fn symmetric_lb_rule_accepted() {
        let spec = parse(
            "spec s { method m(a) -> r; commute m(x1) -> r1, m(x2) -> r2 \
             when x1 == r1 && x2 == r2; }",
        )
        .unwrap();
        assert!(spec.is_ecl());
    }

    #[test]
    fn duplicate_rule_for_pair_rejected() {
        let err = parse(
            "spec s { method m(); commute m(), m() when true; commute m(), m() when false; }",
        )
        .unwrap_err();
        assert!(err.message().contains("duplicate"));
    }

    #[test]
    fn duplicate_method_rejected() {
        let err = parse("spec s { method m(); method m(a); }").unwrap_err();
        assert!(err.message().contains("declared twice"));
    }

    #[test]
    fn is_symmetric_helper() {
        assert!(is_symmetric(&Formula::True));
        assert!(is_symmetric(&Formula::NeqCross { i: 0, j: 0 }));
        assert!(!is_symmetric(&Formula::NeqCross { i: 0, j: 1 }));
        // x0≠y1 && x1≠y0 is symmetric.
        let f = Formula::NeqCross { i: 0, j: 1 }.and(Formula::NeqCross { i: 1, j: 0 });
        assert!(is_symmetric(&f));
        let one_sided = Formula::Atom {
            side: Side::First,
            pred: Pred::new(CmpOp::Eq, Term::Slot(0), Term::Slot(1)),
        };
        assert!(!is_symmetric(&one_sided));
        let both = one_sided.clone().and(one_sided.swap_sides());
        assert!(is_symmetric(&both));
    }

    #[test]
    fn non_ecl_formula_is_resolved_but_flagged() {
        // !(x1 != x2) parses and resolves, but is outside ECL (Not over LS).
        let spec = parse("spec s { method m(a); commute m(x1), m(x2) when !(x1 != x2); }").unwrap();
        assert!(!spec.is_ecl());
    }
}
