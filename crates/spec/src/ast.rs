//! Surface syntax trees produced by the parser, consumed by the resolver.

use crate::error::Span;
use crace_model::Value;

/// A parsed `spec <name> { … }` block.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecAst {
    pub name: String,
    pub name_span: Span,
    pub methods: Vec<MethodDecl>,
    pub rules: Vec<CommuteDecl>,
}

/// `method name(arg, …) -> ret;`
#[derive(Clone, Debug, PartialEq)]
pub struct MethodDecl {
    pub name: String,
    pub span: Span,
    /// Declared argument names (documentation only; binding happens per rule).
    pub args: Vec<String>,
    /// Declared return-value name, if any.
    pub ret: Option<String>,
}

/// `commute pat1, pat2 when formula;`
#[derive(Clone, Debug, PartialEq)]
pub struct CommuteDecl {
    pub first: Pattern,
    pub second: Pattern,
    pub formula: FormulaAst,
    pub span: Span,
}

/// An action pattern `name(v1, …) -> r` binding variables to slots.
#[derive(Clone, Debug, PartialEq)]
pub struct Pattern {
    pub method: String,
    pub span: Span,
    /// One binder per argument.
    pub args: Vec<Binder>,
    /// Binder for the return value (wildcard if omitted).
    pub ret: Binder,
}

/// A variable binder in a pattern: a name or the wildcard `_`.
#[derive(Clone, Debug, PartialEq)]
pub enum Binder {
    Wildcard(Span),
    Named(String, Span),
}

/// Unresolved formulas: comparisons over variables and literals, combined
/// with `&&`, `||` and `!`.
#[derive(Clone, Debug, PartialEq)]
pub enum FormulaAst {
    True(Span),
    False(Span),
    Cmp {
        op: crate::formula::CmpOp,
        lhs: TermAst,
        rhs: TermAst,
        span: Span,
    },
    Not(Box<FormulaAst>, Span),
    And(Box<FormulaAst>, Box<FormulaAst>),
    Or(Box<FormulaAst>, Box<FormulaAst>),
}

impl FormulaAst {
    /// The source span covered by the formula.
    pub fn span(&self) -> Span {
        match self {
            FormulaAst::True(s) | FormulaAst::False(s) | FormulaAst::Not(_, s) => *s,
            FormulaAst::Cmp { span, .. } => *span,
            FormulaAst::And(a, b) | FormulaAst::Or(a, b) => a.span().cover(b.span()),
        }
    }
}

/// An unresolved term: a variable reference or a literal value.
#[derive(Clone, Debug, PartialEq)]
pub enum TermAst {
    Var(String, Span),
    Lit(Value, Span),
}

impl TermAst {
    /// The term's source span.
    pub fn span(&self) -> Span {
        match self {
            TermAst::Var(_, s) | TermAst::Lit(_, s) => *s,
        }
    }
}
