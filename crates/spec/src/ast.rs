//! Surface syntax trees produced by the parser, consumed by the resolver.
//!
//! The AST is deliberately close to the source text — every node carries the
//! [`Span`] it was parsed from — so that tools which diagnose rather than
//! reject (notably `crace-speclint`) can resolve rule-by-rule and report
//! precise locations even for specs the strict resolver would refuse.

use crate::error::Span;
use crace_model::Value;

/// A parsed `spec <name> { … }` block.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecAst {
    /// The declared specification name.
    pub name: String,
    /// Span of the name token.
    pub name_span: Span,
    /// The `method` declarations, in source order.
    pub methods: Vec<MethodDecl>,
    /// The `commute` rules, in source order.
    pub rules: Vec<CommuteDecl>,
}

/// `method name(arg, …) -> ret;`
#[derive(Clone, Debug, PartialEq)]
pub struct MethodDecl {
    /// The method name.
    pub name: String,
    /// Span of the whole declaration.
    pub span: Span,
    /// Declared argument names (documentation only; binding happens per rule).
    pub args: Vec<String>,
    /// Declared return-value name, if any.
    pub ret: Option<String>,
}

/// `commute pat1, pat2 when formula;`
#[derive(Clone, Debug, PartialEq)]
pub struct CommuteDecl {
    /// Pattern for the first action.
    pub first: Pattern,
    /// Pattern for the second action.
    pub second: Pattern,
    /// The unresolved `when` condition.
    pub formula: FormulaAst,
    /// Span of the whole rule.
    pub span: Span,
}

/// An action pattern `name(v1, …) -> r` binding variables to slots.
#[derive(Clone, Debug, PartialEq)]
pub struct Pattern {
    /// The named method.
    pub method: String,
    /// Span of the pattern.
    pub span: Span,
    /// One binder per argument.
    pub args: Vec<Binder>,
    /// Binder for the return value (wildcard if omitted).
    pub ret: Binder,
}

/// A variable binder in a pattern: a name or the wildcard `_`.
#[derive(Clone, Debug, PartialEq)]
pub enum Binder {
    /// `_` — the slot is ignored by the formula.
    Wildcard(Span),
    /// A named binder usable in the `when` formula.
    Named(String, Span),
}

/// Unresolved formulas: comparisons over variables and literals, combined
/// with `&&`, `||` and `!`.
#[derive(Clone, Debug, PartialEq)]
pub enum FormulaAst {
    /// The constant `true`.
    True(Span),
    /// The constant `false`.
    False(Span),
    /// A comparison `lhs op rhs`.
    Cmp {
        /// The comparison operator.
        op: crate::formula::CmpOp,
        /// Left operand.
        lhs: TermAst,
        /// Right operand.
        rhs: TermAst,
        /// Span of the whole comparison.
        span: Span,
    },
    /// Logical negation `!f`.
    Not(Box<FormulaAst>, Span),
    /// Conjunction `a && b`.
    And(Box<FormulaAst>, Box<FormulaAst>),
    /// Disjunction `a || b`.
    Or(Box<FormulaAst>, Box<FormulaAst>),
}

impl FormulaAst {
    /// The source span covered by the formula.
    pub fn span(&self) -> Span {
        match self {
            FormulaAst::True(s) | FormulaAst::False(s) | FormulaAst::Not(_, s) => *s,
            FormulaAst::Cmp { span, .. } => *span,
            FormulaAst::And(a, b) | FormulaAst::Or(a, b) => a.span().cover(b.span()),
        }
    }
}

/// An unresolved term: a variable reference or a literal value.
#[derive(Clone, Debug, PartialEq)]
pub enum TermAst {
    /// A variable bound by one of the rule's patterns.
    Var(String, Span),
    /// A literal value.
    Lit(Value, Span),
}

impl TermAst {
    /// The term's source span.
    pub fn span(&self) -> Span {
        match self {
            TermAst::Var(_, s) | TermAst::Lit(_, s) => *s,
        }
    }
}
