//! The Fig. 1 motivating example: concurrently establishing connections.
//!
//! Forks one thread per hostname, each storing a freshly "created"
//! connection into a shared dictionary, then joins all and reads the
//! dictionary size. With duplicate hostnames, the successful `put` in one
//! thread and the overwriting `put` in another form a commutativity race —
//! the first workload of §2.

use crace_model::Value;
use crace_runtime::{MonitoredDict, ObjectRegistry, Runtime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Outcome of the connections program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConnectionsResult {
    /// What the program prints: the number of established connections.
    pub connections: i64,
    /// Number of connection objects actually created (with duplicate
    /// hosts this exceeds `connections` — the leaked short-lived
    /// connections §2 warns about).
    pub created: u64,
}

/// Runs the Fig. 1 program over `hosts` under the given analysis.
pub fn run_connections(
    analysis: Arc<dyn ObjectRegistry>,
    hosts: &[&'static str],
) -> ConnectionsResult {
    let rt = Runtime::new(analysis);
    let main = rt.main_ctx();
    let dict = MonitoredDict::new(&rt);
    let created = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for &host in hosts {
        let dict = dict.clone();
        let created = Arc::clone(&created);
        handles.push(rt.spawn(&main, move |ctx| {
            // "createConnection(host)": allocate a fresh connection object.
            let conn = Value::Ref(created.fetch_add(1, Ordering::Relaxed) + 1);
            dict.put(ctx, Value::str(host), conn);
        }));
    }
    for h in handles {
        h.join(&main).unwrap(); // joinall
    }
    let connections = dict.size(&main);
    ConnectionsResult {
        connections,
        created: created.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_core::Rd2;
    use crace_model::{Analysis, NoopAnalysis};

    #[test]
    fn unique_hosts_are_race_free_and_all_connect() {
        let rd2 = Arc::new(Rd2::new());
        let r = run_connections(rd2.clone(), &["a.com", "b.com", "c.com"]);
        assert_eq!(r.connections, 3);
        assert_eq!(r.created, 3);
        assert!(rd2.report().is_empty(), "{:?}", rd2.report());
    }

    #[test]
    fn duplicate_hosts_race_and_leak_a_connection() {
        let rd2 = Arc::new(Rd2::new());
        let r = run_connections(rd2.clone(), &["a.com", "a.com", "b.com"]);
        assert_eq!(r.connections, 2); // one entry survives per host
        assert_eq!(r.created, 3); // but three connections were created
        assert!(rd2.report().total() >= 1, "{:?}", rd2.report());
    }

    #[test]
    fn size_after_joinall_never_races() {
        // Even with duplicates, the joinall orders size() after all puts —
        // the a3 observation of Fig. 3. All races must involve puts only.
        let rd2 = Arc::new(Rd2::new());
        run_connections(rd2.clone(), &["a.com", "a.com"]);
        for race in rd2.report().samples() {
            let action = race.action.as_ref().expect("rd2 records actions");
            let spec = crace_runtime::MonitoredDict::spec();
            assert_eq!(action.method(), spec.method_id("put").unwrap());
        }
    }

    #[test]
    fn empty_host_list() {
        let r = run_connections(Arc::new(NoopAnalysis::new()), &[]);
        assert_eq!(r.connections, 0);
        assert_eq!(r.created, 0);
    }
}
