//! Calibrated busy-work, standing in for real query processing cost.

use std::hint::black_box;

/// Burns roughly `units` small arithmetic steps of CPU.
///
/// Workload operations call this so that an "uninstrumented" run has real
/// work to measure against — otherwise detector overhead would be divided
/// by a near-zero baseline and the qps ratios of Table 2 would be
/// meaningless.
///
/// # Examples
///
/// ```
/// // The result is deterministic for a given unit count.
/// assert_eq!(crace_workloads::busy_work(10), crace_workloads::busy_work(10));
/// ```
pub fn busy_work(units: u64) -> u64 {
    let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
    for i in 0..units {
        acc = acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(black_box(i));
        acc ^= acc >> 29;
    }
    black_box(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_unit_sensitive() {
        assert_eq!(busy_work(100), busy_work(100));
        assert_ne!(busy_work(100), busy_work(101));
        assert_eq!(busy_work(0), busy_work(0));
    }
}
