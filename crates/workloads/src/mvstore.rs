//! A miniature multi-version store modeled on H2's MVStore.
//!
//! H2 1.3.174 builds its MVStore on several `ConcurrentHashMap`s; RD2 found
//! two harmful commutativity races in it (§7):
//!
//! 1. **`freedPageSpace`** — concurrent read-modify-write at map
//!    granularity (`get` then `put` of the accumulated freed bytes) can
//!    lose updates, leaving the store's space accounting wrong. Exercised
//!    here by [`MvStore::free_pages`].
//! 2. **`chunks`** — a check-then-act (`get` → miss → expensive compute →
//!    `put`) can compute the same chunk twice. Exercised by
//!    [`MvStore::ensure_chunk`].
//!
//! Both maps are perfectly thread-safe *as maps*; the races exist only at
//! the library interface, which is why the low-level baseline cannot see
//! them. Conversely, the store carries ~26 plain statistics fields
//! ([`Stat`]) accessed without synchronization — stand-ins for the ordinary
//! racy fields in which FASTTRACK's Table 2 races live.

use crace_model::Value;
use crace_runtime::{
    MonitoredCounter, MonitoredDict, Runtime, ThreadCtx, TrackedCell, TrackedMutex,
};
use std::sync::Arc;

use crate::busy_work;

/// Keys per chunk: inserts within the same `key / CHUNK_SPAN` share chunk
/// metadata, so workers with disjoint key ranges still collide on chunks.
pub const CHUNK_SPAN: i64 = 64;

/// The plain (unsynchronized) statistics fields of the store — the
/// application memory RoadRunner would shadow for FastTrack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing statistics
pub enum Stat {
    WriteCount,
    ReadCount,
    UpdateCount,
    DeleteCount,
    CacheHits,
    CacheMisses,
    UnsavedMemory,
    LastOpTime,
    LastCommitTime,
    CommitCount,
    FileSize,
    PageCount,
    ChunkCount,
    CompactCount,
    FreeBytesTotal,
    StoreVersionCache,
    TxOpen,
    TxCommitted,
    AvgLatency,
    MaxLatency,
    QueriesActive,
    InsertsActive,
    BufferPos,
    SyncPending,
    RetentionHint,
    MetaDirty,
}

impl Stat {
    /// All statistics fields.
    pub const ALL: [Stat; 26] = [
        Stat::WriteCount,
        Stat::ReadCount,
        Stat::UpdateCount,
        Stat::DeleteCount,
        Stat::CacheHits,
        Stat::CacheMisses,
        Stat::UnsavedMemory,
        Stat::LastOpTime,
        Stat::LastCommitTime,
        Stat::CommitCount,
        Stat::FileSize,
        Stat::PageCount,
        Stat::ChunkCount,
        Stat::CompactCount,
        Stat::FreeBytesTotal,
        Stat::StoreVersionCache,
        Stat::TxOpen,
        Stat::TxCommitted,
        Stat::AvgLatency,
        Stat::MaxLatency,
        Stat::QueriesActive,
        Stat::InsertsActive,
        Stat::BufferPos,
        Stat::SyncPending,
        Stat::RetentionHint,
        Stat::MetaDirty,
    ];
}

/// The miniature multi-version store.
///
/// All shared maps are [`MonitoredDict`]s (the `ConcurrentHashMap`
/// analogue); statistics are [`TrackedCell`]s.
pub struct MvStore {
    /// Row data: key → value. Workloads write per-worker key ranges (H2
    /// sessions insert their own rows), so this map itself stays race-free.
    pub data: Arc<MonitoredDict>,
    /// Chunk metadata: chunk id → chunk object. Populated check-then-act.
    pub chunks: Arc<MonitoredDict>,
    /// Freed-space accounting: chunk id → freed bytes. Updated RMW.
    pub freed_page_space: Arc<MonitoredDict>,
    /// Current store version.
    pub version: Arc<MonitoredCounter>,
    /// H2's store-wide commit lock: commits serialize on it, creating the
    /// happens-before edges a real store has between transactions.
    store_lock: TrackedMutex,
    stats: Vec<Arc<TrackedCell<i64>>>,
    /// CPU units burned per "expensive" operation, to give the
    /// uninstrumented baseline real work.
    busy_units: u64,
    /// When `true` (realistic mode), the routine maintenance performed by
    /// inserts/deletes runs under the store lock as real H2 does — the
    /// *unsynchronized* map updates are then only the rare buggy paths
    /// (explicit `free_pages`, `compact`), so commutativity races are
    /// occasional, as in the paper. When `false` (stress mode, used by
    /// smoke tests), all maintenance takes the unsynchronized path and
    /// races deterministically.
    locked_maintenance: bool,
}

impl MvStore {
    /// Creates a store on `rt` (registering its maps with the analysis).
    /// `busy_units` calibrates the simulated per-operation work;
    /// `locked_maintenance` selects realistic vs stress maintenance (see
    /// the field docs).
    pub fn new(rt: &Runtime, busy_units: u64, locked_maintenance: bool) -> Arc<MvStore> {
        Arc::new(MvStore {
            data: MonitoredDict::new(rt),
            chunks: MonitoredDict::new(rt),
            freed_page_space: MonitoredDict::new(rt),
            version: MonitoredCounter::new(rt),
            store_lock: rt.new_mutex(),
            stats: Stat::ALL
                .iter()
                .map(|_| TrackedCell::new(rt, 0i64))
                .collect(),
            busy_units,
            locked_maintenance,
        })
    }

    /// Bumps a statistics field (unsynchronized read-modify-write).
    fn bump(&self, ctx: &ThreadCtx, stat: Stat) {
        self.stats[stat as usize].update(ctx, |v| v + 1);
    }

    /// Reads a statistics field without synchronization.
    pub fn stat(&self, ctx: &ThreadCtx, stat: Stat) -> i64 {
        self.stats[stat as usize].read(ctx)
    }

    /// The chunk id covering `key`.
    pub fn chunk_of(key: i64) -> i64 {
        key.div_euclid(CHUNK_SPAN)
    }

    /// Ensures chunk metadata exists for `id` — H2's check-then-act on the
    /// `chunks` map (harmful race #2: the expensive computation may run
    /// more than once).
    pub fn ensure_chunk(&self, ctx: &ThreadCtx, id: i64) {
        if self.chunks.get(ctx, Value::Int(id)).is_nil() {
            // "Expensive" chunk materialization.
            busy_work(self.busy_units * 4);
            self.bump(ctx, Stat::ChunkCount);
            self.chunks.put(ctx, Value::Int(id), Value::Ref(id as u64));
        }
    }

    /// Accounts `bytes` of freed space to `chunk` — H2's map-level
    /// read-modify-write on `freedPageSpace` (harmful race #1: lost
    /// updates corrupt the accounting).
    pub fn free_pages(&self, ctx: &ThreadCtx, chunk: i64, bytes: i64) {
        let old = self
            .freed_page_space
            .get(ctx, Value::Int(chunk))
            .as_int()
            .unwrap_or(0);
        self.freed_page_space
            .put(ctx, Value::Int(chunk), Value::Int(old + bytes));
        self.bump(ctx, Stat::FreeBytesTotal);
    }

    /// Like [`MvStore::ensure_chunk`], but with the chunk materialization
    /// under the store lock. The *fast-path check* is a double-checked
    /// lookup outside the lock — H2's actual `chunks` pattern, and the
    /// reason the map can be read while a chunk is concurrently computed
    /// (finding #2 of §7).
    pub fn ensure_chunk_committed(&self, ctx: &ThreadCtx, id: i64) {
        if !self.chunks.get(ctx, Value::Int(id)).is_nil() {
            return; // ← unsynchronized fast path
        }
        let _guard = self.store_lock.lock(ctx);
        self.ensure_chunk(ctx, id);
    }

    /// Like [`MvStore::free_pages`], but under the store lock.
    pub fn free_pages_committed(&self, ctx: &ThreadCtx, chunk: i64, bytes: i64) {
        let _guard = self.store_lock.lock(ctx);
        self.free_pages(ctx, chunk, bytes);
    }

    /// Inserts a row (caller guarantees per-worker key ranges).
    pub fn insert(&self, ctx: &ThreadCtx, key: i64, value: i64) {
        busy_work(self.busy_units);
        if self.locked_maintenance {
            self.ensure_chunk_committed(ctx, Self::chunk_of(key));
        } else {
            self.ensure_chunk(ctx, Self::chunk_of(key));
        }
        self.data.put(ctx, Value::Int(key), Value::Int(value));
        self.bump(ctx, Stat::WriteCount);
        self.bump(ctx, Stat::UnsavedMemory);
        self.bump(ctx, Stat::LastOpTime);
        self.bump(ctx, Stat::InsertsActive);
        self.bump(ctx, Stat::PageCount);
        self.bump(ctx, Stat::FileSize);
    }

    /// Reads a row.
    pub fn query(&self, ctx: &ThreadCtx, key: i64) -> Value {
        busy_work(self.busy_units);
        let v = self.data.get(ctx, Value::Int(key));
        self.bump(ctx, Stat::ReadCount);
        if v.is_nil() {
            self.bump(ctx, Stat::CacheMisses);
        } else {
            self.bump(ctx, Stat::CacheHits);
        }
        self.bump(ctx, Stat::QueriesActive);
        self.bump(ctx, Stat::AvgLatency);
        v
    }

    /// Updates a row in place (get-then-put on a per-worker key).
    pub fn update(&self, ctx: &ThreadCtx, key: i64, delta: i64) {
        busy_work(self.busy_units);
        let old = self.data.get(ctx, Value::Int(key)).as_int().unwrap_or(0);
        self.data.put(ctx, Value::Int(key), Value::Int(old + delta));
        self.bump(ctx, Stat::UpdateCount);
        self.bump(ctx, Stat::UnsavedMemory);
        self.bump(ctx, Stat::LastOpTime);
        self.bump(ctx, Stat::MetaDirty);
        self.bump(ctx, Stat::BufferPos);
    }

    /// Deletes a row, freeing its page space.
    pub fn delete(&self, ctx: &ThreadCtx, key: i64) {
        busy_work(self.busy_units);
        let prev = self.data.remove(ctx, Value::Int(key));
        if !prev.is_nil() {
            if self.locked_maintenance {
                self.free_pages_committed(ctx, Self::chunk_of(key), 16);
            } else {
                self.free_pages(ctx, Self::chunk_of(key), 16);
            }
        }
        self.bump(ctx, Stat::DeleteCount);
        self.bump(ctx, Stat::PageCount);
        self.bump(ctx, Stat::MetaDirty);
    }

    /// Commits under the store lock: bumps the store version and commit
    /// statistics. The lock's happens-before edges are what keeps the bulk
    /// of the store's map traffic ordered between transactions — only the
    /// accesses falling *between* two commits can race.
    pub fn commit(&self, ctx: &ThreadCtx) {
        let _guard = self.store_lock.lock(ctx);
        busy_work(self.busy_units);
        self.version.inc(ctx);
        self.bump(ctx, Stat::CommitCount);
        self.bump(ctx, Stat::TxCommitted);
        self.bump(ctx, Stat::StoreVersionCache);
        drop(_guard);
        // The commit timestamp is published outside the lock — one of the
        // unsynchronized-field patterns FastTrack flags in H2.
        self.bump(ctx, Stat::LastCommitTime);
        self.bump(ctx, Stat::SyncPending);
    }

    /// Compacts. The reclaim scan runs under the store lock (as H2's
    /// does), but the capacity *hint* is read from
    /// `freedPageSpace.size()` **outside** the lock — the unsynchronized
    /// check-then-act that makes the hint racy against concurrent frees
    /// (one of the two H2 findings of §7).
    pub fn compact(&self, ctx: &ThreadCtx, chunk_range: i64) {
        busy_work(self.busy_units * 2);
        let hint = self.freed_page_space.size(ctx); // ← racy hint read
        if hint == 0 {
            return;
        }
        // In stress mode (`locked_maintenance == false`) even the scan is
        // unsynchronized.
        let guard = self.locked_maintenance.then(|| self.store_lock.lock(ctx));
        for id in 0..chunk_range {
            let freed = self
                .freed_page_space
                .get(ctx, Value::Int(id))
                .as_int()
                .unwrap_or(0);
            if freed > 64 {
                self.freed_page_space.remove(ctx, Value::Int(id));
                self.chunks.remove(ctx, Value::Int(id));
            }
        }
        drop(guard);
        self.bump(ctx, Stat::CompactCount);
        self.bump(ctx, Stat::RetentionHint);
        self.bump(ctx, Stat::FileSize);
        self.bump(ctx, Stat::ChunkCount);
    }

    /// Background-flusher heartbeat: touches the two dirty-tracking fields
    /// also touched by foreground operations (the source of the residual
    /// FastTrack races in the non-concurrent circuits).
    pub fn flusher_tick(&self, ctx: &ThreadCtx) {
        self.bump(ctx, Stat::MetaDirty);
        self.bump(ctx, Stat::SyncPending);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_core::Rd2;
    use crace_fasttrack::FastTrack;
    use crace_model::{Analysis, NoopAnalysis, RaceKind};

    fn quiet_store() -> (Runtime, ThreadCtx, Arc<MvStore>) {
        let rt = Runtime::new(Arc::new(NoopAnalysis::new()));
        let ctx = rt.main_ctx();
        let store = MvStore::new(&rt, 0, false);
        (rt, ctx, store)
    }

    #[test]
    fn insert_query_update_delete_round_trip() {
        let (_rt, ctx, store) = quiet_store();
        store.insert(&ctx, 5, 100);
        assert_eq!(store.query(&ctx, 5), Value::Int(100));
        store.update(&ctx, 5, 11);
        assert_eq!(store.query(&ctx, 5), Value::Int(111));
        store.delete(&ctx, 5);
        assert_eq!(store.query(&ctx, 5), Value::Nil);
        // Deleting accounted freed space for chunk 0.
        assert_eq!(
            store.freed_page_space.get_untracked(&Value::Int(0)),
            Value::Int(16)
        );
    }

    #[test]
    fn ensure_chunk_is_idempotent_sequentially() {
        let (_rt, ctx, store) = quiet_store();
        store.ensure_chunk(&ctx, 3);
        store.ensure_chunk(&ctx, 3);
        assert_eq!(store.chunks.len_untracked(), 1);
    }

    #[test]
    fn chunk_of_spans() {
        assert_eq!(MvStore::chunk_of(0), 0);
        assert_eq!(MvStore::chunk_of(63), 0);
        assert_eq!(MvStore::chunk_of(64), 1);
        assert_eq!(MvStore::chunk_of(-1), -1);
    }

    #[test]
    fn compact_reclaims_heavily_freed_chunks() {
        let (_rt, ctx, store) = quiet_store();
        store.insert(&ctx, 1, 1); // chunk 0 exists
        for _ in 0..5 {
            store.free_pages(&ctx, 0, 20); // 100 > 64
        }
        store.compact(&ctx, 4);
        assert_eq!(store.freed_page_space.len_untracked(), 0);
        assert_eq!(store.chunks.len_untracked(), 0);
    }

    #[test]
    fn concurrent_free_pages_is_a_commutativity_race_on_freed_map() {
        let rd2 = Arc::new(Rd2::new());
        let rt = Runtime::new(rd2.clone());
        let main = rt.main_ctx();
        let store = MvStore::new(&rt, 0, false);
        let freed_obj = store.freed_page_space.obj();
        let mut handles = Vec::new();
        for _ in 0..2 {
            let store = store.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                store.free_pages(ctx, 7, 16);
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        let report = rd2.report();
        assert!(report.total() >= 1, "{report:?}");
        assert!(report
            .samples()
            .iter()
            .all(|r| r.kind == RaceKind::Commutativity { obj: freed_obj }));
    }

    #[test]
    fn concurrent_ensure_chunk_is_a_commutativity_race_on_chunks_map() {
        let rd2 = Arc::new(Rd2::new());
        let rt = Runtime::new(rd2.clone());
        let main = rt.main_ctx();
        let store = MvStore::new(&rt, 0, false);
        let chunks_obj = store.chunks.obj();
        let mut handles = Vec::new();
        for _ in 0..2 {
            let store = store.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                store.ensure_chunk(ctx, 3);
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        let report = rd2.report();
        assert!(report.total() >= 1, "{report:?}");
        assert!(report
            .samples()
            .iter()
            .any(|r| r.kind == RaceKind::Commutativity { obj: chunks_obj }));
    }

    #[test]
    fn stats_race_under_fasttrack_but_maps_do_not() {
        let ft = Arc::new(FastTrack::new());
        let rt = Runtime::new(ft.clone());
        let main = rt.main_ctx();
        let store = MvStore::new(&rt, 0, false);
        let mut handles = Vec::new();
        for w in 0..2i64 {
            let store = store.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                // Disjoint keys: the maps are used race-free…
                store.insert(ctx, w * 1000, 1);
                // …but both threads bump the same stat cells.
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        let report = ft.report();
        assert!(report.total() >= 1, "{report:?}");
        assert!(report
            .samples()
            .iter()
            .all(|r| matches!(r.kind, RaceKind::ReadWrite { .. })));
    }
}
