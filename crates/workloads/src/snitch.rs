//! The Cassandra `DynamicEndpointSnitch` simulation.
//!
//! Cassandra ranks database nodes by continuously folding observed
//! latencies into a `samples` map (`ConcurrentHashMap`) and periodically
//! recalculating scores. RD2's third finding (§7): new entries can be
//! added to `samples` while its `size()` is concurrently used as a
//! performance hint during rank recalculation, making the hint obsolete.
//!
//! Mirroring Cassandra's structure, the per-sample latency folding happens
//! inside per-node tracker objects (internally synchronized, invisible to
//! both detectors); the *map* itself is written only when a node
//! registers — `get(node)` miss → `put(node, tracker)` — and when rank
//! recalculation expires a stale node (`remove`), forcing
//! re-registration. Registrations and expiries race against the
//! concurrent `get`/`size()` traffic at map granularity, while only a
//! handful of plain fields race at the FastTrack level (Table 2's final
//! row: FASTTRACK 24 (8) vs RD2 81 (2)).

use crace_model::Value;
use crace_runtime::{MonitoredDict, ObjectRegistry, Runtime, ThreadCtx, TrackedCell};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::busy_work;

/// Parameters of a snitch run.
#[derive(Clone, Copy, Debug)]
pub struct SnitchConfig {
    /// Number of database nodes being ranked.
    pub nodes: i64,
    /// Latency-sampler threads.
    pub samplers: usize,
    /// Latency updates folded in per sampler.
    pub updates_per_sampler: usize,
    /// Rank recalculations per ranker thread (two rankers run).
    pub rank_iterations: usize,
    /// CPU units of simulated work per update.
    pub busy_units: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SnitchConfig {
    fn default() -> SnitchConfig {
        SnitchConfig {
            nodes: 16,
            samplers: 4,
            updates_per_sampler: 30_000,
            rank_iterations: 400,
            busy_units: 30,
            seed: 0xCA55,
        }
    }
}

impl SnitchConfig {
    /// A small configuration for tests.
    pub fn smoke() -> SnitchConfig {
        SnitchConfig {
            nodes: 8,
            samplers: 2,
            updates_per_sampler: 400,
            rank_iterations: 40,
            busy_units: 0,
            seed: 3,
        }
    }
}

/// Result of a snitch run.
#[derive(Clone, Debug)]
pub struct SnitchResult {
    /// Wall-clock time of the test — the Table 2 metric for this row
    /// (reported in seconds, not qps).
    pub elapsed: Duration,
    /// Total operations performed (sampler updates + ranker passes).
    pub total_ops: u64,
}

/// The snitch's shared state.
struct Snitch {
    /// node → latency tracker reference. Written on registration/expiry
    /// only; read on every sample and during rank recalculation.
    samples: Arc<MonitoredDict>,
    /// node → rank score. Written during rank recalculation.
    scores: Arc<MonitoredDict>,
    /// Per-node EWMA state — the tracker objects. Internally synchronized
    /// and unmonitored, like the `AdaptiveLatencyTracker`s inside
    /// Cassandra's map values.
    trackers: Vec<parking_lot::Mutex<i64>>,
    /// The interval timer lock (Cassandra schedules resets/updates through
    /// a synchronized executor); threads periodically pass through it,
    /// which bounds how much of the traffic is truly unordered.
    interval_lock: crace_runtime::TrackedMutex,
    /// Plain fields shared between samplers and rankers (8 of them; the
    /// FastTrack-visible surface).
    fields: Vec<Arc<TrackedCell<i64>>>,
}

const NUM_FIELDS: usize = 8;

impl Snitch {
    fn new(rt: &Runtime) -> Arc<Snitch> {
        Arc::new(Snitch {
            samples: MonitoredDict::new(rt),
            scores: MonitoredDict::new(rt),
            trackers: (0..64).map(|_| parking_lot::Mutex::new(0)).collect(),
            interval_lock: rt.new_mutex(),
            fields: (0..NUM_FIELDS).map(|_| TrackedCell::new(rt, 0)).collect(),
        })
    }

    /// Records one latency observation: look the node's tracker up in the
    /// `samples` map, registering it on a miss (check-then-act — the map
    /// write that races against concurrent `get`/`size()` traffic), then
    /// fold the latency into the tracker.
    fn record_latency(&self, ctx: &ThreadCtx, node: i64, latency: i64, busy: u64) {
        busy_work(busy);
        if self.samples.get(ctx, Value::Int(node)).is_nil() {
            self.samples
                .put(ctx, Value::Int(node), Value::Ref(node as u64));
        }
        let mut ewma = self.trackers[node as usize % self.trackers.len()].lock();
        *ewma = (*ewma * 3 + latency) / 4;
    }

    /// One rank recalculation: uses `samples.size()` as the capacity hint
    /// (the reported race — registrations can land concurrently, making
    /// the hint obsolete), scores every registered node, and periodically
    /// expires a stale node so it must re-register.
    fn recalculate(&self, ctx: &ThreadCtx, nodes: i64, iteration: usize, busy: u64) {
        busy_work(busy * 4);
        let hint = self.samples.size(ctx); // ← races with registrations
        let mut worst = 1;
        for node in 0..nodes {
            if !self.samples.get(ctx, Value::Int(node)).is_nil() {
                let lat = *self.trackers[node as usize % self.trackers.len()].lock();
                worst = worst.max(lat);
                self.scores
                    .put(ctx, Value::Int(node), Value::Int(lat * 100 / worst.max(1)));
            }
        }
        // Periodic reset: expire one node so samplers re-register it (the
        // registration/expiry churn the snitch exhibits in production).
        if iteration % 2 == 1 {
            let stale = (iteration as i64 / 2) % nodes;
            self.samples.remove(ctx, Value::Int(stale));
        }
        // Update the shared bookkeeping fields (hint cache, timestamps…).
        self.fields[(hint as usize) % NUM_FIELDS].update(ctx, |v| v + 1);
    }
}

/// Runs the DynamicEndpointSnitch test under the given analysis and
/// returns the elapsed time (Table 2 reports seconds for this row).
pub fn run_snitch(analysis: Arc<dyn ObjectRegistry>, config: &SnitchConfig) -> SnitchResult {
    let rt = Runtime::new(analysis);
    let main = rt.main_ctx();
    let snitch = Snitch::new(&rt);

    let start = Instant::now();
    let mut handles = Vec::new();

    for s in 0..config.samplers {
        let snitch = Arc::clone(&snitch);
        let cfg = *config;
        handles.push(rt.spawn(&main, move |ctx| {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (s as u64).wrapping_mul(0xABCD));
            for i in 0..cfg.updates_per_sampler {
                let node = rng.gen_range(0..cfg.nodes);
                let latency = rng.gen_range(1..100);
                snitch.record_latency(ctx, node, latency, cfg.busy_units);
                // Samplers periodically pass through the interval timer…
                if i % 16 == 0 {
                    let _g = snitch.interval_lock.lock(ctx);
                }
                // …and, less often, touch the shared bookkeeping fields
                // (offset from the lock passes, so these plain accesses
                // run in the unprotected part of the loop).
                if i % 32 == 17 {
                    snitch.fields[i / 32 % NUM_FIELDS].update(ctx, |v| v + 1);
                }
                // Samplers also consult the rank scores when routing — an
                // unsynchronized read racing with recalculation's writes.
                if i % 8 == 0 {
                    snitch.scores.get(ctx, Value::Int(node));
                }
            }
        }));
    }

    // Two concurrent rank recalculators.
    for r in 0..2 {
        let snitch = Arc::clone(&snitch);
        let cfg = *config;
        handles.push(rt.spawn(&main, move |ctx| {
            let _ = r;
            for i in 0..cfg.rank_iterations {
                // The two recalculators serialize on the scheduler lock
                // (Cassandra runs them from a scheduled executor), so the
                // scores map itself stays ordered; the races are against
                // the samplers.
                let _g = snitch.interval_lock.lock(ctx);
                snitch.recalculate(ctx, cfg.nodes, i, cfg.busy_units);
                drop(_g);
                std::thread::yield_now();
            }
        }));
    }

    for h in handles {
        h.join(&main).unwrap();
    }
    let elapsed = start.elapsed();
    SnitchResult {
        elapsed,
        total_ops: (config.samplers * config.updates_per_sampler) as u64
            + 2 * config.rank_iterations as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_core::Rd2;
    use crace_fasttrack::FastTrack;
    use crace_model::{Analysis, NoopAnalysis};

    #[test]
    fn runs_under_noop() {
        let r = run_snitch(Arc::new(NoopAnalysis::new()), &SnitchConfig::smoke());
        assert!(r.total_ops > 0);
        assert!(r.elapsed.as_nanos() > 0);
    }

    #[test]
    fn rd2_finds_races_on_at_most_two_objects() {
        let rd2 = Arc::new(Rd2::new());
        run_snitch(rd2.clone(), &SnitchConfig::smoke());
        let report = rd2.report();
        assert!(report.total() > 0, "{report:?}");
        assert!(report.distinct() <= 2, "{report:?}");
    }

    #[test]
    fn fasttrack_sees_fewer_races_than_rd2_here() {
        // The snitch's harmful behaviour is at map granularity; FastTrack
        // only sees the handful of plain-field races. This is the
        // signature inversion of Table 2's last row.
        let cfg = SnitchConfig::smoke();
        let rd2 = Arc::new(Rd2::new());
        run_snitch(rd2.clone(), &cfg);
        let ft = Arc::new(FastTrack::new());
        run_snitch(ft.clone(), &cfg);
        assert!(
            rd2.report().total() > ft.report().total(),
            "rd2 = {:?}, ft = {:?}",
            rd2.report(),
            ft.report()
        );
        assert!(ft.report().distinct() <= NUM_FIELDS);
    }
}
