//! Evaluation workloads reproducing the PLDI'14 experimental setup
//! (Table 2) on the `crace` runtime.
//!
//! The paper evaluates RD2 against FASTTRACK on two industrial Java
//! applications; this crate rebuilds the *relevant mechanics* of both:
//!
//! * [`mvstore`] — a miniature multi-version store modeled on H2's MVStore:
//!   a data map, a `chunks` map populated with a check-then-act pattern,
//!   and a `freedPageSpace` map updated with read-modify-write at map
//!   granularity — the two harmful commutativity races RD2 found in H2 —
//!   plus two dozen plain statistics fields for the low-level baseline to
//!   shadow (H2's FastTrack races live in such fields),
//! * [`circuits`] — six Pole-Position-style benchmark circuits
//!   (ComplexConcurrency, an alternate-query-distribution variant,
//!   QueryCentricConcurrency, InsertCentricConcurrency, Complex,
//!   NestedLists) generating the operation mixes of Table 2's H2 rows,
//! * [`snitch`] — the Cassandra `DynamicEndpointSnitch` simulation: sampler
//!   threads folding latencies into a `samples` map while rank
//!   recalculation consults `size()` — the third reported race,
//! * [`connections`] — the Fig. 1 duplicate-hosts program,
//! * [`table2`] — the harness that runs every benchmark under
//!   uninstrumented / FastTrack / RD2 settings and renders the
//!   qps-and-races table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuits;
pub mod connections;
pub mod mvstore;
pub mod snitch;
pub mod table2;

mod busy;

pub use busy::busy_work;
