//! The Table 2 harness: every benchmark × {uninstrumented, FastTrack,
//! RD2}, reporting throughput (or seconds) and `total (distinct)` races.

use crate::circuits::{run_circuit, Circuit, CircuitConfig};
use crate::snitch::{run_snitch, SnitchConfig};
use crace_core::Rd2;
use crace_fasttrack::FastTrack;
use crace_model::{Analysis, NoopAnalysis, RaceReport};
use crace_runtime::ObjectRegistry;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Parameters for a full Table 2 regeneration.
#[derive(Clone, Copy, Debug, Default)]
pub struct Table2Config {
    /// Circuit parameters (shared by all six H2 rows).
    pub circuit: CircuitConfig,
    /// Snitch parameters (the Cassandra row).
    pub snitch: SnitchConfig,
}

impl Table2Config {
    /// A fast configuration for tests.
    pub fn smoke() -> Table2Config {
        Table2Config {
            circuit: CircuitConfig::smoke(),
            snitch: SnitchConfig::smoke(),
        }
    }
}

/// One measured cell: performance plus the race report (empty for the
/// uninstrumented setting).
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Operations executed.
    pub total_ops: u64,
    /// Races reported by the analysis.
    pub races: RaceReport,
}

impl Measurement {
    /// Operations per second.
    pub fn qps(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// One row of the table: a benchmark under the three settings.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Application (H2 database / Cassandra).
    pub application: &'static str,
    /// Benchmark name.
    pub benchmark: String,
    /// `true` for rows reported in seconds (the snitch), `false` for qps.
    pub in_seconds: bool,
    /// The uninstrumented baseline.
    pub uninstrumented: Measurement,
    /// Under FastTrack.
    pub fasttrack: Measurement,
    /// Under RD2.
    pub rd2: Measurement,
}

impl Table2Row {
    fn perf(&self, m: &Measurement) -> String {
        if self.in_seconds {
            format!("{:.3} s", m.elapsed.as_secs_f64())
        } else {
            format!("{:.0} qps", m.qps())
        }
    }
}

/// A regenerated Table 2.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// All measured rows, in paper order.
    pub rows: Vec<Table2Row>,
}

enum Setting {
    Uninstrumented,
    FastTrack,
    Rd2,
}

fn measure<F>(setting: &Setting, run: F) -> Measurement
where
    F: FnOnce(Arc<dyn ObjectRegistry>) -> (Duration, u64),
{
    match setting {
        Setting::Uninstrumented => {
            let analysis = Arc::new(NoopAnalysis::new());
            let (elapsed, total_ops) = run(analysis);
            Measurement {
                elapsed,
                total_ops,
                races: RaceReport::new(),
            }
        }
        Setting::FastTrack => {
            let analysis = Arc::new(FastTrack::new());
            let (elapsed, total_ops) = run(analysis.clone());
            Measurement {
                elapsed,
                total_ops,
                races: analysis.report(),
            }
        }
        Setting::Rd2 => {
            let analysis = Arc::new(Rd2::new());
            let (elapsed, total_ops) = run(analysis.clone());
            Measurement {
                elapsed,
                total_ops,
                races: analysis.report(),
            }
        }
    }
}

/// Runs one circuit under all three settings.
pub fn run_circuit_row(circuit: Circuit, config: &CircuitConfig) -> Table2Row {
    let mut cells = Vec::new();
    for setting in [Setting::Uninstrumented, Setting::FastTrack, Setting::Rd2] {
        cells.push(measure(&setting, |analysis| {
            let r = run_circuit(circuit, analysis, config);
            (r.elapsed, r.total_ops)
        }));
    }
    let rd2 = cells.pop().expect("three settings");
    let fasttrack = cells.pop().expect("three settings");
    let uninstrumented = cells.pop().expect("three settings");
    Table2Row {
        application: "H2 database",
        benchmark: circuit.name().to_string(),
        in_seconds: false,
        uninstrumented,
        fasttrack,
        rd2,
    }
}

/// Runs the snitch row under all three settings.
pub fn run_snitch_row(config: &SnitchConfig) -> Table2Row {
    let mut cells = Vec::new();
    for setting in [Setting::Uninstrumented, Setting::FastTrack, Setting::Rd2] {
        cells.push(measure(&setting, |analysis| {
            let r = run_snitch(analysis, config);
            (r.elapsed, r.total_ops)
        }));
    }
    let rd2 = cells.pop().expect("three settings");
    let fasttrack = cells.pop().expect("three settings");
    let uninstrumented = cells.pop().expect("three settings");
    Table2Row {
        application: "Cassandra",
        benchmark: "DynamicEndpointSnitch test".to_string(),
        in_seconds: true,
        uninstrumented,
        fasttrack,
        rd2,
    }
}

/// Regenerates the full Table 2: six H2 circuits plus the Cassandra
/// snitch.
pub fn run_table2(config: &Table2Config) -> Table2 {
    let mut rows: Vec<Table2Row> = Circuit::ALL
        .iter()
        .map(|c| run_circuit_row(*c, &config.circuit))
        .collect();
    rows.push(run_snitch_row(&config.snitch));
    Table2 { rows }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<13} {:<46} | {:>14} {:>14} {:>14} | {:>12} {:>12}",
            "Application",
            "Benchmark",
            "Uninstrumented",
            "FastTrack",
            "RD2",
            "FT races",
            "RD2 races"
        )?;
        writeln!(f, "{}", "-".repeat(134))?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<13} {:<46} | {:>14} {:>14} {:>14} | {:>12} {:>12}",
                row.application,
                row.benchmark,
                row.perf(&row.uninstrumented),
                row.perf(&row.fasttrack),
                row.perf(&row.rd2),
                row.fasttrack.races.to_string(),
                row.rd2.races.to_string(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table_has_expected_shape() {
        let table = run_table2(&Table2Config::smoke());
        assert_eq!(table.rows.len(), 7);
        // Query-centric and non-concurrent circuits: RD2 reports nothing.
        for row in &table.rows {
            match row.benchmark.as_str() {
                "QueryCentricConcurrency" | "Complex" | "NestedLists" => {
                    assert!(
                        row.rd2.races.is_empty(),
                        "{}: {:?}",
                        row.benchmark,
                        row.rd2.races
                    );
                }
                "ComplexConcurrency" | "InsertCentricConcurrency" => {
                    assert!(row.rd2.races.total() > 0, "{}", row.benchmark);
                    assert!(row.rd2.races.distinct() <= 2);
                }
                _ => {}
            }
        }
        // Snitch: RD2 finds more races than FastTrack.
        let snitch = table.rows.last().unwrap();
        assert!(snitch.in_seconds);
        assert!(snitch.rd2.races.total() > snitch.fasttrack.races.total());
        // Rendering works and mentions every benchmark.
        let rendered = table.to_string();
        for row in &table.rows {
            assert!(rendered.contains(&row.benchmark));
        }
    }

    #[test]
    fn uninstrumented_cells_never_report_races() {
        let row = run_circuit_row(Circuit::QueryCentricConcurrency, &CircuitConfig::smoke());
        assert!(row.uninstrumented.races.is_empty());
        assert!(row.uninstrumented.qps() > 0.0);
    }
}
