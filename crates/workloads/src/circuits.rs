//! Pole-Position-style benchmark circuits over the mini-MVStore.
//!
//! The Pole Position suite drives a SQL database through fixed operation
//! mixes ("circuits"); Table 2 of the paper runs six of them against H2.
//! We reproduce the six as operation mixes over [`MvStore`]:
//!
//! | circuit | character |
//! |---|---|
//! | `ComplexConcurrency` | all operation types from N concurrent clients |
//! | `ComplexConcurrencyAlt` | same circuit, alternate (query-heavier) distribution |
//! | `QueryCentricConcurrency` | concurrent read-only queries over preloaded rows |
//! | `InsertCentricConcurrency` | concurrent bulk inserts |
//! | `Complex` | the full mix from a single client (no concurrent queries) |
//! | `NestedLists` | single-client nested-structure churn |
//!
//! Clients write disjoint key ranges (each Pole Position client inserts its
//! own rows) but share chunk-level metadata, so the commutativity races
//! concentrate on the `chunks` and `freedPageSpace` maps, as in the paper.
//! The two non-concurrent circuits still run H2's background flusher,
//! whose dirty-flag fields race with the foreground client at the
//! FastTrack level only.

use crate::mvstore::MvStore;
use crace_runtime::{ObjectRegistry, Runtime, ThreadCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The six benchmark circuits of Table 2's H2 section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Circuit {
    /// All operation types from N concurrent clients.
    ComplexConcurrency,
    /// ComplexConcurrency with the alternate (query-heavier) distribution.
    ComplexConcurrencyAlt,
    /// Concurrent read-only queries over preloaded rows.
    QueryCentricConcurrency,
    /// Concurrent bulk inserts.
    InsertCentricConcurrency,
    /// The full mix from a single client.
    Complex,
    /// Single-client nested-structure churn.
    NestedLists,
}

impl Circuit {
    /// All circuits, in Table 2 order.
    pub const ALL: [Circuit; 6] = [
        Circuit::ComplexConcurrency,
        Circuit::ComplexConcurrencyAlt,
        Circuit::QueryCentricConcurrency,
        Circuit::InsertCentricConcurrency,
        Circuit::Complex,
        Circuit::NestedLists,
    ];

    /// The benchmark name as printed in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            Circuit::ComplexConcurrency => "ComplexConcurrency",
            Circuit::ComplexConcurrencyAlt => "ComplexConcurrency (alternate query distrib.)",
            Circuit::QueryCentricConcurrency => "QueryCentricConcurrency",
            Circuit::InsertCentricConcurrency => "InsertCentricConcurrency",
            Circuit::Complex => "Complex",
            Circuit::NestedLists => "NestedLists",
        }
    }

    /// Does the circuit issue operations from multiple concurrent clients?
    pub fn is_concurrent(self) -> bool {
        matches!(
            self,
            Circuit::ComplexConcurrency
                | Circuit::ComplexConcurrencyAlt
                | Circuit::QueryCentricConcurrency
                | Circuit::InsertCentricConcurrency
        )
    }

    /// Cumulative operation-mix weights
    /// `(insert, query, update, delete, commit, compact, free_pages)`,
    /// out of 100.
    fn mix(self) -> [u32; 7] {
        match self {
            Circuit::ComplexConcurrency | Circuit::Complex => [32, 31, 20, 5, 8, 1, 3],
            Circuit::ComplexConcurrencyAlt => [16, 51, 15, 5, 8, 1, 4],
            Circuit::QueryCentricConcurrency => [0, 100, 0, 0, 0, 0, 0],
            Circuit::InsertCentricConcurrency => [82, 0, 0, 5, 10, 0, 3],
            Circuit::NestedLists => [25, 20, 40, 10, 3, 0, 2],
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of a circuit run.
#[derive(Clone, Copy, Debug)]
pub struct CircuitConfig {
    /// Concurrent clients (concurrent circuits only; the single-client
    /// circuits always use one worker plus the background flusher).
    pub workers: usize,
    /// Operations per client.
    pub ops_per_worker: usize,
    /// Keys per client's private range.
    pub keys_per_worker: i64,
    /// CPU units of simulated work per operation.
    pub busy_units: u64,
    /// RNG seed (per-client streams are derived from it).
    pub seed: u64,
    /// Realistic maintenance locking (see [`MvStore::new`]): `true` for
    /// measurement runs — routine maintenance synchronizes through the
    /// store lock and only the buggy paths race, keeping race counts in
    /// the paper's regime; `false` for deterministic stress tests.
    pub locked_maintenance: bool,
}

impl Default for CircuitConfig {
    fn default() -> CircuitConfig {
        CircuitConfig {
            workers: 4,
            ops_per_worker: 20_000,
            keys_per_worker: 2_048,
            busy_units: 40,
            seed: 0xC0FFEE,
            locked_maintenance: true,
        }
    }
}

impl CircuitConfig {
    /// A small configuration for tests (hundreds of operations).
    pub fn smoke() -> CircuitConfig {
        CircuitConfig {
            workers: 3,
            ops_per_worker: 300,
            keys_per_worker: 128,
            busy_units: 0,
            seed: 7,
            locked_maintenance: false,
        }
    }
}

/// Result of one circuit run.
#[derive(Clone, Debug)]
pub struct CircuitResult {
    /// The circuit that ran.
    pub circuit: Circuit,
    /// Total operations executed across clients.
    pub total_ops: u64,
    /// Wall-clock time of the measured section.
    pub elapsed: Duration,
}

impl CircuitResult {
    /// Queries (operations) per second — the Table 2 performance metric.
    pub fn qps(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs one circuit against a fresh store under the given analysis.
///
/// The store is preloaded (query circuits need rows to read) *before* any
/// worker forks, so preloading is happens-before everything and
/// contributes no races.
pub fn run_circuit(
    circuit: Circuit,
    analysis: Arc<dyn ObjectRegistry>,
    config: &CircuitConfig,
) -> CircuitResult {
    let rt = Runtime::new(analysis);
    let main = rt.main_ctx();
    let store = MvStore::new(&rt, config.busy_units, config.locked_maintenance);

    let workers = if circuit.is_concurrent() {
        config.workers.max(1)
    } else {
        1
    };

    // Preload every client's key range (ordered before all workers).
    for w in 0..workers as i64 {
        for k in 0..config.keys_per_worker {
            let key = w * config.keys_per_worker + k;
            store.insert(&main, key, key);
        }
    }

    let start = Instant::now();
    let mut handles = Vec::new();
    for w in 0..workers {
        let store = store.clone();
        let cfg = *config;
        handles.push(rt.spawn(&main, move |ctx| {
            run_client(circuit, &store, ctx, w as i64, &cfg);
        }));
    }

    // The background flusher of the non-concurrent circuits.
    let stop = Arc::new(AtomicBool::new(false));
    let flusher = if !circuit.is_concurrent() {
        let store = store.clone();
        let stop = Arc::clone(&stop);
        let ticks = if circuit == Circuit::NestedLists {
            // NestedLists churns metadata much harder (its Table 2 race
            // count dwarfs Complex's).
            config.ops_per_worker / 8
        } else {
            config.ops_per_worker / 64
        }
        .max(1);
        Some(rt.spawn(&main, move |ctx| {
            let mut done = 0usize;
            while done < ticks && !stop.load(Ordering::Relaxed) {
                store.flusher_tick(ctx);
                done += 1;
                std::thread::yield_now();
            }
        }))
    } else {
        None
    };

    for h in handles {
        h.join(&main).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = flusher {
        h.join(&main).unwrap();
    }
    let elapsed = start.elapsed();

    CircuitResult {
        circuit,
        total_ops: (workers * config.ops_per_worker) as u64,
        elapsed,
    }
}

/// One client's operation loop.
fn run_client(
    circuit: Circuit,
    store: &MvStore,
    ctx: &ThreadCtx,
    worker: i64,
    config: &CircuitConfig,
) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (worker as u64).wrapping_mul(0x9E3779B9));
    let mix = circuit.mix();
    let my_base = worker * config.keys_per_worker;
    let all_keys = (if circuit.is_concurrent() {
        config.workers as i64
    } else {
        1
    }) * config.keys_per_worker;

    for _ in 0..config.ops_per_worker {
        let my_key = my_base + rng.gen_range(0..config.keys_per_worker);
        let any_key = rng.gen_range(0..all_keys);
        let mut roll = rng.gen_range(0..100u32);
        let mut op = 0usize;
        for (i, w) in mix.iter().enumerate() {
            if roll < *w {
                op = i;
                break;
            }
            roll -= w;
            op = i;
        }
        match op {
            0 => store.insert(ctx, my_key, my_key),
            1 => {
                // Clients read their own rows (H2's MVCC gives readers a
                // snapshot, so cross-session read/write pairs are ordered
                // and invisible to the detector; per-session reads model
                // that without building full MVCC visibility).
                store.query(ctx, my_key);
            }
            2 => store.update(ctx, my_key, 1),
            3 => store.delete(ctx, my_key),
            4 => store.commit(ctx),
            5 => store.compact(ctx, all_keys / crate::mvstore::CHUNK_SPAN + 1),
            _ => store.free_pages(ctx, MvStore::chunk_of(any_key), 8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_core::Rd2;
    use crace_fasttrack::FastTrack;
    use crace_model::{Analysis, NoopAnalysis};

    #[test]
    fn mixes_sum_to_100() {
        for c in Circuit::ALL {
            assert_eq!(c.mix().iter().sum::<u32>(), 100, "{c}");
        }
    }

    #[test]
    fn all_circuits_run_under_noop() {
        for c in Circuit::ALL {
            let r = run_circuit(c, Arc::new(NoopAnalysis::new()), &CircuitConfig::smoke());
            assert!(r.total_ops > 0);
            assert!(r.qps() > 0.0);
        }
    }

    #[test]
    fn query_centric_has_no_commutativity_races() {
        let rd2 = Arc::new(Rd2::new());
        run_circuit(
            Circuit::QueryCentricConcurrency,
            rd2.clone(),
            &CircuitConfig::smoke(),
        );
        assert!(rd2.report().is_empty(), "{:?}", rd2.report());
    }

    #[test]
    fn non_concurrent_circuits_have_no_commutativity_races() {
        for c in [Circuit::Complex, Circuit::NestedLists] {
            let rd2 = Arc::new(Rd2::new());
            run_circuit(c, rd2.clone(), &CircuitConfig::smoke());
            assert!(rd2.report().is_empty(), "{c}: {:?}", rd2.report());
        }
    }

    #[test]
    fn complex_concurrency_races_on_exactly_the_two_mvstore_maps() {
        let rd2 = Arc::new(Rd2::new());
        run_circuit(
            Circuit::ComplexConcurrency,
            rd2.clone(),
            &CircuitConfig::smoke(),
        );
        let report = rd2.report();
        assert!(report.total() > 0, "{report:?}");
        // chunks + freedPageSpace: at most 2 distinct objects.
        assert!(report.distinct() <= 2, "{report:?}");
    }

    #[test]
    fn insert_centric_races_but_less_than_complex() {
        let rd2 = Arc::new(Rd2::new());
        run_circuit(
            Circuit::InsertCentricConcurrency,
            rd2.clone(),
            &CircuitConfig::smoke(),
        );
        let report = rd2.report();
        assert!(report.total() > 0, "{report:?}");
        assert!(report.distinct() <= 2);
    }

    #[test]
    fn fasttrack_sees_stat_races_in_concurrent_circuits() {
        let ft = Arc::new(FastTrack::new());
        run_circuit(
            Circuit::ComplexConcurrency,
            ft.clone(),
            &CircuitConfig::smoke(),
        );
        let report = ft.report();
        assert!(report.total() > 0);
        // Many distinct stat fields race.
        assert!(report.distinct() >= 5, "{report:?}");
    }

    #[test]
    fn fasttrack_sees_only_flusher_races_in_non_concurrent_circuits() {
        let ft = Arc::new(FastTrack::new());
        run_circuit(Circuit::Complex, ft.clone(), &CircuitConfig::smoke());
        let report = ft.report();
        // Only MetaDirty and SyncPending are shared with the flusher.
        assert!(report.distinct() <= 2, "{report:?}");
    }
}
