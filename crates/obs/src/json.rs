//! A minimal, dependency-free JSON syntax checker and value parser.
//!
//! The CLI emits hand-written JSON ([`crate::Snapshot::to_json`],
//! `RaceReport::to_json` in `crace-model`); CI gates on those documents
//! actually parsing. This module is the recursive-descent validator the
//! checker tests use — it accepts exactly RFC 8259 JSON and reports the
//! first offending byte offset. [`parse`] runs the same grammar but keeps
//! the value as a [`Json`] tree, which is what `crace bench-diff` and the
//! bench-snapshot schema check consume.
//!
//! # Examples
//!
//! ```
//! use crace_obs::json;
//!
//! assert!(json::validate("{\"a\": [1, 2.5e3, null]}").is_ok());
//! assert!(json::validate("{\"a\": }").is_err());
//! let doc = json::parse("{\"rows\": [{\"id\": \"x\", \"ns\": 12.5}]}").unwrap();
//! let rows = doc.get("rows").and_then(json::Json::as_array).unwrap();
//! assert_eq!(rows[0].get("ns").and_then(json::Json::as_f64), Some(12.5));
//! ```

/// A parsed JSON value.
///
/// Objects keep insertion order (a `Vec` of pairs, not a map) so parsed
/// documents can be reported in their original order; duplicate keys are
/// syntactically legal per RFC 8259 and [`Json::get`] returns the first.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as an `f64`.
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Escapes `s` as the body of a JSON string literal.
///
/// # Examples
///
/// ```
/// assert_eq!(crace_obs::json::escape("a\"b"), "a\\\"b");
/// ```
pub fn escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Validates that `input` is exactly one JSON value (plus whitespace).
///
/// # Errors
///
/// Returns a message naming the byte offset and what was expected.
pub fn validate(input: &str) -> Result<(), String> {
    parse(input).map(|_| ())
}

/// Parses `input` into a [`Json`] value; same grammar as [`validate`].
///
/// # Errors
///
/// Returns a message naming the byte offset and what was expected.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let parsed = value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(parsed)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, pos))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos).map(Json::Str),
        Some(b't') => literal(b, pos, b"true").map(|()| Json::Bool(true)),
        Some(b'f') => literal(b, pos, b"false").map(|()| Json::Bool(false)),
        Some(b'n') => literal(b, pos, b"null").map(|()| Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err(format!("expected a value at byte {pos}")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    skip_ws(b, pos);
    let mut pairs = Vec::new();
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        let key = string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        skip_ws(b, pos);
        let val = value(b, pos)?;
        pairs.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    skip_ws(b, pos);
    let mut items = Vec::new();
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => {
                        out.push('"');
                        *pos += 1;
                    }
                    Some(b'\\') => {
                        out.push('\\');
                        *pos += 1;
                    }
                    Some(b'/') => {
                        out.push('/');
                        *pos += 1;
                    }
                    Some(b'b') => {
                        out.push('\u{0008}');
                        *pos += 1;
                    }
                    Some(b'f') => {
                        out.push('\u{000c}');
                        *pos += 1;
                    }
                    Some(b'n') => {
                        out.push('\n');
                        *pos += 1;
                    }
                    Some(b'r') => {
                        out.push('\r');
                        *pos += 1;
                    }
                    Some(b't') => {
                        out.push('\t');
                        *pos += 1;
                    }
                    Some(b'u') => {
                        *pos += 1;
                        let hi = hex4(b, pos)?;
                        let code = if (0xd800..0xdc00).contains(&hi)
                            && b.get(*pos) == Some(&b'\\')
                            && b.get(*pos + 1) == Some(&b'u')
                        {
                            // A high surrogate followed by a \u escape:
                            // decode the pair. An unpaired low half falls
                            // through to the replacement character below.
                            let save = *pos;
                            *pos += 2;
                            let lo = hex4(b, pos)?;
                            if (0xdc00..0xe000).contains(&lo) {
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                *pos = save;
                                hi
                            }
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control character at byte {pos}")),
            _ => {
                // Advance over one UTF-8 scalar: `input` is a &str, so
                // continuation bytes are well-formed.
                let start = *pos;
                *pos += 1;
                while b.get(*pos).is_some_and(|&c| c & 0xc0 == 0x80) {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).expect("input was a &str"));
            }
        }
    }
    Err("unterminated string".to_string())
}

fn hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    let mut code = 0u32;
    for _ in 0..4 {
        let Some(d) = b.get(*pos).and_then(|&c| (c as char).to_digit(16)) else {
            return Err(format!("bad \\u escape at byte {pos}"));
        };
        code = code * 16 + d;
        *pos += 1;
    }
    Ok(code)
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| -> Result<(), String> {
        let start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == start {
            Err(format!("expected digits at byte {pos}"))
        } else {
            Ok(())
        }
    };
    digits(b, pos)?;
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        digits(b, pos)?;
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        digits(b, pos)?;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("digits are ASCII");
    let parsed = text
        .parse::<f64>()
        .map_err(|e| format!("bad number at byte {start}: {e}"))?;
    Ok(Json::Num(parsed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_rfc_examples() {
        for ok in [
            "null",
            "true",
            "-12.5e-3",
            "\"hi \\u00e9\"",
            "[]",
            "{}",
            "[1, [2, {\"x\": null}], \"s\"]",
            "  {\"a\": {\"b\": [false]}}  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{'a': 1}",
            "01e",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "nul",
            "[1 2]",
            "\"bad \\x escape\"",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_raw_control_chars_in_strings() {
        assert!(validate("\"a\nb\"").is_err());
    }

    #[test]
    fn parse_builds_the_value_tree() {
        let doc = parse("{\"a\": [1, -2.5, true, null], \"b\": {\"c\": \"s\"}}").unwrap();
        assert_eq!(
            doc.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(4)
        );
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(
            doc.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("s")
        );
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parse_decodes_escapes() {
        assert_eq!(
            parse("\"a\\n\\t\\\\\\\"\\u00e9\"").unwrap(),
            Json::Str("a\n\t\\\"é".to_string())
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_string())
        );
        // Unpaired high surrogate decodes to the replacement character.
        assert_eq!(
            parse("\"\\ud83d!\"").unwrap(),
            Json::Str("\u{fffd}!".to_string())
        );
        // Non-ASCII raw characters survive.
        assert_eq!(parse("\"héllo\"").unwrap(), Json::Str("héllo".to_string()));
    }

    #[test]
    fn parse_round_trips_escape() {
        let original = "line1\nline2\t\"quoted\" \\slash";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap(), Json::Str(original.to_string()));
    }

    #[test]
    fn duplicate_keys_return_first() {
        let doc = parse("{\"k\": 1, \"k\": 2}").unwrap();
        assert_eq!(doc.get("k").and_then(Json::as_f64), Some(1.0));
    }
}
