//! A minimal, dependency-free JSON syntax checker.
//!
//! The CLI emits hand-written JSON ([`crate::Snapshot::to_json`],
//! `RaceReport::to_json` in `crace-model`); CI gates on those documents
//! actually parsing. This module is the recursive-descent validator the
//! checker tests use — it accepts exactly RFC 8259 JSON and reports the
//! first offending byte offset.
//!
//! # Examples
//!
//! ```
//! use crace_obs::json;
//!
//! assert!(json::validate("{\"a\": [1, 2.5e3, null]}").is_ok());
//! assert!(json::validate("{\"a\": }").is_err());
//! ```

/// Escapes `s` as the body of a JSON string literal.
///
/// # Examples
///
/// ```
/// assert_eq!(crace_obs::json::escape("a\"b"), "a\\\"b");
/// ```
pub fn escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Validates that `input` is exactly one JSON value (plus whitespace).
///
/// # Errors
///
/// Returns a message naming the byte offset and what was expected.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, pos))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err(format!("expected a value at byte {pos}")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'{')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'[')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control character at byte {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| -> Result<(), String> {
        let start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == start {
            Err(format!("expected digits at byte {pos}"))
        } else {
            Ok(())
        }
    };
    digits(b, pos)?;
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        digits(b, pos)?;
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        digits(b, pos)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_rfc_examples() {
        for ok in [
            "null",
            "true",
            "-12.5e-3",
            "\"hi \\u00e9\"",
            "[]",
            "{}",
            "[1, [2, {\"x\": null}], \"s\"]",
            "  {\"a\": {\"b\": [false]}}  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{'a': 1}",
            "01e",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "nul",
            "[1 2]",
            "\"bad \\x escape\"",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_raw_control_chars_in_strings() {
        assert!(validate("\"a\nb\"").is_err());
    }
}
