//! Observability primitives for the `crace` toolkit.
//!
//! The paper's evaluation (§7, Table 2) is entirely about *measured*
//! behaviour — per-event overhead, total vs distinct races — so the
//! detectors need first-class metrics rather than ad-hoc printouts. This
//! crate provides the metric vocabulary every other crate records into:
//!
//! * [`Counter`] — a monotonic event count (striped atomics, lock-free),
//! * [`Gauge`] — a last-write-wins instantaneous value,
//! * [`Histogram`] — a fixed-bucket log₂-scale latency histogram with
//!   p50/p95/p99 summaries, sized for nanosecond timings,
//! * [`Registry`] — a named collection of the above; registration takes a
//!   lock once, recording through the returned [`std::sync::Arc`] handles
//!   never does,
//! * [`Snapshot`] — a point-in-time copy of a registry that renders to
//!   JSON ([`Snapshot::to_json`]) and to the Prometheus text exposition
//!   format ([`Snapshot::to_prometheus`]) via hand-written writers (the
//!   workspace builds offline; no serde),
//! * [`json`] — a dependency-free JSON syntax checker and small value
//!   parser used by the CLI tests and anything consuming JSON snapshots,
//! * [`trace`] — a lock-free structured-tracing subsystem ([`Tracer`] /
//!   [`Lane`] / [`SpanGuard`]): bounded drop-oldest span ring buffers per
//!   worker, Chrome trace-event JSON and collapsed-stack flamegraph
//!   exports, and derived timeline metrics fed back into a [`Registry`].
//!
//! Consistent with the vendored-shims build, this crate depends on
//! nothing — not even the other `crace` crates — so any layer (model,
//! detectors, runtime, benches, CLI) can use it without cycles.
//!
//! # Examples
//!
//! ```
//! use crace_obs::Registry;
//!
//! let registry = Registry::new();
//! let events = registry.counter("events.action");
//! let latency = registry.histogram("event.ns");
//! events.inc();
//! latency.record(1_250);
//! let snapshot = registry.snapshot();
//! assert!(snapshot.to_json().contains("\"events.action\": 1"));
//! assert!(snapshot.to_prometheus().contains("# TYPE crace_event_ns summary"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
pub mod json;
mod metric;
mod registry;
mod snapshot;
pub mod trace;

pub use histogram::{Histogram, HistogramSummary, NUM_BUCKETS};
pub use metric::{Counter, Gauge};
pub use registry::Registry;
pub use snapshot::{prom_escape_label, MetricValue, Snapshot};
pub use trace::{
    EventKind, Lane, PhaseId, SampledSpans, SpanGuard, TraceEvent, Tracer, DEFAULT_LANE_CAPACITY,
};
