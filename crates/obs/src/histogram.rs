//! Fixed-bucket log-scale latency histograms.

use crate::metric::stripe_index;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets. Bucket `b` (for `b ≥ 1`) holds values in
/// `[2^(b-1), 2^b)`; bucket 0 holds zero; the last bucket additionally
/// absorbs everything above `2^(NUM_BUCKETS-2)` (≈ 4.6 × 10¹⁸, far beyond
/// any nanosecond timing).
pub const NUM_BUCKETS: usize = 64;

/// How many stripes each bucket is split over. Latency recording happens
/// on the observed hot path, so buckets get the same contention treatment
/// as [`crate::Counter`] cells (but fewer stripes — 64 buckets × stripes
/// must stay cache-friendly).
const HIST_STRIPES: usize = 4;

/// A lock-free histogram over `u64` samples (by convention nanoseconds),
/// with power-of-two buckets.
///
/// Recording is one relaxed `fetch_add` into the sample's bucket plus two
/// more for the count/sum — no locks, no allocation. Quantiles are
/// estimated at snapshot time from the bucket cumulative distribution,
/// reported as the geometric midpoint of the containing bucket (log-scale
/// resolution: a factor of √2 ≈ ±41%, plenty for "is RD2 2× or 10× slower
/// per event" questions).
///
/// # Examples
///
/// ```
/// use crace_obs::Histogram;
///
/// let h = Histogram::new();
/// for ns in [100, 110, 120, 5_000] {
///     h.record(ns);
/// }
/// let s = h.summary();
/// assert_eq!(s.count, 4);
/// assert!(s.p50 >= 64 && s.p50 < 256, "{}", s.p50);
/// assert!(s.p99 >= 4_096, "{}", s.p99);
/// ```
pub struct Histogram {
    buckets: Vec<AtomicU64>, // NUM_BUCKETS × HIST_STRIPES, stripe-major
    count: AtomicU64,
    sum: AtomicU64,
}

/// The point-in-time summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (for the mean).
    pub sum: u64,
    /// Estimated 50th percentile.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean sample value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..NUM_BUCKETS * HIST_STRIPES)
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index of `value`: 0 for 0, else `⌊log₂ value⌋ + 1`,
    /// clamped to the last bucket.
    #[inline]
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            return 0;
        }
        ((64 - value.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let stripe = stripe_index() % HIST_STRIPES;
        let idx = stripe * NUM_BUCKETS + Self::bucket_of(value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The merged (stripe-summed) bucket counts.
    pub fn bucket_counts(&self) -> [u64; NUM_BUCKETS] {
        let mut merged = [0u64; NUM_BUCKETS];
        for stripe in 0..HIST_STRIPES {
            for (b, m) in merged.iter_mut().enumerate() {
                *m += self.buckets[stripe * NUM_BUCKETS + b].load(Ordering::Relaxed);
            }
        }
        merged
    }

    /// A representative value for bucket `b`: the geometric midpoint of
    /// `[2^(b-1), 2^b)`.
    fn bucket_value(b: usize) -> u64 {
        if b == 0 {
            return 0;
        }
        let lo = 1u64 << (b - 1);
        // ⌊lo·√2⌋ without floating point drama: lo + lo/2 underestimates
        // √2 by 6%, good enough inside a ±41% bucket.
        lo + lo / 2
    }

    /// Point-in-time count/sum/quantile summary.
    ///
    /// Quantiles use the "nearest rank" rule over the bucket CDF. A
    /// concurrent recorder can skew count vs buckets by a few in-flight
    /// samples; the estimate remains within a bucket of truth.
    pub fn summary(&self) -> HistogramSummary {
        let merged = self.bucket_counts();
        let total: u64 = merged.iter().sum();
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (b, &c) in merged.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return Self::bucket_value(b);
                }
            }
            Self::bucket_value(NUM_BUCKETS - 1)
        };
        HistogramSummary {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Histogram::new().summary();
        assert_eq!(s, HistogramSummary::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantiles_track_a_skewed_distribution() {
        let h = Histogram::new();
        // 95 fast samples (~100ns) and 5 slow (~1ms).
        for _ in 0..95 {
            h.record(100);
        }
        for _ in 0..5 {
            h.record(1_000_000);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        // p50/p95 in the 100ns bucket [64,128); p99 at the outliers.
        assert!((64..128).contains(&s.p50), "{}", s.p50);
        assert!((64..128).contains(&s.p95), "{}", s.p95);
        assert!(s.p99 > 500_000, "{}", s.p99);
        assert!((s.mean() - 50_095.0).abs() < 1.0);
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        for i in 0..1000u64 {
            h.record(i * 17 % 4096);
        }
        let s = h.summary();
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000 {
                    h.record(t * 1000 + i % 7);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 20_000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 20_000);
    }
}
