//! Point-in-time metric snapshots and their textual renderings.

use crate::HistogramSummary;
use std::fmt::Write as _;

/// The value of one metric at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// A monotonic count.
    Counter(u64),
    /// An instantaneous value.
    Gauge(f64),
    /// A latency histogram summary.
    Histogram(HistogramSummary),
}

/// A point-in-time copy of a [`crate::Registry`], ordered by metric name.
///
/// Renders to JSON and to the Prometheus text exposition format via
/// hand-written writers (this workspace builds with no registry access, so
/// no serde). Both renderings are deterministic: same snapshot, same
/// bytes.
///
/// # Examples
///
/// ```
/// use crace_obs::Registry;
///
/// let r = Registry::new();
/// r.counter("races.total").add(3);
/// let json = r.snapshot().to_json();
/// assert_eq!(json, "{\n  \"races.total\": 3\n}\n");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    values: Vec<(String, MetricValue)>,
}

use crate::json::escape as json_escape;

/// Formats an `f64` as a JSON-legal number (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Escapes `s` as a Prometheus label *value* (exposition format 0.0.4):
/// backslash, double quote, and newline are the only characters that need
/// escaping inside `label="..."`.
///
/// # Examples
///
/// ```
/// assert_eq!(crace_obs::prom_escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
/// ```
pub fn prom_escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Mangles a dotted metric name into a Prometheus identifier:
/// `rd2.event.ns` → `crace_rd2_event_ns`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("crace_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

impl Snapshot {
    pub(crate) fn new(values: Vec<(String, MetricValue)>) -> Snapshot {
        Snapshot { values }
    }

    /// The captured `(name, value)` pairs, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = &(String, MetricValue)> {
        self.values.iter()
    }

    /// A copy of this snapshot with every metric name prefixed by
    /// `prefix` (typically ending in `.`). Name order is preserved:
    /// prefixing every name with the same string keeps the sort.
    ///
    /// This is how a multi-tenant server namespaces per-session
    /// registries: `session.snapshot().prefixed("session.alice.")`.
    pub fn prefixed(&self, prefix: &str) -> Snapshot {
        Snapshot {
            values: self
                .values
                .iter()
                .map(|(n, v)| (format!("{prefix}{n}"), *v))
                .collect(),
        }
    }

    /// Merges snapshots into one, re-sorted by name. Duplicate names
    /// keep the value from the later operand (last write wins), so a
    /// scrape endpoint can union a server registry with prefixed
    /// per-session snapshots and still render deterministically.
    pub fn merged<I: IntoIterator<Item = Snapshot>>(parts: I) -> Snapshot {
        let mut values: Vec<(String, MetricValue)> =
            parts.into_iter().flat_map(|s| s.values).collect();
        // Stable sort: equal names keep insertion order, so `last = later
        // operand` after the backwards dedup below.
        values.sort_by(|a, b| a.0.cmp(&b.0));
        let mut deduped: Vec<(String, MetricValue)> = Vec::with_capacity(values.len());
        for (name, value) in values {
            match deduped.last_mut() {
                Some(last) if last.0 == name => last.1 = value,
                _ => deduped.push((name, value)),
            }
        }
        Snapshot { values: deduped }
    }

    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.values[i].1)
    }

    /// Number of captured metrics.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` iff no metric was captured.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The snapshot as a JSON object: counters as integers, gauges as
    /// numbers, histograms as `{count, sum, mean, p50, p95, p99}` objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, value)) in self.values.iter().enumerate() {
            let _ = write!(out, "  \"{}\": ", json_escape(name));
            match value {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "{c}");
                }
                MetricValue::Gauge(g) => out.push_str(&json_f64(*g)),
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                        h.count,
                        h.sum,
                        json_f64(h.mean()),
                        h.p50,
                        h.p95,
                        h.p99
                    );
                }
            }
            out.push_str(if i + 1 < self.values.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("}\n");
        out
    }

    /// The snapshot in the Prometheus text exposition format (version
    /// 0.0.4): counters as `counter`, gauges as `gauge`, histograms as
    /// `summary` with p50/p95/p99 quantile series plus `_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.values {
            let id = prom_name(name);
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {id} counter");
                    let _ = writeln!(out, "{id} {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {id} gauge");
                    let _ = writeln!(out, "{id} {g}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {id} summary");
                    for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                        let _ = writeln!(out, "{id}{{quantile=\"{}\"}} {v}", prom_escape_label(q));
                    }
                    let _ = writeln!(out, "{id}_sum {}", h.sum);
                    let _ = writeln!(out, "{id}_count {}", h.count);
                }
            }
        }
        out
    }

    /// A human-oriented aligned rendering, for `crace stats` and interval
    /// reports.
    pub fn to_pretty(&self) -> String {
        let width = self
            .values
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = String::new();
        for (name, value) in &self.values {
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{name:<width$}  {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{name:<width$}  {g:.4}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name:<width$}  n={} mean={:.0} p50={} p95={} p99={}",
                        h.count,
                        h.mean(),
                        h.p50,
                        h.p95,
                        h.p99
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot::new(vec![
            ("a.count".into(), MetricValue::Counter(7)),
            ("b.rate".into(), MetricValue::Gauge(0.25)),
            (
                "c.ns".into(),
                MetricValue::Histogram(HistogramSummary {
                    count: 10,
                    sum: 1000,
                    p50: 96,
                    p95: 96,
                    p99: 192,
                }),
            ),
        ])
    }

    #[test]
    fn json_is_well_formed_and_deterministic() {
        let json = sample().to_json();
        assert_eq!(json, sample().to_json());
        crate::json::validate(&json).expect("valid json");
        assert!(json.contains("\"a.count\": 7"));
        assert!(json.contains("\"p99\": 192"));
    }

    #[test]
    fn prometheus_has_type_lines_and_quantiles() {
        let prom = sample().to_prometheus();
        assert!(prom.contains("# TYPE crace_a_count counter"));
        assert!(prom.contains("crace_a_count 7"));
        assert!(prom.contains("# TYPE crace_c_ns summary"));
        assert!(prom.contains("crace_c_ns{quantile=\"0.95\"} 96"));
        assert!(prom.contains("crace_c_ns_count 10"));
        // Every non-comment line is `name[{labels}] value`.
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("name value");
            value.parse::<f64>().expect("numeric value");
        }
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn get_finds_by_name() {
        let s = sample();
        assert_eq!(s.get("a.count"), Some(&MetricValue::Counter(7)));
        assert_eq!(s.get("zzz"), None);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn prefixed_preserves_order_and_lookup() {
        let p = sample().prefixed("session.t1.");
        assert_eq!(p.len(), 3);
        assert_eq!(p.get("session.t1.a.count"), Some(&MetricValue::Counter(7)));
        assert_eq!(p.get("a.count"), None);
        // Still sorted, so binary-search lookups keep working.
        let names: Vec<&str> = p.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        crate::json::validate(&p.to_json()).expect("valid json");
    }

    #[test]
    fn merged_unions_and_later_operand_wins() {
        let a = Snapshot::new(vec![
            ("x".into(), MetricValue::Counter(1)),
            ("y".into(), MetricValue::Counter(2)),
        ]);
        let b = Snapshot::new(vec![
            ("w".into(), MetricValue::Counter(9)),
            ("y".into(), MetricValue::Counter(5)),
        ]);
        let m = Snapshot::merged([a, b]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get("w"), Some(&MetricValue::Counter(9)));
        assert_eq!(m.get("y"), Some(&MetricValue::Counter(5)));
        let names: Vec<&str> = m.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["w", "x", "y"]);
        // Merging prefixed session snapshots with a server snapshot is
        // the /metrics scrape shape; it must stay render-clean.
        let scrape = Snapshot::merged([sample().prefixed("session.a."), sample()]);
        crate::json::validate(&scrape.to_json()).expect("valid json");
        assert_eq!(scrape.len(), 6);
    }

    #[test]
    fn pretty_renders_all_kinds() {
        let text = sample().to_pretty();
        assert!(text.contains("a.count"));
        assert!(text.contains("p95=96"));
    }
}
