//! Lock-free structured tracing: span timelines for the detection pipeline.
//!
//! Counters and histograms ([`crate::Registry`]) answer *how much*; this
//! module answers *where time goes, over time*. A [`Tracer`] owns a set of
//! [`Lane`]s — one per worker thread or pipeline stage — and each lane is a
//! bounded ring of fixed-size event slots written with plain atomic stores:
//! recording a span never takes a lock, never allocates, and never blocks
//! the detector hot path. When the ring fills, the oldest events are
//! overwritten (drop-oldest) and [`Lane::dropped`] counts how many were
//! lost, so a trace is always a *suffix* of the run with an explicit gap
//! size rather than a silent truncation.
//!
//! Spans are recorded through the RAII [`SpanGuard`]: opening captures a
//! start timestamp, dropping writes one complete event (start + duration +
//! an optional `aux` payload such as events-per-batch). Instant events and
//! counter samples share the same slot format.
//!
//! Two export formats, both dependency-free:
//!
//! * [`Tracer::to_chrome_json`] — Chrome trace-event JSON (`ph: "X"/"i"/"C"`)
//!   that loads directly in `chrome://tracing` and Perfetto, valid per the
//!   sibling [`crate::json`] validator,
//! * [`Tracer::to_folded`] — collapsed-stack flamegraph text
//!   (`lane;outer;inner <self-ns>` lines) for `flamegraph.pl`/speedscope.
//!
//! [`Tracer::feed_timeline`] derives summary metrics (per-lane occupancy,
//! per-phase duration histograms, counter-sample peaks) into a metrics
//! [`crate::Registry`] so span data reaches the same `Snapshot` surface as
//! everything else.
//!
//! Concurrency contract: any number of threads may record into the same
//! lane concurrently (slot claim is a single `fetch_add`); exports are
//! intended to run after the traced activity has quiesced (workers joined).
//! Exporting while writers are live is memory-safe but may observe torn or
//! partially overwritten slots, which are skipped.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::registry::Registry;

/// Default per-lane ring capacity, in events.
pub const DEFAULT_LANE_CAPACITY: usize = 16 * 1024;

const KIND_EMPTY: u64 = 0;
const KIND_SPAN: u64 = 1;
const KIND_INSTANT: u64 = 2;
const KIND_COUNTER: u64 = 3;

/// An interned phase (span/event) name, cheap to copy into hot paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhaseId(u16);

/// What one recorded trace event is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span: `ts_ns..ts_ns + dur_ns`, Chrome `ph: "X"`.
    Span,
    /// A point-in-time marker, Chrome `ph: "i"`.
    Instant,
    /// A sampled counter value (in `aux`), Chrome `ph: "C"`.
    Counter,
}

/// One decoded event read back out of a lane's ring.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Span, instant, or counter sample.
    pub kind: EventKind,
    /// Which interned phase name this event belongs to.
    pub phase: PhaseId,
    /// Start time, nanoseconds since the owning [`Tracer`]'s epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants and counters).
    pub dur_ns: u64,
    /// Free payload: events-per-batch for spans, value for counters.
    pub aux: u64,
}

/// One ring slot: four plain atomics, written without locks.
///
/// `meta` packs the event kind (low 16 bits) and phase id (next 16 bits);
/// it is stored last with `Release` so a decoded non-empty `meta` implies
/// the payload words were written by the same push (modulo lapping, which
/// the export path tolerates by design).
struct Slot {
    meta: AtomicU64,
    ts: AtomicU64,
    dur: AtomicU64,
    aux: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            meta: AtomicU64::new(KIND_EMPTY),
            ts: AtomicU64::new(0),
            dur: AtomicU64::new(0),
            aux: AtomicU64::new(0),
        }
    }
}

/// A bounded, drop-oldest ring of trace events, usually one per worker
/// thread or pipeline stage. Created via [`Tracer::lane`].
pub struct Lane {
    name: String,
    id: u32,
    epoch: Instant,
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl Lane {
    fn new(name: String, id: u32, epoch: Instant, capacity: usize) -> Lane {
        let capacity = capacity.max(1);
        Lane {
            name,
            id,
            epoch,
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// The lane's name, as passed to [`Tracer::lane`].
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Nanoseconds elapsed since the owning tracer's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    #[inline]
    fn push(&self, kind: u64, phase: PhaseId, ts_ns: u64, dur_ns: u64, aux: u64) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        // Invalidate first so a concurrent reader lapped mid-write skips
        // the slot instead of pairing a stale payload with a fresh meta.
        slot.meta.store(KIND_EMPTY, Ordering::Release);
        slot.ts.store(ts_ns, Ordering::Relaxed);
        slot.dur.store(dur_ns, Ordering::Relaxed);
        slot.aux.store(aux, Ordering::Relaxed);
        slot.meta
            .store(kind | (u64::from(phase.0) << 16), Ordering::Release);
    }

    /// Opens a span; the event is recorded when the guard drops.
    #[inline]
    pub fn span(self: &Arc<Self>, phase: PhaseId) -> SpanGuard {
        SpanGuard {
            start_ns: self.now_ns(),
            lane: Arc::clone(self),
            phase,
            aux: 0,
        }
    }

    /// Records a point-in-time marker.
    #[inline]
    pub fn instant(&self, phase: PhaseId) {
        self.push(KIND_INSTANT, phase, self.now_ns(), 0, 0);
    }

    /// Records a sampled counter value (e.g. current queue depth).
    #[inline]
    pub fn counter(&self, phase: PhaseId, value: u64) {
        self.push(KIND_COUNTER, phase, self.now_ns(), 0, value);
    }

    /// Total events ever pushed into this lane, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events currently resident in the ring.
    pub fn len(&self) -> usize {
        self.recorded().min(self.slots.len() as u64) as usize
    }

    /// `true` when no event has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded() == 0
    }

    /// Events lost to drop-oldest overwriting.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Decodes the resident events, oldest first by push order.
    ///
    /// Run this after the traced activity quiesces for exact results;
    /// concurrent pushes may lap slots, which are skipped when torn.
    pub fn events(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let n = head.min(cap);
        let mut out = Vec::with_capacity(n as usize);
        for seq in head - n..head {
            let slot = &self.slots[(seq % cap) as usize];
            let meta = slot.meta.load(Ordering::Acquire);
            let kind = match meta & 0xffff {
                KIND_SPAN => EventKind::Span,
                KIND_INSTANT => EventKind::Instant,
                KIND_COUNTER => EventKind::Counter,
                _ => continue, // empty or torn mid-write
            };
            out.push(TraceEvent {
                kind,
                phase: PhaseId((meta >> 16) as u16),
                ts_ns: slot.ts.load(Ordering::Relaxed),
                dur_ns: slot.dur.load(Ordering::Relaxed),
                aux: slot.aux.load(Ordering::Relaxed),
            });
        }
        out
    }
}

/// RAII span: opening captures the start time, dropping records one
/// complete event into the lane. Owns its lane handle, so guards can be
/// held across arbitrary scopes (GC sweeps, worker batches) without
/// borrowing the surrounding state.
pub struct SpanGuard {
    lane: Arc<Lane>,
    phase: PhaseId,
    start_ns: u64,
    aux: u64,
}

impl SpanGuard {
    /// Sets the span's `aux` payload (e.g. events processed in a batch).
    pub fn set_aux(&mut self, aux: u64) {
        self.aux = aux;
    }

    /// Adds to the span's `aux` payload.
    pub fn add_aux(&mut self, delta: u64) {
        self.aux += delta;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = self.lane.now_ns();
        self.lane.push(
            KIND_SPAN,
            self.phase,
            self.start_ns,
            end.saturating_sub(self.start_ns),
            self.aux,
        );
    }
}

struct TracerInner {
    phases: Vec<String>,
    lanes: Vec<Arc<Lane>>,
}

/// The root of a trace: interns phase names, hands out lanes, exports.
///
/// Mirrors the metrics [`Registry`] contract: setup (creating lanes,
/// interning phases) takes a lock once; recording through the returned
/// handles never does.
pub struct Tracer {
    epoch: Instant,
    inner: Mutex<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Tracer")
            .field("phases", &inner.phases.len())
            .field("lanes", &inner.lanes.len())
            .finish()
    }
}

impl Tracer {
    /// Creates an empty tracer; its epoch (time zero) is *now*.
    pub fn new() -> Tracer {
        Tracer {
            epoch: Instant::now(),
            inner: Mutex::new(TracerInner {
                phases: Vec::new(),
                lanes: Vec::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TracerInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Interns `name`, returning a copyable id for hot-path recording.
    pub fn phase(&self, name: &str) -> PhaseId {
        let mut inner = self.lock();
        if let Some(i) = inner.phases.iter().position(|p| p == name) {
            return PhaseId(i as u16);
        }
        assert!(inner.phases.len() < u16::MAX as usize, "too many phases");
        inner.phases.push(name.to_string());
        PhaseId((inner.phases.len() - 1) as u16)
    }

    /// The interned name behind `id`, if it exists.
    pub fn phase_name(&self, id: PhaseId) -> Option<String> {
        self.lock().phases.get(id.0 as usize).cloned()
    }

    /// Gets or creates the lane called `name` with the default capacity.
    ///
    /// Lanes are keyed by name: two detector instances sharing a tracer
    /// share lanes (multi-writer pushes are safe), and re-creating a
    /// detector per benchmark iteration does not grow the lane set.
    pub fn lane(&self, name: &str) -> Arc<Lane> {
        self.lane_with_capacity(name, DEFAULT_LANE_CAPACITY)
    }

    /// Gets or creates the lane called `name`; `capacity` (in events,
    /// min 1) applies only if the lane does not already exist.
    pub fn lane_with_capacity(&self, name: &str, capacity: usize) -> Arc<Lane> {
        let mut inner = self.lock();
        if let Some(lane) = inner.lanes.iter().find(|l| l.name == name) {
            return Arc::clone(lane);
        }
        let lane = Arc::new(Lane::new(
            name.to_string(),
            inner.lanes.len() as u32,
            self.epoch,
            capacity,
        ));
        inner.lanes.push(Arc::clone(&lane));
        lane
    }

    /// All lanes, in creation order.
    pub fn lanes(&self) -> Vec<Arc<Lane>> {
        self.lock().lanes.clone()
    }

    /// Total events recorded across every lane (including overwritten).
    pub fn recorded(&self) -> u64 {
        self.lanes().iter().map(|l| l.recorded()).sum()
    }

    /// Total events lost to drop-oldest across every lane.
    pub fn dropped(&self) -> u64 {
        self.lanes().iter().map(|l| l.dropped()).sum()
    }

    /// Renders the whole trace as Chrome trace-event JSON.
    ///
    /// The output is an object with a `traceEvents` array — the format
    /// `chrome://tracing` and Perfetto load natively. Spans become
    /// complete events (`ph: "X"`, microsecond `ts`/`dur` with nanosecond
    /// precision kept as fractions), instants `ph: "i"`, counter samples
    /// `ph: "C"`. Every lane gets a `thread_name` metadata record.
    pub fn to_chrome_json(&self) -> String {
        use std::fmt::Write as _;
        let inner = self.lock();
        let phases = inner.phases.clone();
        let lanes = inner.lanes.clone();
        drop(inner);

        let phase_name =
            |p: PhaseId| -> &str { phases.get(p.0 as usize).map_or("<unknown>", |s| s.as_str()) };
        let us = |ns: u64| format!("{}.{:03}", ns / 1000, ns % 1000);

        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        let mut first = true;
        let mut emit = |out: &mut String, ev: String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("  ");
            out.push_str(&ev);
        };
        emit(
            &mut out,
            "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \"tid\": 0, \
             \"args\": {\"name\": \"crace\"}}"
                .to_string(),
        );
        for lane in &lanes {
            emit(
                &mut out,
                format!(
                    "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": {}, \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    lane.id,
                    crate::json::escape(&lane.name)
                ),
            );
        }
        for lane in &lanes {
            let mut events = lane.events();
            events.sort_by_key(|e| e.ts_ns);
            for e in events {
                let name = crate::json::escape(phase_name(e.phase));
                let body = match e.kind {
                    EventKind::Span => format!(
                        "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"crace\", \"pid\": 1, \
                         \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{\"aux\": {}}}}}",
                        name,
                        lane.id,
                        us(e.ts_ns),
                        us(e.dur_ns),
                        e.aux
                    ),
                    EventKind::Instant => format!(
                        "{{\"ph\": \"i\", \"name\": \"{}\", \"cat\": \"crace\", \"pid\": 1, \
                         \"tid\": {}, \"ts\": {}, \"s\": \"t\"}}",
                        name,
                        lane.id,
                        us(e.ts_ns)
                    ),
                    EventKind::Counter => format!(
                        "{{\"ph\": \"C\", \"name\": \"{}\", \"cat\": \"crace\", \"pid\": 1, \
                         \"tid\": {}, \"ts\": {}, \"args\": {{\"value\": {}}}}}",
                        name,
                        lane.id,
                        us(e.ts_ns),
                        e.aux
                    ),
                };
                emit(&mut out, body);
            }
        }
        let dropped = lanes.iter().map(|l| l.dropped()).sum::<u64>();
        let _ = write!(out, "\n], \"crace_dropped_events\": {dropped}}}");
        out
    }

    /// Renders the trace as collapsed flamegraph stacks: one
    /// `lane;outer;inner <self-time-ns>` line per distinct stack, sorted.
    ///
    /// Nesting is reconstructed from span intervals per lane (a span is a
    /// child of the most recent still-open span); self-time is the span's
    /// duration minus its children's. Partially overlapping spans from
    /// concurrent writers into one lane are attributed as if nested —
    /// an approximation documented here rather than an error.
    pub fn to_folded(&self) -> String {
        let inner = self.lock();
        let phases = inner.phases.clone();
        let lanes = inner.lanes.clone();
        drop(inner);
        let phase_name =
            |p: PhaseId| -> &str { phases.get(p.0 as usize).map_or("<unknown>", |s| s.as_str()) };

        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for lane in &lanes {
            let mut spans: Vec<TraceEvent> = lane
                .events()
                .into_iter()
                .filter(|e| e.kind == EventKind::Span)
                .collect();
            // Parents first at equal start times: longer span is the parent.
            spans.sort_by(|a, b| a.ts_ns.cmp(&b.ts_ns).then(b.dur_ns.cmp(&a.dur_ns)));

            // (end_ns, dur_ns, phase, child_ns)
            let mut stack: Vec<(u64, u64, PhaseId, u64)> = Vec::new();
            let pop_emit = |stack: &mut Vec<(u64, u64, PhaseId, u64)>,
                            stacks: &mut BTreeMap<String, u64>| {
                let (_, dur, phase, child) = stack.pop().expect("pop_emit on empty stack");
                let mut path = lane.name.clone();
                for (_, _, p, _) in stack.iter() {
                    path.push(';');
                    path.push_str(phase_name(*p));
                }
                path.push(';');
                path.push_str(phase_name(phase));
                *stacks.entry(path).or_insert(0) += dur.saturating_sub(child);
            };
            for s in spans {
                while stack.last().is_some_and(|&(end, ..)| end <= s.ts_ns) {
                    pop_emit(&mut stack, &mut stacks);
                }
                if let Some(top) = stack.last_mut() {
                    top.3 += s.dur_ns;
                }
                stack.push((s.ts_ns + s.dur_ns, s.dur_ns, s.phase, 0));
            }
            while !stack.is_empty() {
                pop_emit(&mut stack, &mut stacks);
            }
        }

        let mut out = String::new();
        for (path, ns) in stacks {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Derives timeline summary metrics into `registry`.
    ///
    /// Per lane: `trace.lane.<name>.occupancy` (union of span intervals
    /// over the lane's active wall span, 0..=1), `.spans`, `.dropped`, and
    /// `.aux_total` gauges. Per phase: a `trace.<phase>.ns` histogram of
    /// span durations (so e.g. GC pause p99 lands in the snapshot) and,
    /// for counter samples, `trace.<phase>.last` / `trace.<phase>.max`
    /// gauges (e.g. peak ring-queue depth).
    ///
    /// Histograms accumulate: call once per completed run per registry.
    pub fn feed_timeline(&self, registry: &Registry) {
        let inner = self.lock();
        let phases = inner.phases.clone();
        let lanes = inner.lanes.clone();
        drop(inner);

        let mut hists: Vec<Option<Arc<crate::Histogram>>> = vec![None; phases.len()];
        for lane in &lanes {
            let mut events = lane.events();
            events.sort_by_key(|e| e.ts_ns);

            let mut busy = 0u64;
            let mut cur_end = 0u64;
            let mut min_ts = u64::MAX;
            let mut max_end = 0u64;
            let mut span_count = 0u64;
            let mut aux_total = 0u64;
            let mut counter_last: BTreeMap<PhaseId, u64> = BTreeMap::new();
            let mut counter_max: BTreeMap<PhaseId, u64> = BTreeMap::new();
            for e in &events {
                match e.kind {
                    EventKind::Span => {
                        span_count += 1;
                        aux_total += e.aux;
                        min_ts = min_ts.min(e.ts_ns);
                        let end = e.ts_ns + e.dur_ns;
                        max_end = max_end.max(end);
                        if e.ts_ns >= cur_end {
                            busy += e.dur_ns;
                            cur_end = end;
                        } else if end > cur_end {
                            busy += end - cur_end;
                            cur_end = end;
                        }
                        if let Some(slot) = hists.get_mut(e.phase.0 as usize) {
                            let hist = slot.get_or_insert_with(|| {
                                registry
                                    .histogram(&format!("trace.{}.ns", phases[e.phase.0 as usize]))
                            });
                            hist.record(e.dur_ns);
                        }
                    }
                    EventKind::Instant => {
                        min_ts = min_ts.min(e.ts_ns);
                        max_end = max_end.max(e.ts_ns);
                    }
                    EventKind::Counter => {
                        counter_last.insert(e.phase, e.aux);
                        let m = counter_max.entry(e.phase).or_insert(0);
                        *m = (*m).max(e.aux);
                    }
                }
            }
            let wall = max_end.saturating_sub(if min_ts == u64::MAX { 0 } else { min_ts });
            let occupancy = if wall > 0 {
                busy as f64 / wall as f64
            } else {
                0.0
            };
            let base = format!("trace.lane.{}", lane.name);
            registry.set_gauge(&format!("{base}.occupancy"), occupancy);
            registry.set_gauge(&format!("{base}.spans"), span_count as f64);
            registry.set_gauge(&format!("{base}.dropped"), lane.dropped() as f64);
            registry.set_gauge(&format!("{base}.aux_total"), aux_total as f64);
            for (phase, last) in counter_last {
                let name = phases.get(phase.0 as usize).cloned().unwrap_or_default();
                registry.set_gauge(&format!("trace.{name}.last"), last as f64);
            }
            for (phase, max) in counter_max {
                let name = phases.get(phase.0 as usize).cloned().unwrap_or_default();
                registry.set_gauge(&format!("trace.{name}.max"), max as f64);
            }
        }
    }
}

/// A pre-resolved, rate-limited span source for per-event hot paths.
///
/// `Rd2::on_action` fires millions of times; recording a span for each
/// would cost more than the detection. `SampledSpans` opens a span for one
/// in `every` calls (the first call always samples, so short runs still
/// produce spans) and costs a single relaxed `fetch_add` plus a branch
/// otherwise. `every == 0` disables sampling entirely.
pub struct SampledSpans {
    lane: Arc<Lane>,
    phase: PhaseId,
    every: u64,
    seq: AtomicU64,
}

impl std::fmt::Debug for SampledSpans {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SampledSpans")
            .field("lane", &self.lane.name)
            .field("every", &self.every)
            .finish()
    }
}

impl SampledSpans {
    /// Resolves `lane`/`phase` against `tracer`; samples one in `every`.
    pub fn new(tracer: &Tracer, lane: &str, phase: &str, every: u64) -> SampledSpans {
        SampledSpans {
            lane: tracer.lane(lane),
            phase: tracer.phase(phase),
            every,
            seq: AtomicU64::new(0),
        }
    }

    /// Opens a span if this call is selected by the sampling rate.
    #[inline]
    pub fn maybe(&self) -> Option<SpanGuard> {
        if self.every == 0 {
            return None;
        }
        if !self
            .seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.every)
        {
            return None;
        }
        Some(self.lane.span(self.phase))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts() {
        let tracer = Tracer::new();
        let lane = tracer.lane_with_capacity("l", 8);
        let p = tracer.phase("tick");
        for _ in 0..20 {
            lane.instant(p);
        }
        assert_eq!(lane.recorded(), 20);
        assert_eq!(lane.len(), 8);
        assert_eq!(lane.dropped(), 12);
        assert_eq!(tracer.dropped(), 12);
        assert_eq!(lane.events().len(), 8);
    }

    #[test]
    fn lanes_are_keyed_by_name() {
        let tracer = Tracer::new();
        let a = tracer.lane("w0");
        let b = tracer.lane("w0");
        assert!(Arc::ptr_eq(&a, &b));
        let c = tracer.lane("w1");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(tracer.lanes().len(), 2);
    }

    #[test]
    fn phase_interning_is_stable() {
        let tracer = Tracer::new();
        let a = tracer.phase("x");
        let b = tracer.phase("y");
        let a2 = tracer.phase("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(tracer.phase_name(a).as_deref(), Some("x"));
    }

    #[test]
    fn span_guard_records_duration_and_aux() {
        let tracer = Tracer::new();
        let lane = tracer.lane("l");
        let p = tracer.phase("work");
        {
            let mut span = lane.span(p);
            span.set_aux(5);
            span.add_aux(2);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let events = lane.events();
        assert_eq!(events.len(), 1);
        let e = events[0];
        assert_eq!(e.kind, EventKind::Span);
        assert_eq!(e.aux, 7);
        assert!(e.dur_ns >= 1_000_000, "dur {} < 1ms", e.dur_ns);
    }

    #[test]
    fn chrome_export_is_valid_json_with_all_kinds() {
        let tracer = Tracer::new();
        let lane = tracer.lane("worker \"0\"\n");
        let work = tracer.phase("work");
        let depth = tracer.phase("queue_depth");
        let mark = tracer.phase("mark");
        drop(lane.span(work));
        lane.instant(mark);
        lane.counter(depth, 42);
        let json = tracer.to_chrome_json();
        crate::json::validate(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"ph\": \"C\""));
        assert!(json.contains("\"value\": 42"));
        assert!(json.contains("thread_name"));
        assert!(json.contains("\"crace_dropped_events\": 0"));
    }

    #[test]
    fn empty_tracer_exports_validate() {
        let tracer = Tracer::new();
        crate::json::validate(&tracer.to_chrome_json()).unwrap();
        assert_eq!(tracer.to_folded(), "");
    }

    #[test]
    fn folded_reconstructs_nesting_and_self_time() {
        let tracer = Tracer::new();
        let lane = tracer.lane("l");
        let outer = tracer.phase("outer");
        let inner = tracer.phase("inner");
        // Deterministic timestamps via the private push: outer spans
        // [0, 100), inner [10, 40).
        lane.push(KIND_SPAN, outer, 0, 100, 0);
        lane.push(KIND_SPAN, inner, 10, 30, 0);
        let folded = tracer.to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"l;outer 70"), "{folded}");
        assert!(lines.contains(&"l;outer;inner 30"), "{folded}");
    }

    #[test]
    fn feed_timeline_derives_occupancy_and_peaks() {
        let tracer = Tracer::new();
        let lane = tracer.lane("w0");
        let work = tracer.phase("work");
        let depth = tracer.phase("depth");
        // Busy [0,50) and [50,100) of a 100ns wall: occupancy 1.0.
        lane.push(KIND_SPAN, work, 0, 50, 10);
        lane.push(KIND_SPAN, work, 50, 50, 5);
        lane.counter(depth, 3);
        lane.counter(depth, 9);
        lane.counter(depth, 4);
        let registry = Registry::new();
        tracer.feed_timeline(&registry);
        let snap = registry.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"trace.lane.w0.occupancy\": 1"), "{json}");
        assert!(json.contains("\"trace.lane.w0.spans\": 2"), "{json}");
        assert!(json.contains("\"trace.lane.w0.aux_total\": 15"), "{json}");
        assert!(json.contains("\"trace.depth.max\": 9"), "{json}");
        assert!(json.contains("\"trace.depth.last\": 4"), "{json}");
        assert!(json.contains("\"trace.work.ns\""), "{json}");
    }

    #[test]
    fn sampled_spans_fire_once_per_period() {
        let tracer = Tracer::new();
        let sampled = SampledSpans::new(&tracer, "hot", "hot.event", 64);
        for _ in 0..640 {
            drop(sampled.maybe());
        }
        let lane = tracer.lane("hot");
        assert_eq!(lane.recorded(), 10);

        let off = SampledSpans::new(&tracer, "off", "hot.event", 0);
        for _ in 0..10 {
            assert!(off.maybe().is_none());
        }
        assert_eq!(tracer.lane("off").recorded(), 0);
    }

    #[test]
    fn concurrent_writers_are_safe() {
        let tracer = Arc::new(Tracer::new());
        let lane = tracer.lane_with_capacity("shared", 128);
        let p = tracer.phase("w");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let lane = Arc::clone(&lane);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        drop(lane.span(p));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(lane.recorded(), 4000);
        assert_eq!(lane.len(), 128);
        crate::json::validate(&tracer.to_chrome_json()).unwrap();
    }
}
