//! Counters and gauges: the scalar metrics.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of independent cells a [`Counter`] stripes its count over.
///
/// Recording threads hash to a cell, so concurrent increments from
/// different threads (the detector hot path) rarely contend on one cache
/// line. Reads sum all cells — reads are snapshot-time only, so their cost
/// is irrelevant.
pub(crate) const STRIPES: usize = 16;

/// A cache-line-isolated atomic cell, so neighbouring stripes do not
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

thread_local! {
    /// Each recording thread gets a stable stripe index once; `inc` is then
    /// one thread-local read plus one relaxed fetch-add.
    static STRIPE: usize = {
        use std::sync::atomic::AtomicUsize;
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES
    };
}

pub(crate) fn stripe_index() -> usize {
    STRIPE.with(|s| *s)
}

/// A monotonic counter.
///
/// Lock-free and striped: each thread records into its own cell, so the
/// per-event cost is one relaxed `fetch_add` on an uncontended cache line.
///
/// # Examples
///
/// ```
/// use crace_obs::Counter;
///
/// let c = Counter::new();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Default)]
pub struct Counter {
    cells: [PaddedU64; STRIPES],
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[stripe_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total across all stripes.
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// An instantaneous value: last write wins.
///
/// Used for ratios and sizes fed in at snapshot time (epoch hit rate,
/// active access points, …). Stored as millionths of the set `f64` so the
/// cell stays a single atomic without transmuting bits (the crate forbids
/// `unsafe`).
///
/// # Examples
///
/// ```
/// use crace_obs::Gauge;
///
/// let g = Gauge::new();
/// g.set(0.75);
/// assert!((g.get() - 0.75).abs() < 1e-6);
/// ```
#[derive(Default)]
pub struct Gauge {
    micros: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value. Resolution is 1e-6; magnitudes beyond ~9.2e12
    /// saturate.
    pub fn set(&self, value: f64) {
        let clamped = (value * 1e6).clamp(i64::MIN as f64, i64::MAX as f64);
        self.micros.store(clamped as i64, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        self.micros.load(Ordering::Relaxed) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates_across_threads() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_round_trips_fractions_and_negatives() {
        let g = Gauge::new();
        for v in [0.0, 1.0, 0.333333, -2.5, 1e9] {
            g.set(v);
            assert!((g.get() - v).abs() < 1e-5, "{v}");
        }
    }
}
