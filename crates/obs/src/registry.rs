//! The named-metric registry.

use crate::snapshot::{MetricValue, Snapshot};
use crate::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics.
///
/// Registration (`counter` / `gauge` / `histogram`) takes the registry
/// lock and is meant to happen once per metric at setup; the returned
/// [`Arc`] handles record lock-free thereafter. Getting an already
/// registered name returns the same underlying metric, so independent
/// components can share `events.total` without coordination.
///
/// Names are free-form dotted strings (`rd2.event.action.ns`); the
/// Prometheus writer mangles them into valid identifiers, the JSON writer
/// keeps them verbatim.
///
/// # Panics
///
/// Re-registering a name as a *different* metric kind panics — that is a
/// programming error, not runtime input.
///
/// # Examples
///
/// ```
/// use crace_obs::Registry;
///
/// let r = Registry::new();
/// let a = r.counter("events");
/// let b = r.counter("events");
/// a.inc();
/// assert_eq!(b.get(), 1); // same counter
/// ```
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` already registered with another kind"),
        }
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` already registered with another kind"),
        }
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` already registered with another kind"),
        }
    }

    /// Convenience: set gauge `name` to `value` in one call (snapshot-time
    /// feeding of derived values like hit rates).
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauge(name).set(value);
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().unwrap();
        let mut values = Vec::with_capacity(metrics.len());
        for (name, metric) in metrics.iter() {
            let value = match metric {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
            };
            values.push((name.clone(), value));
        }
        Snapshot::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b.count").add(2);
        r.gauge("a.rate").set(0.5);
        r.histogram("c.ns").record(7);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.rate", "b.count", "c.ns"]);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn handles_share_state() {
        let r = Registry::new();
        r.histogram("h").record(1);
        r.histogram("h").record(2);
        assert_eq!(r.histogram("h").count(), 2);
    }
}
