//! Edge cases of the Prometheus text exposition rendering: metric-name
//! sanitization, label-value escaping, and quantile monotonicity in the
//! rendered output.

use crace_obs::{prom_escape_label, Registry};

/// Parses `name{labels} value` lines out of an exposition document,
/// returning `(series, value)` pairs for every non-comment line.
fn series(prom: &str) -> Vec<(String, f64)> {
    prom.lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(|l| {
            let (name, value) = l.rsplit_once(' ').expect("name value");
            (name.to_string(), value.parse::<f64>().expect("numeric"))
        })
        .collect()
}

#[test]
fn metric_names_are_sanitized_to_prometheus_identifiers() {
    let registry = Registry::new();
    registry.counter("weird-name.µ.with space/slash").inc();
    registry.set_gauge("trace.lane.worker \"0\"\n.occupancy", 0.5);
    let prom = registry.snapshot().to_prometheus();
    for line in prom.lines().filter(|l| !l.starts_with('#')) {
        let (name, _) = line.rsplit_once(' ').expect("name value");
        let bare = name.split('{').next().unwrap();
        assert!(
            bare.starts_with("crace_")
                && bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "unsanitized series name: {name:?}"
        );
    }
    // The µ, space, slash, quote, and newline all collapse to `_`.
    assert!(
        prom.contains("crace_weird_name___with_space_slash 1"),
        "{prom}"
    );
    assert!(
        prom.contains("crace_trace_lane_worker__0___occupancy 0.5"),
        "{prom}"
    );
}

#[test]
fn label_values_escape_backslash_quote_newline() {
    assert_eq!(prom_escape_label("plain"), "plain");
    assert_eq!(prom_escape_label("a\\b"), "a\\\\b");
    assert_eq!(prom_escape_label("a\"b"), "a\\\"b");
    assert_eq!(prom_escape_label("a\nb"), "a\\nb");
    assert_eq!(
        prom_escape_label("\\\"\n"),
        "\\\\\\\"\\n",
        "all three specials in sequence"
    );
    // The escaped form never contains a raw newline or an unescaped quote,
    // so a series line `name{l="<escaped>"} v` stays one parseable line.
    for nasty in ["a\\b\"c\nd", "\n\n", "\\\\", "\"\""] {
        let escaped = prom_escape_label(nasty);
        assert!(!escaped.contains('\n'), "{escaped:?}");
        let mut prev_backslash = false;
        for c in escaped.chars() {
            assert!(c != '"' || prev_backslash, "unescaped quote in {escaped:?}");
            prev_backslash = c == '\\' && !prev_backslash;
        }
    }
}

#[test]
fn rendered_quantiles_are_monotone() {
    let registry = Registry::new();
    let hist = registry.histogram("latency.ns");
    // A spread of values across several log2 buckets.
    for i in 0..1000u64 {
        hist.record(i * 37 + 1);
    }
    let prom = registry.snapshot().to_prometheus();
    let all = series(&prom);
    let q = |which: &str| -> f64 {
        all.iter()
            .find(|(name, _)| name.contains(&format!("quantile=\"{which}\"")))
            .unwrap_or_else(|| panic!("missing quantile {which} in {prom}"))
            .1
    };
    let (p50, p95, p99) = (q("0.5"), q("0.95"), q("0.99"));
    assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
    assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
    // _count and _sum are present and consistent.
    let count = all.iter().find(|(n, _)| n.ends_with("_count")).unwrap().1;
    let sum = all.iter().find(|(n, _)| n.ends_with("_sum")).unwrap().1;
    assert_eq!(count, 1000.0);
    assert!(sum > 0.0);
}

#[test]
fn quantile_labels_render_inside_braces() {
    let registry = Registry::new();
    registry.histogram("h.ns").record(10);
    let prom = registry.snapshot().to_prometheus();
    assert!(prom.contains("crace_h_ns{quantile=\"0.5\"}"), "{prom}");
    assert!(prom.contains("crace_h_ns{quantile=\"0.95\"}"), "{prom}");
    assert!(prom.contains("crace_h_ns{quantile=\"0.99\"}"), "{prom}");
    // Exactly one TYPE line per metric family.
    assert_eq!(
        prom.matches("# TYPE crace_h_ns summary").count(),
        1,
        "{prom}"
    );
}
