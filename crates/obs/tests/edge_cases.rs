//! Edge-case tests for the observability layer: histogram percentile
//! estimates on degenerate inputs (empty, single sample, everything in
//! one bucket) and a golden test pinning the exact [`Snapshot`] JSON
//! bytes, checked against the in-tree RFC 8259 validator.

use crace_obs::{json, Histogram, Registry, Snapshot};

#[test]
fn empty_histogram_reports_zeros() {
    let h = Histogram::new();
    let s = h.summary();
    assert_eq!(s.count, 0);
    assert_eq!(s.sum, 0);
    assert_eq!(s.mean(), 0.0);
    assert_eq!((s.p50, s.p95, s.p99), (0, 0, 0));
}

#[test]
fn single_sample_lands_in_its_own_bucket_for_every_percentile() {
    for value in [0u64, 1, 2, 3, 7, 8, 1_000, u64::MAX] {
        let h = Histogram::new();
        h.record(value);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, value);
        assert_eq!(s.mean(), value as f64);
        // With one sample, every percentile is that sample's bucket:
        // all three must agree exactly.
        assert_eq!(s.p50, s.p95, "value {value}");
        assert_eq!(s.p95, s.p99, "value {value}");
        // And the log₂ bucket's representative is within its ±41% width
        // (the last bucket absorbs everything ≥ 2^62).
        if (1..(1u64 << 62)).contains(&value) {
            assert!(
                s.p50 >= value / 2 && s.p50 <= value.saturating_mul(2),
                "value {value} estimated as {}",
                s.p50
            );
        }
        if value == 0 {
            assert_eq!(s.p50, 0);
        }
    }
}

#[test]
fn all_samples_in_one_bucket_collapse_the_percentiles() {
    let h = Histogram::new();
    for _ in 0..10_000 {
        h.record(5); // bucket [4, 8)
    }
    let s = h.summary();
    assert_eq!(s.count, 10_000);
    assert_eq!(s.sum, 50_000);
    assert_eq!(s.p50, s.p99);
    assert!((4..8).contains(&s.p50), "p50 {} outside [4, 8)", s.p50);
}

#[test]
fn percentiles_are_monotone_even_on_two_spikes() {
    // Nine fast samples and one slow one: under the nearest-rank rule
    // p50 is the low spike (rank 5 of 10) while p95 and p99 both land
    // on the outlier (rank 10 of 10).
    let h = Histogram::new();
    for _ in 0..9 {
        h.record(1);
    }
    h.record(1 << 20);
    let s = h.summary();
    assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    assert_eq!(s.p50, 1);
    assert!(s.p99 >= 1 << 19, "p99 {} missed the outlier", s.p99);
}

/// The exact JSON bytes of a mixed snapshot, pinned: downstream scrapers
/// parse this output, so a formatting change must be a conscious one.
#[test]
fn snapshot_json_golden() {
    let r = Registry::new();
    r.counter("explore.schedules.explored").add(4);
    r.gauge("explore.truncated").set(0.0);
    let h = r.histogram("detect.latency");
    h.record(3);
    h.record(3);
    let snapshot = r.snapshot();
    let expected = "{\n  \
        \"detect.latency\": {\"count\": 2, \"sum\": 6, \"mean\": 3, \"p50\": 3, \"p95\": 3, \"p99\": 3},\n  \
        \"explore.schedules.explored\": 4,\n  \
        \"explore.truncated\": 0\n\
        }\n";
    assert_eq!(snapshot.to_json(), expected);
}

/// Every snapshot rendering — empty, metric names needing escapes,
/// non-finite gauges — must be valid RFC 8259 JSON per the in-tree
/// validator.
#[test]
fn snapshot_json_always_validates() {
    let empty = Registry::new().snapshot();
    json::validate(&empty.to_json()).expect("empty snapshot");

    let r = Registry::new();
    r.counter("plain").add(1);
    r.counter("quote\"backslash\\newline\n").add(2);
    r.gauge("nan").set(f64::NAN);
    r.gauge("inf").set(f64::INFINITY);
    r.gauge("neg").set(-2.5);
    r.histogram("empty.hist");
    let h = r.histogram("busy.hist");
    for i in 0..1000 {
        h.record(i);
    }
    let snapshot: Snapshot = r.snapshot();
    let rendered = snapshot.to_json();
    json::validate(&rendered).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{rendered}"));
}
