//! Concurrency-facing integration tests: [`ClockStats`] aggregation laws
//! and [`PublishedClocks`] snapshot publication under real concurrent
//! readers driving seeded-random interleavings.

use crace_model::{LockId, ThreadId};
use crace_vclock::{ClockStats, Observation, PublishedClocks, VectorClock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Replays a random observation stream into per-shard `ClockStats` and
/// checks that merging the shards in any order equals folding the whole
/// stream into one accumulator — the law the Observer's clock-stats feed
/// relies on when it sums per-object stats.
#[test]
fn merge_equals_streaming_fold_in_any_order() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(0xC10C ^ seed);
        let mut shards = vec![ClockStats::default(); 8];
        let mut whole = ClockStats::default();
        for _ in 0..500 {
            let obs = match rng.gen_range(0u32..10) {
                0..=6 => Observation::EpochFast, // epochs dominate, as in real runs
                7 => Observation::Promoted,
                _ => Observation::VectorJoin,
            };
            shards[rng.gen_range(0..8)].record(obs);
            whole.record(obs);
        }
        // Forward order.
        let mut fwd = ClockStats::default();
        for s in &shards {
            fwd.merge(s);
        }
        assert_eq!(fwd, whole, "seed {seed}");
        // Reverse order — merge is commutative.
        let mut rev = ClockStats::default();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(rev, whole, "seed {seed}");
        assert_eq!(fwd.total(), 500);
        let rate = fwd.epoch_hit_rate();
        assert!((0.0..=1.0).contains(&rate), "rate {rate}");
    }
}

#[test]
fn merge_with_default_is_identity() {
    let mut stats = ClockStats {
        epoch_updates: 3,
        promotions: 1,
        vector_updates: 2,
    };
    let before = stats;
    stats.merge(&ClockStats::default());
    assert_eq!(stats, before);
    let mut zero = ClockStats::default();
    zero.merge(&before);
    assert_eq!(zero, before);
}

/// Readers hammer [`PublishedClocks::clock`] while writer threads follow
/// the ownership discipline (each simulated thread's clock is written only
/// by its owning OS thread). Every snapshot a reader observes must be
/// internally consistent: monotonically non-decreasing in the owner's own
/// component, since the owner only ever joins into or increments its
/// clock.
#[test]
fn concurrent_readers_always_see_complete_snapshots() {
    for round in 0..4u64 {
        let sync = Arc::new(PublishedClocks::new());
        let stop = Arc::new(AtomicBool::new(false));
        const WRITERS: u32 = 4;

        // Fork every writer's simulated thread up front so readers have a
        // slot to watch from the start.
        for w in 0..WRITERS {
            sync.fork(ThreadId(0), ThreadId(w + 1));
        }

        let readers: Vec<_> = (0..3)
            .map(|r| {
                let sync = Arc::clone(&sync);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xBEEF ^ round ^ (r as u64) << 32);
                    let mut floor: Vec<u64> = vec![0; WRITERS as usize];
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let w = rng.gen_range(0..WRITERS);
                        let tid = ThreadId(w + 1);
                        let snap: Arc<VectorClock> = sync.clock(tid);
                        let own = snap.get(tid);
                        assert!(
                            own >= floor[w as usize],
                            "thread {tid}: own component went back from \
                             {} to {own}",
                            floor[w as usize]
                        );
                        floor[w as usize] = own;
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();

        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let sync = Arc::clone(&sync);
                std::thread::spawn(move || {
                    let tid = ThreadId(w + 1);
                    let mut rng = StdRng::seed_from_u64(0xFEED ^ round ^ (w as u64) << 16);
                    for _ in 0..400 {
                        // Each op ends in inc(tid) (release) or a join that
                        // never lowers components (acquire), so the owner's
                        // own component never decreases.
                        let lock = LockId(rng.gen_range(0u64..3));
                        if rng.gen_bool(0.5) {
                            sync.acquire(tid, lock);
                        } else {
                            sync.release(tid, lock);
                        }
                    }
                })
            })
            .collect();

        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            let reads = r.join().unwrap();
            assert!(reads > 0, "reader starved");
        }

        // After the dust settles, joining every writer into main must
        // produce a clock that dominates each writer's final snapshot.
        for w in 0..WRITERS {
            sync.join(ThreadId(0), ThreadId(w + 1));
        }
        let main = sync.clock(ThreadId(0));
        for w in 0..WRITERS {
            assert!(sync.clock(ThreadId(w + 1)).le(&main), "writer {w}");
        }
    }
}
