//! Randomized property tests for the vector-clock lattice and the adaptive
//! epoch representation built on top of it.
//!
//! Three groups of laws are checked, each over thousands of random clocks:
//!
//! 1. `(VC, ⊔, ⊑)` is a join-semilattice: `⊔` is commutative, associative
//!    and idempotent, and computes the *least* upper bound of `⊑`.
//! 2. `⊑` is a partial order: reflexive, antisymmetric, transitive; `inc`
//!    is strictly inflationary.
//! 3. [`AdaptiveClock`] is a faithful compression: under simulated
//!    well-formed histories its `le` answers and its promotion to a full
//!    [`VectorClock`] agree exactly with the shadow full-vector clock it
//!    stands for.

use crace_model::ThreadId;
use crace_vclock::{AdaptiveClock, Epoch, Observation, VectorClock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_clock(rng: &mut StdRng) -> VectorClock {
    let dim = rng.gen_range(0..5usize);
    VectorClock::from_components((0..dim).map(|_| rng.gen_range(0..6u64)))
}

// ---------------------------------------------------------------------------
// Join-semilattice laws.
// ---------------------------------------------------------------------------

#[test]
fn join_is_commutative_associative_idempotent() {
    let mut rng = StdRng::seed_from_u64(0xA77);
    for _ in 0..3000 {
        let (a, b, c) = (
            random_clock(&mut rng),
            random_clock(&mut rng),
            random_clock(&mut rng),
        );
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        assert_eq!(a.join(&a), a);
    }
}

#[test]
fn join_is_the_least_upper_bound() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for _ in 0..3000 {
        let (a, b) = (random_clock(&mut rng), random_clock(&mut rng));
        let j = a.join(&b);
        assert!(
            a.le(&j) && b.le(&j),
            "{a} ⊔ {b} = {j} is not an upper bound"
        );
        // Least: any other upper bound dominates the join.
        let u = random_clock(&mut rng);
        if a.le(&u) && b.le(&u) {
            assert!(j.le(&u), "{j} ⋢ {u} though {u} bounds {a} and {b}");
        }
    }
}

#[test]
fn join_in_place_matches_join() {
    let mut rng = StdRng::seed_from_u64(0xC0C);
    for _ in 0..2000 {
        let (a, b) = (random_clock(&mut rng), random_clock(&mut rng));
        let mut inplace = a.clone();
        inplace.join_in_place(&b);
        assert_eq!(inplace, a.join(&b));
    }
}

// ---------------------------------------------------------------------------
// Partial-order laws.
// ---------------------------------------------------------------------------

#[test]
fn le_is_a_partial_order_and_inc_is_strict() {
    let mut rng = StdRng::seed_from_u64(0xD0E);
    for _ in 0..5000 {
        let (a, b, c) = (
            random_clock(&mut rng),
            random_clock(&mut rng),
            random_clock(&mut rng),
        );
        assert!(a.le(&a), "⊑ must be reflexive");
        if a.le(&b) && b.le(&a) {
            assert_eq!(a, b, "⊑ must be antisymmetric");
        }
        if a.le(&b) && b.le(&c) {
            assert!(a.le(&c), "⊑ must be transitive");
        }
        let tid = ThreadId(rng.gen_range(0..5u32));
        let mut bumped = a.clone();
        bumped.inc(tid);
        assert!(a.le(&bumped) && a != bumped, "inc must strictly increase");
        assert!(!bumped.le(&a));
    }
}

#[test]
fn concurrent_with_is_exactly_incomparability() {
    let mut rng = StdRng::seed_from_u64(0xE0E);
    for _ in 0..3000 {
        let (a, b) = (random_clock(&mut rng), random_clock(&mut rng));
        assert_eq!(a.concurrent_with(&b), !a.le(&b) && !b.le(&a));
        assert_eq!(a.concurrent_with(&b), b.concurrent_with(&a));
        assert!(!a.concurrent_with(&a));
    }
}

// ---------------------------------------------------------------------------
// Epoch ↔ vector promotion laws.
// ---------------------------------------------------------------------------

#[test]
fn epoch_of_records_the_thread_component() {
    let mut rng = StdRng::seed_from_u64(0xF00);
    for _ in 0..2000 {
        let c = random_clock(&mut rng);
        let tid = ThreadId(rng.gen_range(0..5u32));
        let e = Epoch::of(tid, &c);
        assert_eq!(e.tid(), tid);
        assert_eq!(e.clock(), c.get(tid));
        // `le_clock` against any clock only inspects that component.
        let d = random_clock(&mut rng);
        assert_eq!(e.le_clock(&d), c.get(tid) <= d.get(tid));
    }
}

/// Simulates a well-formed single-object history the way `ObjState` drives
/// `AdaptiveClock`: a sequence of observing thread clocks where each
/// observer's clock either absorbs the previous owner's epoch (an ordered
/// handoff) or does not (contention). Alongside the adaptive clock we
/// maintain the exact full-vector shadow `pt.vc` of Algorithm 1 and assert
/// the two agree on every query the detector can ever make.
#[test]
fn adaptive_clock_agrees_with_its_full_vector_shadow() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _ in 0..800 {
        // Per-thread clocks of a tiny simulated program. Each thread's own
        // component starts at 1 (as after `SyncClocks` thread creation).
        const THREADS: u32 = 4;
        let mut clocks: Vec<VectorClock> = (0..THREADS)
            .map(|t| {
                let mut c = VectorClock::new();
                c.set(ThreadId(t), 1);
                c
            })
            .collect();

        let first = rng.gen_range(0..THREADS);
        let mut adaptive = AdaptiveClock::first(ThreadId(first), &clocks[first as usize]);
        let mut shadow = clocks[first as usize].clone();

        for _ in 0..rng.gen_range(1..25usize) {
            // Random synchronization between steps: thread a absorbs
            // thread b's clock (a release/acquire edge), then advances.
            if rng.gen_bool(0.5) {
                let a = rng.gen_range(0..THREADS) as usize;
                let b = rng.gen_range(0..THREADS) as usize;
                let other = clocks[b].clone();
                clocks[a].join_in_place(&other);
            }
            let t = rng.gen_range(0..THREADS);
            let tid = ThreadId(t);
            clocks[t as usize].inc(tid);
            let clock = clocks[t as usize].clone();

            // The le query the detector's phase 1 asks *before* updating.
            assert_eq!(
                adaptive.le(&clock),
                shadow.le(&clock),
                "adaptive {adaptive} vs shadow {shadow} diverge on le({clock})"
            );

            // Note: the epoch representation is *exact* only for the
            // queries the detector makes on well-formed traces; here we
            // drive it through `observe` and check the promotion invariant:
            // once promoted, the vector dominates the shadow's view of the
            // touching threads.
            let obs = adaptive.observe(tid, &clock);
            shadow.join_in_place(&clock);
            match obs {
                Observation::EpochFast => {
                    assert!(adaptive.is_epoch());
                    // The epoch stands for the observer's full clock.
                    assert_eq!(adaptive.to_vector().get(tid), clock.get(tid));
                }
                Observation::Promoted | Observation::VectorJoin => {
                    assert!(!adaptive.is_epoch());
                }
            }
            // Whatever the representation, the materialized vector is
            // bounded by the exact shadow join and dominates the current
            // observer's component — enough for phase 1 to answer `le`
            // identically forever after.
            let v = adaptive.to_vector();
            assert!(v.le(&shadow), "materialized {v} exceeds shadow {shadow}");
            assert_eq!(v.get(tid), shadow.get(tid));
        }
    }
}

/// Promotion round-trip: an epoch promoted by a concurrent observer yields
/// exactly `observer_clock ⊔ {owner ↦ epoch}` — nothing is lost and
/// nothing is invented beyond the two participants.
#[test]
fn promotion_materializes_exactly_the_two_participants() {
    let mut rng = StdRng::seed_from_u64(0x9A9);
    for _ in 0..2000 {
        let owner = ThreadId(0);
        let mut owner_clock = random_clock(&mut rng);
        owner_clock.set(owner, rng.gen_range(1..8u64));
        let mut ac = AdaptiveClock::first(owner, &owner_clock);
        assert!(ac.is_epoch());
        assert_eq!(ac.to_vector(), {
            let mut v = VectorClock::new();
            v.set(owner, owner_clock.get(owner));
            v
        });

        // A concurrent observer: its clock misses the owner's component.
        let observer = ThreadId(1);
        let mut obs_clock = random_clock(&mut rng);
        obs_clock.set(owner, rng.gen_range(0..owner_clock.get(owner)));
        obs_clock.set(observer, rng.gen_range(1..8u64));
        let obs = ac.observe(observer, &obs_clock);
        assert_eq!(obs, Observation::Promoted);
        let mut expected = obs_clock.clone();
        expected.set(owner, owner_clock.get(owner));
        assert_eq!(ac.to_vector(), expected);
    }
}

/// Same-thread re-observation and ordered handoffs never promote.
#[test]
fn ordered_histories_never_promote() {
    let mut rng = StdRng::seed_from_u64(0xABC);
    for _ in 0..2000 {
        let t0 = ThreadId(0);
        let mut c0 = random_clock(&mut rng);
        c0.set(t0, 3);
        let mut ac = AdaptiveClock::first(t0, &c0);

        // Same thread again, later clock.
        c0.inc(t0);
        assert_eq!(ac.observe(t0, &c0), Observation::EpochFast);

        // Ordered handoff: t1's clock absorbs c0 (join) then advances.
        let t1 = ThreadId(1);
        let mut c1 = random_clock(&mut rng);
        c1.join_in_place(&c0);
        c1.inc(t1);
        assert_eq!(ac.observe(t1, &c1), Observation::EpochFast);
        assert!(ac.is_epoch());
        assert_eq!(ac.to_vector().get(t1), c1.get(t1));
    }
}
