//! FastTrack epochs: the `c@t` compressed clocks of Flanagan & Freund.

use crate::VectorClock;
use crace_model::ThreadId;
use std::fmt;

/// A FastTrack epoch `c@t`: one clock component `c` together with the thread
/// `t` that owns it.
///
/// FastTrack's key observation is that reads and writes to a variable are
/// almost always totally ordered, so the last access can be summarized by a
/// single epoch instead of a full vector clock. An epoch `c@t` *happens
/// before* a clock `C` iff `c ≤ C(t)` — see [`Epoch::le_clock`].
///
/// # Examples
///
/// ```
/// use crace_model::ThreadId;
/// use crace_vclock::{Epoch, VectorClock};
///
/// let write = Epoch::new(ThreadId(1), 3);
/// let mut now = VectorClock::new();
/// now.set(ThreadId(1), 5);
/// assert!(write.le_clock(&now));      // 3 ≤ now(τ1) = 5
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Epoch {
    tid: ThreadId,
    clock: u64,
}

impl Epoch {
    /// The `0@τ0` epoch, denoting "never accessed".
    pub const NONE: Epoch = Epoch {
        tid: ThreadId(0),
        clock: 0,
    };

    /// Creates the epoch `clock@tid`.
    pub fn new(tid: ThreadId, clock: u64) -> Epoch {
        Epoch { tid, clock }
    }

    /// The epoch of thread `tid` in clock `c`: `c(tid)@tid` (written `E(t)`
    /// in the FastTrack paper).
    pub fn of(tid: ThreadId, clock: &VectorClock) -> Epoch {
        Epoch {
            tid,
            clock: clock.get(tid),
        }
    }

    /// The owning thread `t`.
    #[inline]
    pub fn tid(self) -> ThreadId {
        self.tid
    }

    /// The clock component `c`.
    #[inline]
    pub fn clock(self) -> u64 {
        self.clock
    }

    /// `c@t ⊑ C` iff `c ≤ C(t)`: the summarized access happens before every
    /// event at clock `C`.
    #[inline]
    pub fn le_clock(self, clock: &VectorClock) -> bool {
        self.clock <= clock.get(self.tid)
    }

    /// Returns `true` iff this is the "never accessed" epoch.
    #[inline]
    pub fn is_none(self) -> bool {
        self.clock == 0
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_epoch_precedes_everything() {
        assert!(Epoch::NONE.is_none());
        assert!(Epoch::NONE.le_clock(&VectorClock::new()));
    }

    #[test]
    fn of_extracts_own_component() {
        let c = VectorClock::from_components([4, 7]);
        let e = Epoch::of(ThreadId(1), &c);
        assert_eq!(e.tid(), ThreadId(1));
        assert_eq!(e.clock(), 7);
    }

    #[test]
    fn le_clock_compares_only_own_component() {
        let e = Epoch::new(ThreadId(2), 3);
        // Other components are irrelevant.
        let big_elsewhere = VectorClock::from_components([100, 100, 2]);
        assert!(!e.le_clock(&big_elsewhere));
        let enough = VectorClock::from_components([0, 0, 3]);
        assert!(e.le_clock(&enough));
    }

    #[test]
    fn display_uses_at_notation() {
        assert_eq!(Epoch::new(ThreadId(1), 5).to_string(), "5@τ1");
    }
}
