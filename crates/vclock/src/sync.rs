//! Standard vector-clock handling of synchronization events (Table 1).

use crate::VectorClock;
use crace_model::{Event, LockId, ThreadId};
use std::collections::HashMap;
use std::fmt;

/// The auxiliary synchronization state of Table 1: the thread-clock map
/// `T : Tid → VC` and the lock-clock map `L : Lock → VC`.
///
/// All detectors (the commutativity detector, the direct detector and the
/// FastTrack baseline) share this treatment of fork/join/acquire/release;
/// only their handling of the remaining events differs.
///
/// A thread's clock is initialized on first use with its own component set
/// to one, so that events of two threads that have never synchronized get
/// incomparable clocks (with the all-bottom initialization of the table, two
/// fresh threads would be spuriously *equal*, i.e. ordered). Forked children
/// inherit the parent clock with their own component incremented, exactly as
/// in the table.
///
/// # Examples
///
/// ```
/// use crace_model::{LockId, ThreadId};
/// use crace_vclock::SyncClocks;
///
/// let mut sync = SyncClocks::new();
/// let (main, worker) = (ThreadId(0), ThreadId(1));
/// sync.fork(main, worker);
/// // After the fork, the child and the parent's subsequent events are
/// // concurrent …
/// let child = sync.clock(worker).clone();
/// let parent = sync.clock(main).clone();
/// assert!(child.concurrent_with(&parent));
/// // … until the parent joins the child.
/// sync.join(main, worker);
/// assert!(child.le(sync.clock(main)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SyncClocks {
    threads: Vec<VectorClock>,
    locks: HashMap<LockId, VectorClock>,
}

impl SyncClocks {
    /// Creates the initial state: every clock at `⊥` (threads are
    /// lazily initialized on first use).
    pub fn new() -> SyncClocks {
        SyncClocks::default()
    }

    fn ensure(&mut self, tid: ThreadId) {
        let idx = tid.index();
        if idx >= self.threads.len() {
            self.threads.resize_with(idx + 1, VectorClock::new);
        }
        // A live thread always has its own component ≥ 1; zero means this
        // thread is being observed for the first time.
        if self.threads[idx].get(tid) == 0 {
            self.threads[idx].inc(tid);
        }
    }

    /// The current clock `T(tid)` of a thread. This is the clock stamped
    /// onto action events (`vc(e) ← T(τ)`, last row of Table 1).
    pub fn clock(&mut self, tid: ThreadId) -> &VectorClock {
        self.ensure(tid);
        &self.threads[tid.index()]
    }

    /// The clock `T(tid)` if the thread has already been initialized (by a
    /// fork or a previous [`SyncClocks::clock`] call); `None` otherwise.
    ///
    /// This is the read-only fast path for online detectors: it lets the
    /// hot action path take a shared lock, falling back to the
    /// lazily-initializing [`SyncClocks::clock`] only on a thread's first
    /// event.
    pub fn peek_clock(&self, tid: ThreadId) -> Option<&VectorClock> {
        let clock = self.threads.get(tid.index())?;
        if clock.get(tid) == 0 {
            None
        } else {
            Some(clock)
        }
    }

    /// `τ : fork(u)` — `T(u) ← inc_u(T(τ)); T(τ) ← inc_τ(T(τ))`.
    pub fn fork(&mut self, parent: ThreadId, child: ThreadId) {
        self.ensure(parent);
        let mut child_clock = self.threads[parent.index()].clone();
        child_clock.inc(child);
        let idx = child.index();
        if idx >= self.threads.len() {
            self.threads.resize_with(idx + 1, VectorClock::new);
        }
        self.threads[idx] = child_clock;
        let p = parent.index();
        self.threads[p].inc(parent);
    }

    /// `τ : join(u)` — `T(τ) ← T(τ) ⊔ T(u)`.
    pub fn join(&mut self, parent: ThreadId, child: ThreadId) {
        self.ensure(parent);
        self.ensure(child);
        let child_clock = self.threads[child.index()].clone();
        self.threads[parent.index()].join_in_place(&child_clock);
    }

    /// `τ : acq(l)` — `T(τ) ← T(τ) ⊔ L(l)`.
    pub fn acquire(&mut self, tid: ThreadId, lock: LockId) {
        self.ensure(tid);
        if let Some(lock_clock) = self.locks.get(&lock) {
            let lock_clock = lock_clock.clone();
            self.threads[tid.index()].join_in_place(&lock_clock);
        }
    }

    /// `τ : rel(l)` — `L(l) ← T(τ); T(τ) ← inc_τ(T(τ))`.
    pub fn release(&mut self, tid: ThreadId, lock: LockId) {
        self.ensure(tid);
        let clock = self.threads[tid.index()].clone();
        self.locks.insert(lock, clock);
        self.threads[tid.index()].inc(tid);
    }

    /// Applies one synchronization event; non-synchronization events are
    /// ignored (their handling is detector-specific).
    pub fn apply(&mut self, event: &Event) {
        match *event {
            Event::Fork { parent, child } => self.fork(parent, child),
            Event::Join { parent, child } => self.join(parent, child),
            Event::Acquire { tid, lock } => self.acquire(tid, lock),
            Event::Release { tid, lock } => self.release(tid, lock),
            Event::Action { .. } | Event::Read { .. } | Event::Write { .. } => {}
        }
    }

    /// Retires a dead thread's clock: resets `T(tid)` to `⊥`.
    ///
    /// Used by the abandonment path when a monitored thread dies without
    /// being joined. Retiring introduces **no happens-before edges** —
    /// nothing is folded into any other clock — it only finalizes the
    /// slot so stale state cannot leak if the detector ever sees the tid
    /// again (callers are expected to shed such late events; a retired
    /// slot reinitializes lazily like a fresh thread if they do not).
    pub fn retire(&mut self, tid: ThreadId) {
        if let Some(slot) = self.threads.get_mut(tid.index()) {
            *slot = VectorClock::new();
        }
    }

    /// Number of threads observed so far.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Iterates the raw thread slots `T(τ0), T(τ1), …` in index order,
    /// including retired (`⊥`) slots, for checkpoint serialization.
    pub fn thread_slots(&self) -> impl Iterator<Item = &VectorClock> {
        self.threads.iter()
    }

    /// Iterates the lock-clock map `L` in arbitrary order, for
    /// checkpoint serialization (callers sort for determinism).
    pub fn lock_slots(&self) -> impl Iterator<Item = (LockId, &VectorClock)> {
        self.locks.iter().map(|(l, c)| (*l, c))
    }

    /// Rebuilds the state from raw slots, the inverse of
    /// [`SyncClocks::thread_slots`] / [`SyncClocks::lock_slots`].
    pub fn from_slots(
        threads: Vec<VectorClock>,
        locks: impl IntoIterator<Item = (LockId, VectorClock)>,
    ) -> SyncClocks {
        SyncClocks {
            threads,
            locks: locks.into_iter().collect(),
        }
    }
}

impl fmt::Display for SyncClocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.threads.iter().enumerate() {
            writeln!(f, "T(τ{i}) = {c}")?;
        }
        for (l, c) in &self.locks {
            writeln!(f, "L({l}) = {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAIN: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    #[test]
    fn fresh_threads_are_concurrent() {
        let mut s = SyncClocks::new();
        let a = s.clock(T1).clone();
        let b = s.clock(T2).clone();
        assert!(a.concurrent_with(&b));
    }

    #[test]
    fn fork_orders_parent_prefix_before_child() {
        let mut s = SyncClocks::new();
        let before_fork = s.clock(MAIN).clone();
        s.fork(MAIN, T1);
        assert!(before_fork.le(s.clock(T1)));
        // But the parent's *subsequent* events are concurrent with the child.
        let parent_after = s.clock(MAIN).clone();
        assert!(parent_after.concurrent_with(s.clock(T1)));
    }

    #[test]
    fn join_orders_child_before_parent_suffix() {
        let mut s = SyncClocks::new();
        s.fork(MAIN, T1);
        let child_work = s.clock(T1).clone();
        s.join(MAIN, T1);
        assert!(child_work.le(s.clock(MAIN)));
    }

    #[test]
    fn lock_release_acquire_creates_order() {
        let mut s = SyncClocks::new();
        let lock = LockId(7);
        s.fork(MAIN, T1);
        s.fork(MAIN, T2);
        // T1 works under the lock, then releases.
        s.acquire(T1, lock);
        let t1_critical = s.clock(T1).clone();
        s.release(T1, lock);
        // T2 acquires the same lock: T1's critical section happens before.
        s.acquire(T2, lock);
        assert!(t1_critical.le(s.clock(T2)));
    }

    #[test]
    fn release_increments_releasing_thread() {
        let mut s = SyncClocks::new();
        let lock = LockId(0);
        s.acquire(T1, lock);
        let during = s.clock(T1).clone();
        s.release(T1, lock);
        let after = s.clock(T1).clone();
        assert!(during.le(&after));
        assert_ne!(during, after);
        // Events after the release are NOT ordered before a later acquire's
        // critical section in the other direction: after ⋢ L(l).
        s.acquire(T2, lock);
        assert!(!after.le(s.clock(T2)));
    }

    #[test]
    fn acquire_of_untouched_lock_is_noop() {
        let mut s = SyncClocks::new();
        let before = s.clock(T1).clone();
        s.acquire(T1, LockId(99));
        assert_eq!(&before, s.clock(T1));
    }

    #[test]
    fn apply_dispatches_sync_events_only() {
        let mut s = SyncClocks::new();
        s.apply(&Event::Fork {
            parent: MAIN,
            child: T1,
        });
        s.apply(&Event::Read {
            tid: T2,
            loc: crace_model::LocId(0),
        });
        assert!(s.num_threads() >= 2);
        s.apply(&Event::Join {
            parent: MAIN,
            child: T1,
        });
        let child = s.clock(T1).clone();
        assert!(child.le(s.clock(MAIN)));
    }

    #[test]
    fn retire_resets_slot_without_ordering_anyone() {
        let mut s = SyncClocks::new();
        s.fork(MAIN, T1);
        let main_before = s.clock(MAIN).clone();
        s.retire(T1);
        // Retiring creates no happens-before edges: main is untouched.
        assert_eq!(&main_before, s.clock(MAIN));
        // The slot is back to bottom; a later sighting reinitializes it
        // as a fresh thread, concurrent with everything.
        assert!(s.peek_clock(T1).is_none());
        assert!(s.clock(T1).clone().concurrent_with(&main_before));
        // Retiring an unseen thread is a no-op.
        s.retire(ThreadId(99));
    }

    #[test]
    fn fig3_trace_reproduces_paper_relationships() {
        // Main forks τ2 and τ3; their put actions are concurrent; after
        // joinall, main's size() dominates both.
        let mut s = SyncClocks::new();
        let (t2, t3) = (ThreadId(1), ThreadId(2));
        s.fork(MAIN, t2);
        s.fork(MAIN, t3);
        let a1 = s.clock(t3).clone(); // τ3: put('a.com', c1)/nil
        let a2 = s.clock(t2).clone(); // τ2: put('a.com', c2)/c1
        assert!(a1.concurrent_with(&a2));
        s.join(MAIN, t2);
        s.join(MAIN, t3);
        let a3 = s.clock(MAIN).clone(); // τm: size()/1
        assert!(a1.le(&a3));
        assert!(a2.le(&a3));
    }
}
