//! Epoch-compressed clocks that promote to full vectors on contention.

use crate::{Epoch, VectorClock};
use crace_model::ThreadId;
use std::fmt;

/// How an [`AdaptiveClock::observe`] call updated the representation — fed
/// into the detectors' [`ClockStats`] counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Observation {
    /// The clock stayed an epoch: same owning thread, or an ordered
    /// handoff to a new one. This is the O(1) fast path.
    EpochFast,
    /// The clock was an epoch but the observing access was concurrent with
    /// it, so it was promoted to a full vector.
    Promoted,
    /// The clock was already a vector; a pointwise join was performed.
    VectorJoin,
}

/// The clock of one active access point, stored adaptively: a FastTrack
/// [`Epoch`] `c@t` while the point's accesses are totally ordered, a full
/// [`VectorClock`] once two concurrent accesses have touched it.
///
/// This is the access-point analogue of FastTrack's insight about memory
/// locations: the overwhelming majority of points (a dictionary key, say)
/// are only ever touched by one thread at a time, so keeping the whole
/// `pt.vc` vector — and joining into it on every touch — wastes both space
/// and time. An epoch compares and updates in O(1).
///
/// # Exactness
///
/// Against the clocks produced by [`crate::SyncClocks`] /
/// [`crate::PublishedClocks`] over a *well-formed* trace (no events of a
/// thread after it is joined), the adaptive representation answers every
/// happens-before query identically to the full vector it stands for:
///
/// * An epoch `c@t` stands for the acting thread's full clock `C` at the
///   access, where `c = C(t)`. Every export of `t`'s component (fork,
///   release) publishes `t`'s *entire* clock and then increments `t`'s own
///   component, and a join publishes the child's final clock. So any later
///   thread clock `D` with `D(t) ≥ c` necessarily absorbed all of `C`,
///   giving `c ≤ D(t) ⟺ C ⊑ D` — the epoch test is exact.
/// * Promotion materializes the epoch into the join `D ⊔ {t ↦ c}` where
///   `D` is the promoting access's clock. The hidden remainder of `C` is
///   dominated by any clock that dominates `c@t` (same argument), so every
///   subsequent `⊑`-query against thread clocks is unchanged.
///
/// The differential test `tests/adaptive_vs_full.rs` checks this claim
/// end-to-end: random traces produce bit-for-bit identical race reports
/// under both representations.
///
/// # Examples
///
/// ```
/// use crace_model::ThreadId;
/// use crace_vclock::{AdaptiveClock, Observation, VectorClock};
///
/// let t0 = VectorClock::from_components([1, 0]);
/// let t1 = VectorClock::from_components([0, 1]);
/// let mut clock = AdaptiveClock::first(ThreadId(0), &t0);
/// assert!(clock.is_epoch());
/// // A concurrent access by thread 1 forces promotion …
/// assert!(!clock.le(&t1));
/// assert_eq!(clock.observe(ThreadId(1), &t1), Observation::Promoted);
/// // … to the exact join of both access clocks.
/// assert_eq!(clock.to_vector(), VectorClock::from_components([1, 1]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdaptiveClock {
    /// All accesses so far are totally ordered; the last one is `c@t`.
    Epoch(Epoch),
    /// Concurrent accesses have been observed; the full `pt.vc` join.
    Vector(VectorClock),
}

impl AdaptiveClock {
    /// The clock of a point's *first* access, by `tid` at thread clock
    /// `clock`: always an epoch.
    ///
    /// `clock` must be a live thread clock, i.e. `clock(tid) ≥ 1` (the
    /// [`crate::SyncClocks`] initialization invariant); a zero own
    /// component would alias the "never accessed" epoch.
    pub fn first(tid: ThreadId, clock: &VectorClock) -> AdaptiveClock {
        debug_assert!(clock.get(tid) >= 1, "clock of {tid} not initialized");
        AdaptiveClock::Epoch(Epoch::of(tid, clock))
    }

    /// Phase-1 test of Algorithm 1: does every access summarized by this
    /// clock happen before an event at `clock`?
    #[inline]
    pub fn le(&self, clock: &VectorClock) -> bool {
        match self {
            AdaptiveClock::Epoch(e) => e.le_clock(clock),
            AdaptiveClock::Vector(v) => v.le(clock),
        }
    }

    /// Phase-2 update of Algorithm 1: fold an access by `tid` at thread
    /// clock `clock` into this point's clock, keeping the epoch
    /// representation whenever the access is ordered after everything the
    /// clock summarizes.
    pub fn observe(&mut self, tid: ThreadId, clock: &VectorClock) -> Observation {
        match self {
            AdaptiveClock::Epoch(e) => {
                if e.tid() == tid || e.le_clock(clock) {
                    // Same thread (per-thread clocks are monotone), or an
                    // ordered handoff: the new access dominates the old
                    // one, so its thread clock is the exact new `pt.vc`.
                    *e = Epoch::of(tid, clock);
                    Observation::EpochFast
                } else {
                    // Concurrent access: materialize the epoch and join.
                    let mut v = clock.clone();
                    if e.clock() > v.get(e.tid()) {
                        v.set(e.tid(), e.clock());
                    }
                    *self = AdaptiveClock::Vector(v);
                    Observation::Promoted
                }
            }
            AdaptiveClock::Vector(v) => {
                v.join_in_place(clock);
                Observation::VectorJoin
            }
        }
    }

    /// Returns `true` while the clock is in the compressed representation.
    #[inline]
    pub fn is_epoch(&self) -> bool {
        matches!(self, AdaptiveClock::Epoch(_))
    }

    /// The clock as a full vector (materializing an epoch to its single
    /// known component). For diagnostics and tests; the detectors never
    /// need this on the hot path.
    pub fn to_vector(&self) -> VectorClock {
        match self {
            AdaptiveClock::Epoch(e) => {
                let mut v = VectorClock::new();
                v.set(e.tid(), e.clock());
                v
            }
            AdaptiveClock::Vector(v) => v.clone(),
        }
    }
}

impl fmt::Display for AdaptiveClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptiveClock::Epoch(e) => write!(f, "{e}"),
            AdaptiveClock::Vector(v) => write!(f, "{v}"),
        }
    }
}

/// Counters describing how a detector's adaptive clocks behaved — the
/// epoch-hit rate the benchmarks report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClockStats {
    /// Phase-2 updates that stayed in the epoch representation.
    pub epoch_updates: u64,
    /// Phase-2 updates that promoted an epoch to a full vector.
    pub promotions: u64,
    /// Phase-2 updates that joined into an existing full vector.
    pub vector_updates: u64,
}

impl ClockStats {
    /// Folds one observation into the counters.
    pub fn record(&mut self, obs: Observation) {
        match obs {
            Observation::EpochFast => self.epoch_updates += 1,
            Observation::Promoted => self.promotions += 1,
            Observation::VectorJoin => self.vector_updates += 1,
        }
    }

    /// Total phase-2 updates counted.
    pub fn total(&self) -> u64 {
        self.epoch_updates + self.promotions + self.vector_updates
    }

    /// Fraction of updates served by the O(1) epoch path, in `[0, 1]`.
    pub fn epoch_hit_rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.epoch_updates as f64 / self.total() as f64
    }

    /// Componentwise sum, for aggregating per-object stats.
    pub fn merge(&mut self, other: &ClockStats) {
        self.epoch_updates += other.epoch_updates;
        self.promotions += other.promotions;
        self.vector_updates += other.vector_updates;
    }
}

impl fmt::Display for ClockStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} epoch / {} promoted / {} vector ({:.1}% epoch hits)",
            self.epoch_updates,
            self.promotions,
            self.vector_updates,
            self.epoch_hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(c: &[u64]) -> VectorClock {
        VectorClock::from_components(c.iter().copied())
    }

    #[test]
    fn same_thread_accesses_stay_epoch() {
        let mut c = AdaptiveClock::first(ThreadId(0), &vc(&[1]));
        assert_eq!(c.observe(ThreadId(0), &vc(&[2])), Observation::EpochFast);
        assert_eq!(c.observe(ThreadId(0), &vc(&[5])), Observation::EpochFast);
        assert!(c.is_epoch());
        assert_eq!(c.to_vector(), vc(&[5]));
    }

    #[test]
    fn ordered_handoff_stays_epoch() {
        // τ0 accesses at ⟨2,0⟩; τ1 has synchronized (clock ⟨2,1⟩ ⊒ 2@0).
        let mut c = AdaptiveClock::first(ThreadId(0), &vc(&[2, 0]));
        assert_eq!(c.observe(ThreadId(1), &vc(&[2, 1])), Observation::EpochFast);
        assert!(c.is_epoch());
        // The epoch now belongs to τ1.
        assert!(!c.le(&vc(&[9, 0])));
        assert!(c.le(&vc(&[0, 1])));
    }

    #[test]
    fn concurrent_access_promotes_to_exact_join() {
        let mut c = AdaptiveClock::first(ThreadId(0), &vc(&[3, 0]));
        assert_eq!(c.observe(ThreadId(1), &vc(&[0, 2])), Observation::Promoted);
        assert!(!c.is_epoch());
        // ⟨3,0⟩ known only as 3@0, joined with ⟨0,2⟩.
        assert_eq!(c.to_vector(), vc(&[3, 2]));
        // Later accesses join as plain vectors.
        assert_eq!(
            c.observe(ThreadId(2), &vc(&[0, 0, 4])),
            Observation::VectorJoin
        );
        assert_eq!(c.to_vector(), vc(&[3, 2, 4]));
    }

    #[test]
    fn le_matches_the_materialized_vector() {
        let epoch = AdaptiveClock::first(ThreadId(1), &vc(&[0, 4]));
        for probe in [vc(&[0, 4]), vc(&[9, 3]), vc(&[1, 7]), vc(&[])] {
            assert_eq!(epoch.le(&probe), epoch.to_vector().le(&probe), "{probe}");
        }
    }

    #[test]
    fn promotion_keeps_larger_own_component() {
        // The epoch's component exceeds the promoting clock's view of that
        // thread: the max must win or later queries would falsely order.
        let mut c = AdaptiveClock::first(ThreadId(0), &vc(&[7]));
        c.observe(ThreadId(1), &vc(&[2, 1]));
        assert_eq!(c.to_vector(), vc(&[7, 1]));
    }

    #[test]
    fn stats_track_hit_rate() {
        let mut stats = ClockStats::default();
        stats.record(Observation::EpochFast);
        stats.record(Observation::EpochFast);
        stats.record(Observation::Promoted);
        stats.record(Observation::VectorJoin);
        assert_eq!(stats.total(), 4);
        assert_eq!(stats.epoch_hit_rate(), 0.5);
        let mut agg = ClockStats::default();
        agg.merge(&stats);
        agg.merge(&stats);
        assert_eq!(agg.total(), 8);
        assert_eq!(
            agg.to_string(),
            "4 epoch / 2 promoted / 2 vector (50.0% epoch hits)"
        );
    }

    #[test]
    fn empty_stats_have_zero_hit_rate() {
        assert_eq!(ClockStats::default().epoch_hit_rate(), 0.0);
    }

    #[test]
    fn display_shows_representation() {
        let e = AdaptiveClock::first(ThreadId(1), &vc(&[0, 3]));
        assert_eq!(e.to_string(), "3@τ1");
        let mut v = e.clone();
        v.observe(ThreadId(0), &vc(&[1, 0]));
        assert_eq!(v.to_string(), "⟨1, 3⟩");
    }
}
