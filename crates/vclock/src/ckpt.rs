//! The versioned, CRC-framed checkpoint format for detector state.
//!
//! A detector is a deterministic fold over the event stream, so its
//! state at any record boundary is a value — and a value can be written
//! down. This module provides the wire format that makes those values
//! durable: a headered, line-framed text blob in the same spirit as the
//! framed trace format (`crace-cli`'s `=<len>:<crc32> …` records), so a
//! torn or corrupted checkpoint is *detected* and rejected rather than
//! silently restored into a wrong report:
//!
//! ```text
//! #%crace-ckpt v1 rd2-trace
//! =14:1c291ca3 mode adaptive
//! =25:9b1a77f0 thread 0 3,0,1
//! =5:34c2810c end 2
//! ```
//!
//! * the header carries the format **version** and the detector **kind**
//!   — a reader refuses both a future version and a kind mismatch, so a
//!   checkpoint can never be restored into the wrong detector shape;
//! * every record line carries its byte length and IEEE CRC-32, so any
//!   byte flip fails closed with a line-accurate diagnostic;
//! * the final record is `end <n>` with the record count, so truncation
//!   at any byte — even on a clean line boundary — is detected.
//!
//! The degradation contract is the point: a reader either reproduces the
//! exact state that was written or returns a [`CkptError`] telling the
//! caller to fall back to a full capture replay. It never guesses.

use crate::{AdaptiveClock, ClockStats, Epoch, SyncClocks, VectorClock};
use crace_model::{LockId, ThreadId};
use std::fmt;

/// Magic prefix of every checkpoint header line.
pub const CKPT_MAGIC: &str = "#%crace-ckpt";

/// The format version this build writes and the only one it restores.
pub const CKPT_VERSION: u32 = 1;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC-32 (the zlib/PNG polynomial) of `bytes` — the same checksum
/// the framed trace format uses.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Why a checkpoint could not be restored. Carries the 1-based line the
/// damage was found on, for spanned diagnostics; restoring code treats
/// *every* variant the same way — fail closed, fall back to replaying
/// the full capture.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CkptError {
    /// 1-based line number where the problem was detected.
    pub line: usize,
    /// What exactly was wrong.
    pub reason: String,
}

impl CkptError {
    /// Builds an error at `line` with the given reason.
    pub fn at(line: usize, reason: impl Into<String>) -> CkptError {
        CkptError {
            line,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for CkptError {}

/// Escapes an arbitrary string into a single whitespace-free word.
///
/// Records are whitespace-split, so embedded spaces, newlines and the
/// escape character itself are encoded; the empty string becomes the
/// marker `\e` so it survives the split. [`unesc`] inverts exactly.
pub fn esc(s: &str) -> String {
    if s.is_empty() {
        return "\\e".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverts [`esc`].
///
/// # Errors
///
/// Returns the offending escape sequence when the word is not a valid
/// escaping of any string.
pub fn unesc(word: &str) -> Result<String, String> {
    if word == "\\e" {
        return Ok(String::new());
    }
    let mut out = String::with_capacity(word.len());
    let mut chars = word.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            other => {
                return Err(match other {
                    Some(o) => format!("bad escape `\\{o}`"),
                    None => "dangling escape at end of word".to_string(),
                })
            }
        }
    }
    Ok(out)
}

/// Streaming writer of a checkpoint blob: header first, one framed
/// record per [`CkptWriter::rec`], the `end` marker on
/// [`CkptWriter::finish`].
pub struct CkptWriter {
    out: String,
    records: u64,
    scratch: String,
}

impl CkptWriter {
    /// Starts a checkpoint of the given detector `kind` (a short
    /// whitespace-free tag such as `rd2-trace`; readers must present the
    /// same kind).
    pub fn new(kind: &str) -> CkptWriter {
        debug_assert!(
            !kind.is_empty() && !kind.contains(char::is_whitespace),
            "checkpoint kind must be a single word"
        );
        CkptWriter {
            out: format!("{CKPT_MAGIC} v{CKPT_VERSION} {kind}\n"),
            records: 0,
            scratch: String::new(),
        }
    }

    fn frame(&mut self, payload: &str) {
        use std::fmt::Write;
        debug_assert!(!payload.contains('\n'), "records are single lines");
        self.records += 1;
        let _ = writeln!(
            self.out,
            "={}:{:08x} {payload}",
            payload.len(),
            crc32(payload.as_bytes())
        );
    }

    /// Appends one record; `payload` must be a single line (no newline).
    pub fn rec(&mut self, payload: &str) {
        self.frame(payload);
    }

    /// Appends one record whose payload is built directly into the
    /// writer's reusable scratch buffer — the allocation-free variant of
    /// [`CkptWriter::rec`] for hot serializers (per-clock records in a
    /// wide pipeline checkpoint number in the thousands).
    pub fn rec_with(&mut self, build: impl FnOnce(&mut String)) {
        let mut payload = std::mem::take(&mut self.scratch);
        payload.clear();
        build(&mut payload);
        self.frame(&payload);
        self.scratch = payload;
    }

    /// Appends the `end` marker and returns the finished blob.
    pub fn finish(mut self) -> String {
        let payload = format!("end {}", self.records);
        self.frame(&payload);
        self.out
    }
}

/// One validated checkpoint record: its 1-based line number and its
/// whitespace-split payload words.
#[derive(Debug)]
pub struct CkptRecord<'a> {
    /// 1-based line number of the record, for diagnostics.
    pub line: usize,
    /// The payload split on single spaces.
    pub words: Vec<&'a str>,
}

impl CkptRecord<'_> {
    /// The record's leading tag word (always present — empty payloads
    /// are rejected by the reader).
    pub fn tag(&self) -> &str {
        self.words[0]
    }

    /// The word at `i`, or a spanned error naming the record's tag.
    ///
    /// # Errors
    ///
    /// [`CkptError`] when the record has fewer than `i + 1` words.
    pub fn word(&self, i: usize) -> Result<&str, CkptError> {
        self.words.get(i).copied().ok_or_else(|| {
            CkptError::at(
                self.line,
                format!("`{}` record is missing field {i}", self.tag()),
            )
        })
    }

    /// The word at `i` parsed as an integer.
    ///
    /// # Errors
    ///
    /// [`CkptError`] when the field is missing or not a number.
    pub fn num<T: std::str::FromStr>(&self, i: usize) -> Result<T, CkptError> {
        let w = self.word(i)?;
        w.parse().map_err(|_| {
            CkptError::at(
                self.line,
                format!("`{}` field {i} is not a valid number: `{w}`", self.tag()),
            )
        })
    }

    /// The word at `i` unescaped back to an arbitrary string.
    ///
    /// # Errors
    ///
    /// [`CkptError`] when the field is missing or malformed.
    pub fn text(&self, i: usize) -> Result<String, CkptError> {
        unesc(self.word(i)?).map_err(|e| CkptError::at(self.line, e))
    }
}

/// Fully-validated reader over a checkpoint blob.
///
/// Construction checks the header (magic, version, kind), unframes and
/// checksums every record, and verifies the `end` marker and record
/// count — so by the time the caller iterates, the blob is known whole.
#[derive(Debug)]
pub struct CkptReader<'a> {
    records: Vec<CkptRecord<'a>>,
    next: usize,
}

impl<'a> CkptReader<'a> {
    /// Validates `source` as a version-1 checkpoint of detector `kind`.
    ///
    /// # Errors
    ///
    /// [`CkptError`] on any damage: missing or foreign header, version
    /// from the future, kind mismatch, torn or corrupted record,
    /// missing or wrong `end` marker.
    pub fn new(source: &'a str, kind: &str) -> Result<CkptReader<'a>, CkptError> {
        let mut lines = source.split('\n').enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| CkptError::at(1, "empty checkpoint"))?;
        let rest = header
            .strip_prefix(CKPT_MAGIC)
            .ok_or_else(|| CkptError::at(1, format!("not a checkpoint: `{}`", clip(header))))?;
        let mut head = rest.split_whitespace();
        let version = head
            .next()
            .and_then(|v| v.strip_prefix('v'))
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| CkptError::at(1, "header carries no version"))?;
        if version != CKPT_VERSION {
            return Err(CkptError::at(
                1,
                format!(
                    "unsupported checkpoint version v{version} (this build reads v{CKPT_VERSION})"
                ),
            ));
        }
        let found_kind = head
            .next()
            .ok_or_else(|| CkptError::at(1, "header carries no detector kind"))?;
        if found_kind != kind {
            return Err(CkptError::at(
                1,
                format!("checkpoint is for detector `{found_kind}`, not `{kind}`"),
            ));
        }
        let mut records = Vec::new();
        let mut end: Option<(usize, u64)> = None;
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.is_empty() {
                continue; // the final newline or a stray blank
            }
            if let Some((at, _)) = end {
                return Err(CkptError::at(
                    lineno,
                    format!("record after the `end` marker on line {at}"),
                ));
            }
            let payload = unframe(line, lineno)?;
            let words: Vec<&str> = payload.split(' ').collect();
            if words.is_empty() || words[0].is_empty() {
                return Err(CkptError::at(lineno, "empty record payload"));
            }
            if words[0] == "end" {
                let rec = CkptRecord {
                    line: lineno,
                    words,
                };
                end = Some((lineno, rec.num(1)?));
                continue;
            }
            records.push(CkptRecord {
                line: lineno,
                words,
            });
        }
        let Some((at, count)) = end else {
            return Err(CkptError::at(
                source.lines().count().max(1),
                "checkpoint is truncated: no `end` marker",
            ));
        };
        if count != records.len() as u64 {
            return Err(CkptError::at(
                at,
                format!(
                    "`end` marker counts {count} record(s), file holds {}",
                    records.len()
                ),
            ));
        }
        Ok(CkptReader { records, next: 0 })
    }

    /// The next record, in file order.
    pub fn next_rec(&mut self) -> Option<&CkptRecord<'a>> {
        let rec = self.records.get(self.next)?;
        self.next += 1;
        Some(rec)
    }

    /// Peeks at the next record without consuming it.
    pub fn peek(&self) -> Option<&CkptRecord<'a>> {
        self.records.get(self.next)
    }

    /// Number of records not yet consumed.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.next
    }
}

/// One framed line checked and unwrapped to its payload (the checkpoint
/// twin of the trace format's record parser).
fn unframe(line: &str, lineno: usize) -> Result<&str, CkptError> {
    let body = line
        .strip_prefix('=')
        .ok_or_else(|| CkptError::at(lineno, format!("not a framed record: `{}`", clip(line))))?;
    let (len_text, rest) = body
        .split_once(':')
        .ok_or_else(|| CkptError::at(lineno, "record header cut before `:`"))?;
    let len: usize = len_text
        .parse()
        .map_err(|_| CkptError::at(lineno, format!("bad record length `{}`", clip(len_text))))?;
    let (crc_text, payload) = rest
        .split_once(' ')
        .ok_or_else(|| CkptError::at(lineno, "record header cut before payload"))?;
    let crc = (crc_text.len() == 8)
        .then(|| u32::from_str_radix(crc_text, 16).ok())
        .flatten()
        .ok_or_else(|| {
            CkptError::at(lineno, format!("bad record checksum `{}`", clip(crc_text)))
        })?;
    if payload.len() != len {
        return Err(CkptError::at(
            lineno,
            format!(
                "record cut short: header says {len} byte(s), line has {}",
                payload.len()
            ),
        ));
    }
    if crc32(payload.as_bytes()) != crc {
        return Err(CkptError::at(
            lineno,
            format!(
                "checksum mismatch (expected {crc_text}, payload hashes to {:08x})",
                crc32(payload.as_bytes())
            ),
        ));
    }
    Ok(payload)
}

fn clip(text: &str) -> String {
    let mut s: String = text.chars().take(24).collect();
    if s.len() < text.len() {
        s.push('…');
    }
    s
}

// ---------------------------------------------------------------------
// Clock serialization: the vclock types as single checkpoint words.
// ---------------------------------------------------------------------

/// Renders a vector clock as one word: comma-joined components, `-` for
/// the bottom clock `⊥`.
pub fn vc_word(vc: &VectorClock) -> String {
    let mut out = String::with_capacity(2 * vc.dim().max(1));
    vc_append(&mut out, vc);
    out
}

/// Appends the [`vc_word`] rendering of `vc` to `out` — no intermediate
/// per-component strings, for the hot checkpoint serializers.
pub fn vc_append(out: &mut String, vc: &VectorClock) {
    use std::fmt::Write;
    if vc.dim() == 0 {
        out.push('-');
        return;
    }
    for i in 0..vc.dim() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", vc.get(ThreadId(i as u32)));
    }
}

/// Parses a [`vc_word`] rendering back to a clock.
///
/// # Errors
///
/// [`CkptError`] at `line` when a component is not a number.
pub fn vc_parse(word: &str, line: usize) -> Result<VectorClock, CkptError> {
    if word == "-" {
        return Ok(VectorClock::new());
    }
    let mut components = Vec::new();
    for part in word.split(',') {
        components.push(
            part.parse::<u64>().map_err(|_| {
                CkptError::at(line, format!("bad clock component `{}`", clip(part)))
            })?,
        );
    }
    Ok(VectorClock::from_components(components))
}

/// Renders an adaptive clock as one word: `e:<c>@<t>` while compressed,
/// `v:<components>` once promoted.
pub fn adaptive_word(clock: &AdaptiveClock) -> String {
    let mut out = String::new();
    adaptive_append(&mut out, clock);
    out
}

/// Appends the [`adaptive_word`] rendering of `clock` to `out`.
pub fn adaptive_append(out: &mut String, clock: &AdaptiveClock) {
    use std::fmt::Write;
    match clock {
        AdaptiveClock::Epoch(e) => {
            let _ = write!(out, "e:{}@{}", e.clock(), e.tid().0);
        }
        AdaptiveClock::Vector(v) => {
            out.push_str("v:");
            vc_append(out, v);
        }
    }
}

/// Parses an [`adaptive_word`] rendering.
///
/// # Errors
///
/// [`CkptError`] at `line` on any malformation.
pub fn adaptive_parse(word: &str, line: usize) -> Result<AdaptiveClock, CkptError> {
    if let Some(rest) = word.strip_prefix("e:") {
        let (c, t) = rest
            .split_once('@')
            .ok_or_else(|| CkptError::at(line, format!("bad epoch `{}`", clip(word))))?;
        let c: u64 = c
            .parse()
            .map_err(|_| CkptError::at(line, format!("bad epoch clock `{}`", clip(c))))?;
        let t: u32 = t
            .parse()
            .map_err(|_| CkptError::at(line, format!("bad epoch thread `{}`", clip(t))))?;
        return Ok(AdaptiveClock::Epoch(Epoch::new(ThreadId(t), c)));
    }
    if let Some(rest) = word.strip_prefix("v:") {
        return Ok(AdaptiveClock::Vector(vc_parse(rest, line)?));
    }
    Err(CkptError::at(
        line,
        format!("bad adaptive clock `{}`", clip(word)),
    ))
}

/// Renders clock-representation statistics as one word.
pub fn stats_word(stats: &ClockStats) -> String {
    format!(
        "{},{},{}",
        stats.epoch_updates, stats.promotions, stats.vector_updates
    )
}

/// Parses a [`stats_word`] rendering.
///
/// # Errors
///
/// [`CkptError`] at `line` on malformation.
pub fn stats_parse(word: &str, line: usize) -> Result<ClockStats, CkptError> {
    let parts: Vec<&str> = word.split(',').collect();
    if parts.len() != 3 {
        return Err(CkptError::at(
            line,
            format!("bad clock stats `{}`", clip(word)),
        ));
    }
    let mut nums = [0u64; 3];
    for (slot, part) in nums.iter_mut().zip(&parts) {
        *slot = part
            .parse()
            .map_err(|_| CkptError::at(line, format!("bad clock stats `{}`", clip(word))))?;
    }
    Ok(ClockStats {
        epoch_updates: nums[0],
        promotions: nums[1],
        vector_updates: nums[2],
    })
}

/// Writes a [`SyncClocks`] as `thread <idx> <vc>` / `lock <id> <vc>`
/// records (⊥ thread slots included, so retired slots round-trip).
pub fn sync_write(w: &mut CkptWriter, sync: &SyncClocks) {
    use std::fmt::Write;
    for (i, clock) in sync.thread_slots().enumerate() {
        w.rec_with(|out| {
            let _ = write!(out, "thread {i} ");
            vc_append(out, clock);
        });
    }
    let mut locks: Vec<(LockId, &VectorClock)> = sync.lock_slots().collect();
    locks.sort_by_key(|(l, _)| l.0);
    for (lock, clock) in locks {
        w.rec_with(|out| {
            let _ = write!(out, "lock {} ", lock.0);
            vc_append(out, clock);
        });
    }
}

/// Consumes the `thread` / `lock` records the reader is positioned on
/// and rebuilds the [`SyncClocks`].
///
/// # Errors
///
/// [`CkptError`] on malformed clock records.
pub fn sync_read(r: &mut CkptReader<'_>) -> Result<SyncClocks, CkptError> {
    let mut threads: Vec<VectorClock> = Vec::new();
    let mut locks: Vec<(LockId, VectorClock)> = Vec::new();
    while let Some(rec) = r.peek() {
        match rec.tag() {
            "thread" => {
                let idx: usize = rec.num(1)?;
                let clock = vc_parse(rec.word(2)?, rec.line)?;
                if threads.len() <= idx {
                    threads.resize_with(idx + 1, VectorClock::new);
                }
                threads[idx] = clock;
            }
            "lock" => {
                let id: u64 = rec.num(1)?;
                locks.push((LockId(id), vc_parse(rec.word(2)?, rec.line)?));
            }
            _ => break,
        }
        r.next_rec();
    }
    Ok(SyncClocks::from_slots(threads, locks))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn esc_round_trips_hostile_strings() {
        for s in [
            "",
            "plain",
            "a b\tc\nd\re",
            "\\e",
            "trailing\\",
            "τ1: o1.put(\"a b\", 2)/nil",
        ] {
            let w = esc(s);
            assert!(!w.contains(' ') && !w.contains('\n'), "{w:?}");
            assert!(!w.is_empty());
            assert_eq!(unesc(&w).unwrap(), s, "{s:?}");
        }
    }

    #[test]
    fn unesc_rejects_bad_escapes() {
        assert!(unesc("\\q").is_err());
        assert!(unesc("dangling\\").is_err());
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = CkptWriter::new("test-kind");
        w.rec("alpha 1 2");
        w.rec(&format!("beta {}", esc("hello world")));
        let blob = w.finish();
        let mut r = CkptReader::new(&blob, "test-kind").unwrap();
        let rec = r.next_rec().unwrap();
        assert_eq!(rec.tag(), "alpha");
        assert_eq!(rec.num::<u64>(1).unwrap(), 1);
        let rec = r.next_rec().unwrap();
        assert_eq!(rec.text(1).unwrap(), "hello world");
        assert!(r.next_rec().is_none());
    }

    #[test]
    fn kind_and_version_mismatches_fail_closed() {
        let blob = CkptWriter::new("rd2-trace").finish();
        assert!(CkptReader::new(&blob, "rd2-parallel").is_err());
        let future = blob.replace("v1", "v2");
        let e = CkptReader::new(&future, "rd2-trace").unwrap_err();
        assert!(e.reason.contains("unsupported"), "{e}");
        assert!(CkptReader::new("not a checkpoint", "rd2-trace").is_err());
    }

    #[test]
    fn truncation_at_every_byte_fails_closed() {
        let mut w = CkptWriter::new("t");
        w.rec("alpha 1");
        w.rec("beta 2");
        let blob = w.finish();
        for cut in 0..blob.len() {
            match CkptReader::new(&blob[..cut], "t") {
                Err(_) => {}
                Ok(mut r) => {
                    // Only a cut that removes nothing but the trailing
                    // newline may pass — and then every record must be
                    // whole (the checksummed `end` marker guarantees it).
                    assert_eq!(cut, blob.len() - 1, "cut at byte {cut} must be detected");
                    assert_eq!(r.remaining(), 2);
                    assert_eq!(r.next_rec().unwrap().words, vec!["alpha", "1"]);
                    assert_eq!(r.next_rec().unwrap().words, vec!["beta", "2"]);
                }
            }
        }
    }

    #[test]
    fn every_byte_flip_fails_closed_or_is_harmless() {
        let mut w = CkptWriter::new("t");
        w.rec("alpha 1 2,0,3");
        let blob = w.finish();
        let bytes = blob.as_bytes();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.to_vec();
                mutated[pos] ^= 1 << bit;
                let Ok(text) = String::from_utf8(mutated) else {
                    continue;
                };
                if text == blob {
                    continue;
                }
                match CkptReader::new(&text, "t") {
                    Err(_) => {}
                    Ok(mut r) => {
                        // A flip inside the header's kind word is caught by
                        // the kind check; anything that still parses must
                        // reproduce the original records exactly.
                        let rec = r.next_rec().expect("record");
                        assert_eq!(rec.words, vec!["alpha", "1", "2,0,3"]);
                    }
                }
            }
        }
    }

    #[test]
    fn clock_words_round_trip() {
        for vc in [
            VectorClock::new(),
            VectorClock::from_components([3, 0, 1]),
            VectorClock::from_components([0, 0, 7]),
        ] {
            assert_eq!(vc_parse(&vc_word(&vc), 1).unwrap(), vc);
        }
        let e = AdaptiveClock::Epoch(Epoch::new(ThreadId(2), 9));
        assert_eq!(adaptive_parse(&adaptive_word(&e), 1).unwrap(), e);
        let v = AdaptiveClock::Vector(VectorClock::from_components([1, 4]));
        assert_eq!(adaptive_parse(&adaptive_word(&v), 1).unwrap(), v);
        let stats = ClockStats {
            epoch_updates: 5,
            promotions: 1,
            vector_updates: 2,
        };
        assert_eq!(stats_parse(&stats_word(&stats), 1).unwrap(), stats);
    }

    #[test]
    fn sync_clocks_round_trip_including_retired_slots() {
        let mut sync = SyncClocks::new();
        sync.fork(ThreadId(0), ThreadId(1));
        sync.fork(ThreadId(0), ThreadId(2));
        sync.acquire(ThreadId(1), LockId(7));
        sync.release(ThreadId(1), LockId(7));
        sync.retire(ThreadId(2));
        let mut w = CkptWriter::new("sync");
        sync_write(&mut w, &sync);
        let blob = w.finish();
        let mut r = CkptReader::new(&blob, "sync").unwrap();
        let restored = sync_read(&mut r).unwrap();
        assert_eq!(restored.num_threads(), sync.num_threads());
        for t in 0..3 {
            assert_eq!(
                restored.peek_clock(ThreadId(t)),
                sync.peek_clock(ThreadId(t)),
                "thread {t}"
            );
        }
        assert_eq!(
            restored.lock_slots().collect::<Vec<_>>(),
            sync.lock_slots().collect::<Vec<_>>()
        );
    }
}
