//! The vector-clock lattice `VC = Tid → ℕ`.

use crace_model::ThreadId;
use std::cmp::Ordering;
use std::fmt;

/// A vector clock: a finitely-supported map from thread identifiers to local
/// timestamps (§3.2).
///
/// Entries not explicitly stored are zero, so the bottom element `⊥ = λτ.0`
/// is the empty vector. The type forms a lattice under the pointwise order:
///
/// * `c1 ⊑ c2` iff `c1(τ) ≤ c2(τ)` for all `τ` — see [`VectorClock::le`],
/// * `c1 ⊔ c2 = λτ. max(c1(τ), c2(τ))` — see [`VectorClock::join`],
/// * `inc_υ(c)` bumps component `υ` by one — see [`VectorClock::inc`].
///
/// Two events may happen in parallel (`e1 ∥ e2`) exactly when their clocks
/// are incomparable — see [`VectorClock::concurrent_with`].
///
/// Internally the clock is a dense `Vec<u64>` indexed by thread id; thread
/// ids are allocated densely by the runtime so this wastes no space, and the
/// hot operations (`le`, `join`) are simple slice loops. Trailing zeros are
/// kept trimmed so that equal clocks are representationally equal.
///
/// # Examples
///
/// ```
/// use crace_model::ThreadId;
/// use crace_vclock::VectorClock;
///
/// // The clocks from Fig. 3 of the paper.
/// let a1 = VectorClock::from_components([3, 0, 1]);
/// let a2 = VectorClock::from_components([2, 1, 0]);
/// let a3 = VectorClock::from_components([4, 1, 1]);
/// assert!(a1.concurrent_with(&a2));    // the commutativity race pair
/// assert!(a1.le(&a3) && a2.le(&a3));   // joinall orders both before size()
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct VectorClock {
    components: Vec<u64>,
}

impl VectorClock {
    /// Creates the bottom clock `⊥ = λτ.0`.
    pub fn new() -> VectorClock {
        VectorClock::default()
    }

    /// Creates a clock from explicit components, index `i` being thread `i`'s
    /// entry.
    ///
    /// # Examples
    ///
    /// ```
    /// use crace_model::ThreadId;
    /// use crace_vclock::VectorClock;
    /// let c = VectorClock::from_components([2, 1, 0]);
    /// assert_eq!(c.get(ThreadId(0)), 2);
    /// assert_eq!(c.get(ThreadId(7)), 0); // absent entries are zero
    /// ```
    pub fn from_components(components: impl IntoIterator<Item = u64>) -> VectorClock {
        let mut clock = VectorClock {
            components: components.into_iter().collect(),
        };
        clock.trim();
        clock
    }

    fn trim(&mut self) {
        while self.components.last() == Some(&0) {
            self.components.pop();
        }
    }

    /// The timestamp recorded for thread `tid` (zero if absent).
    #[inline]
    pub fn get(&self, tid: ThreadId) -> u64 {
        self.components.get(tid.index()).copied().unwrap_or(0)
    }

    /// Sets the timestamp of thread `tid` to `value`.
    pub fn set(&mut self, tid: ThreadId, value: u64) {
        let idx = tid.index();
        if idx >= self.components.len() {
            if value == 0 {
                return;
            }
            self.components.resize(idx + 1, 0);
        }
        self.components[idx] = value;
        self.trim();
    }

    /// Performs `inc_υ`: one timestep increment of component `tid`.
    pub fn inc(&mut self, tid: ThreadId) {
        let idx = tid.index();
        if idx >= self.components.len() {
            self.components.resize(idx + 1, 0);
        }
        self.components[idx] += 1;
    }

    /// Pointwise order `self ⊑ other`.
    pub fn le(&self, other: &VectorClock) -> bool {
        // Trailing components absent in `other` are zero, so any nonzero
        // surplus component of `self` breaks the order.
        self.components
            .iter()
            .enumerate()
            .all(|(i, &c)| c <= other.components.get(i).copied().unwrap_or(0))
    }

    /// Returns `true` iff the clocks are incomparable — the events they
    /// stamp may happen in parallel (`∥`).
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// The least upper bound `self ⊔ other`.
    pub fn join(&self, other: &VectorClock) -> VectorClock {
        let mut joined = self.clone();
        joined.join_in_place(other);
        joined
    }

    /// In-place join, for the hot path of Algorithm 1 phase 2.
    pub fn join_in_place(&mut self, other: &VectorClock) {
        if other.components.len() > self.components.len() {
            self.components.resize(other.components.len(), 0);
        }
        for (i, &c) in other.components.iter().enumerate() {
            if c > self.components[i] {
                self.components[i] = c;
            }
        }
    }

    /// The greatest lower bound `self ⊓ other` (pointwise minimum).
    ///
    /// The meet of a set of live thread clocks is the epoch-GC watermark:
    /// every future event of a live thread carries a clock that dominates
    /// it, so any access-point clock at or below the meet can never race
    /// again and its state may be retired.
    pub fn meet(&self, other: &VectorClock) -> VectorClock {
        let mut met = self.clone();
        met.meet_in_place(other);
        met
    }

    /// In-place meet, for folding many clocks into one watermark without
    /// reallocating.
    pub fn meet_in_place(&mut self, other: &VectorClock) {
        // Components beyond `other`'s support are zero there, so the
        // pointwise minimum truncates to the shorter support.
        if self.components.len() > other.components.len() {
            self.components.truncate(other.components.len());
        }
        for (i, c) in self.components.iter_mut().enumerate() {
            *c = (*c).min(other.components[i]);
        }
        self.trim();
    }

    /// Returns `true` iff this is the bottom clock `⊥`.
    pub fn is_bottom(&self) -> bool {
        self.components.is_empty()
    }

    /// Number of stored components (threads with a nonzero entry bound).
    pub fn dim(&self) -> usize {
        self.components.len()
    }
}

impl PartialOrd for VectorClock {
    /// The pointwise partial order; `None` for incomparable (concurrent)
    /// clocks.
    fn partial_cmp(&self, other: &VectorClock) -> Option<Ordering> {
        match (self.le(other), other.le(self)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn vc(components: &[u64]) -> VectorClock {
        VectorClock::from_components(components.iter().copied())
    }

    #[test]
    fn bottom_is_least() {
        let bot = VectorClock::new();
        assert!(bot.is_bottom());
        assert!(bot.le(&vc(&[1, 2, 3])));
        assert!(bot.le(&bot));
    }

    #[test]
    fn trailing_zeros_do_not_affect_equality() {
        assert_eq!(vc(&[1, 0, 0]), vc(&[1]));
        let mut c = vc(&[1, 5]);
        c.set(ThreadId(1), 0);
        assert_eq!(c, vc(&[1]));
    }

    #[test]
    fn inc_bumps_single_component() {
        let mut c = vc(&[2, 1]);
        c.inc(ThreadId(0));
        assert_eq!(c, vc(&[3, 1]));
        c.inc(ThreadId(4));
        assert_eq!(c.get(ThreadId(4)), 1);
    }

    #[test]
    fn fig3_clock_relationships() {
        let a1 = vc(&[3, 0, 1]);
        let a2 = vc(&[2, 1, 0]);
        let a3 = vc(&[4, 1, 1]);
        assert!(a1.concurrent_with(&a2));
        assert!(a2.concurrent_with(&a1));
        assert!(a1.le(&a3));
        assert!(a2.le(&a3));
        assert!(!a3.le(&a1));
        assert_eq!(a1.partial_cmp(&a2), None);
        assert_eq!(a1.partial_cmp(&a3), Some(Ordering::Less));
    }

    #[test]
    fn join_is_pointwise_max() {
        let a = vc(&[3, 0, 1]);
        let b = vc(&[2, 1]);
        assert_eq!(a.join(&b), vc(&[3, 1, 1]));
        assert_eq!(b.join(&a), vc(&[3, 1, 1]));
    }

    #[test]
    fn join_in_place_grows_dimension() {
        let mut a = vc(&[1]);
        a.join_in_place(&vc(&[0, 0, 2]));
        assert_eq!(a, vc(&[1, 0, 2]));
        assert_eq!(a.dim(), 3);
    }

    #[test]
    fn display_uses_angle_brackets() {
        assert_eq!(vc(&[3, 0, 1]).to_string(), "⟨3, 0, 1⟩");
        assert_eq!(VectorClock::new().to_string(), "⟨⟩");
    }

    // Randomized lattice-law checks in the seeded-StdRng style of
    // crates/core/tests/random_formulas.rs. Small dimensions/values make
    // incomparable, equal and ordered pairs all common.
    fn random_clock(rng: &mut StdRng) -> VectorClock {
        let dim = rng.gen_range(0..5usize);
        VectorClock::from_components((0..dim).map(|_| rng.gen_range(0u64..6)))
    }

    #[test]
    fn join_is_least_upper_bound() {
        let mut rng = StdRng::seed_from_u64(0xC10C);
        for _ in 0..2_000 {
            let (a, b) = (random_clock(&mut rng), random_clock(&mut rng));
            let j = a.join(&b);
            assert!(
                a.le(&j) && b.le(&j),
                "{a} ⊔ {b} = {j} is not an upper bound"
            );
            // Least: every component of the join comes from a or b.
            for i in 0..j.dim() {
                let t = ThreadId(i as u32);
                assert_eq!(j.get(t), a.get(t).max(b.get(t)));
            }
        }
    }

    #[test]
    fn meet_is_greatest_lower_bound() {
        let mut rng = StdRng::seed_from_u64(0x3EE7);
        for _ in 0..2_000 {
            let (a, b) = (random_clock(&mut rng), random_clock(&mut rng));
            let m = a.meet(&b);
            assert!(m.le(&a) && m.le(&b), "{a} ⊓ {b} = {m} is not a lower bound");
            // Greatest: every component of the meet comes from a or b.
            for i in 0..a.dim().max(b.dim()) {
                let t = ThreadId(i as u32);
                assert_eq!(m.get(t), a.get(t).min(b.get(t)));
            }
        }
    }

    #[test]
    fn meet_commutative_associative_absorptive() {
        let mut rng = StdRng::seed_from_u64(0xAB50);
        for _ in 0..2_000 {
            let (a, b, c) = (
                random_clock(&mut rng),
                random_clock(&mut rng),
                random_clock(&mut rng),
            );
            assert_eq!(a.meet(&b), b.meet(&a));
            assert_eq!(a.meet(&b).meet(&c), a.meet(&b.meet(&c)));
            assert_eq!(a.meet(&a), a);
            // Absorption ties meet and join into one lattice.
            assert_eq!(a.meet(&a.join(&b)), a);
            assert_eq!(a.join(&a.meet(&b)), a);
        }
    }

    #[test]
    fn meet_with_bottom_is_bottom() {
        let a = vc(&[3, 1, 4]);
        assert!(a.meet(&VectorClock::new()).is_bottom());
        assert!(VectorClock::new().meet(&a).is_bottom());
    }

    #[test]
    fn join_commutative_associative_idempotent() {
        let mut rng = StdRng::seed_from_u64(0x10B);
        for _ in 0..2_000 {
            let (a, b, c) = (
                random_clock(&mut rng),
                random_clock(&mut rng),
                random_clock(&mut rng),
            );
            assert_eq!(a.join(&b), b.join(&a));
            assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
            assert_eq!(a.join(&a), a);
        }
    }

    #[test]
    fn order_is_reflexive_and_antisymmetric() {
        let mut rng = StdRng::seed_from_u64(0x0D0);
        for _ in 0..2_000 {
            let (a, b) = (random_clock(&mut rng), random_clock(&mut rng));
            assert!(a.le(&a));
            if a.le(&b) && b.le(&a) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn order_is_transitive() {
        let mut rng = StdRng::seed_from_u64(0x7A5);
        for _ in 0..5_000 {
            let (a, b, c) = (
                random_clock(&mut rng),
                random_clock(&mut rng),
                random_clock(&mut rng),
            );
            if a.le(&b) && b.le(&c) {
                assert!(a.le(&c), "{a} ⊑ {b} ⊑ {c} but not {a} ⊑ {c}");
            }
        }
    }

    #[test]
    fn inc_strictly_increases() {
        let mut rng = StdRng::seed_from_u64(0x14C);
        for _ in 0..2_000 {
            let mut a = random_clock(&mut rng);
            let t = rng.gen_range(0u32..5);
            let before = a.clone();
            a.inc(ThreadId(t));
            assert!(before.le(&a));
            assert!(!a.le(&before));
        }
    }

    #[test]
    fn le_agrees_with_partial_cmp() {
        let mut rng = StdRng::seed_from_u64(0x1E);
        for _ in 0..2_000 {
            let (a, b) = (random_clock(&mut rng), random_clock(&mut rng));
            let le = a.le(&b);
            let cmp = a.partial_cmp(&b);
            assert_eq!(
                le,
                matches!(cmp, Some(Ordering::Less) | Some(Ordering::Equal))
            );
        }
    }
}
