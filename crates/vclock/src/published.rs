//! Sharded, snapshot-published synchronization clocks for online
//! detectors.

use crate::VectorClock;
use crace_model::{Event, LockId, ThreadId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Number of shards for the thread and lock maps. A power of two ≥ any
/// plausible hardware concurrency, so threads with distinct ids virtually
/// never contend on a shard lock.
const SHARDS: usize = 64;

/// One thread's published clock: an [`Arc`] snapshot swapped out whole on
/// every synchronization event.
struct ThreadSlot {
    clock: RwLock<Arc<VectorClock>>,
}

/// The Table 1 synchronization state (`T : Tid → VC`, `L : Lock → VC`)
/// engineered so that *reading a thread's own clock* — the only
/// synchronization query on an action event — touches no process-global
/// lock.
///
/// [`crate::SyncClocks`] is the textbook single-owner version; putting it
/// behind one `RwLock` (as the seed's `Rd2` did) makes every action event
/// of every thread acquire the same global lock and **deep-copy** the
/// clock out of it. `PublishedClocks` instead:
///
/// * shards the thread map by `tid % 64`, so a clock read takes a shard
///   read lock shared with (essentially) no other thread,
/// * stores each clock as an `Arc<VectorClock>` snapshot, so
///   [`PublishedClocks::clock`] is a pointer clone, not a vector copy,
/// * confines writes to synchronization events (fork/join/acquire/
///   release), which swap in a freshly built snapshot under the slot's own
///   lock.
///
/// # Consistency contract
///
/// The semantics are exactly [`crate::SyncClocks`]'s (the unit tests here
/// replay random event sequences through both and compare every clock).
/// Concurrent use is sound under the discipline real instrumented programs
/// obey: the events that *write* thread `τ`'s clock are issued by `τ`
/// itself (acquire/release, forking a child) or strictly outside its
/// lifetime (the parent forks `τ` before it starts; joins `τ` after it
/// ends), so per-thread writes are never concurrent with each other.
/// Readers always observe some complete snapshot because snapshots are
/// swapped atomically behind the slot lock.
///
/// # Examples
///
/// ```
/// use crace_model::ThreadId;
/// use crace_vclock::PublishedClocks;
///
/// let sync = PublishedClocks::new();
/// let (main, worker) = (ThreadId(0), ThreadId(1));
/// sync.fork(main, worker);
/// let child = sync.clock(worker);
/// assert!(child.concurrent_with(&sync.clock(main)));
/// sync.join(main, worker);
/// assert!(child.le(&sync.clock(main)));
/// ```
pub struct PublishedClocks {
    threads: [RwLock<HashMap<ThreadId, Arc<ThreadSlot>>>; SHARDS],
    locks: [RwLock<HashMap<LockId, Arc<VectorClock>>>; SHARDS],
}

impl PublishedClocks {
    /// Creates the initial state: every clock at `⊥`, threads lazily
    /// initialized on first use exactly like [`crate::SyncClocks`].
    pub fn new() -> PublishedClocks {
        PublishedClocks {
            threads: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            locks: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }

    fn thread_shard(&self, tid: ThreadId) -> &RwLock<HashMap<ThreadId, Arc<ThreadSlot>>> {
        &self.threads[tid.index() % SHARDS]
    }

    fn lock_shard(&self, lock: LockId) -> &RwLock<HashMap<LockId, Arc<VectorClock>>> {
        &self.locks[(lock.0 as usize) % SHARDS]
    }

    /// The slot of `tid`, created with the fresh-thread clock `{τ ↦ 1}` on
    /// first sight (the lazy initialization of [`crate::SyncClocks`]).
    fn slot(&self, tid: ThreadId) -> Arc<ThreadSlot> {
        if let Some(slot) = self.thread_shard(tid).read().get(&tid) {
            return Arc::clone(slot);
        }
        let mut shard = self.thread_shard(tid).write();
        Arc::clone(shard.entry(tid).or_insert_with(|| {
            let mut clock = VectorClock::new();
            clock.inc(tid);
            Arc::new(ThreadSlot {
                clock: RwLock::new(Arc::new(clock)),
            })
        }))
    }

    /// Publishes `clock` as `T(tid)`, creating the slot if needed.
    fn publish(&self, tid: ThreadId, clock: VectorClock) {
        let clock = Arc::new(clock);
        if let Some(slot) = self.thread_shard(tid).read().get(&tid) {
            *slot.clock.write() = clock;
            return;
        }
        let mut shard = self.thread_shard(tid).write();
        match shard.entry(tid) {
            std::collections::hash_map::Entry::Occupied(e) => {
                *e.get().clock.write() = clock;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Arc::new(ThreadSlot {
                    clock: RwLock::new(clock),
                }));
            }
        }
    }

    /// The current clock `T(tid)` as a shared snapshot — the clock stamped
    /// onto action events (`vc(e) ← T(τ)`, last row of Table 1).
    ///
    /// This is the hot-path read: one shard read lock, one slot read lock,
    /// one `Arc` clone. No vector is copied and no lock shared by all
    /// threads is taken.
    pub fn clock(&self, tid: ThreadId) -> Arc<VectorClock> {
        let slot = self.slot(tid);
        let snapshot = slot.clock.read();
        Arc::clone(&snapshot)
    }

    /// `τ : fork(u)` — `T(u) ← inc_u(T(τ)); T(τ) ← inc_τ(T(τ))`.
    pub fn fork(&self, parent: ThreadId, child: ThreadId) {
        let slot = self.slot(parent);
        let parent_clock = Arc::clone(&slot.clock.read());
        let mut child_clock = (*parent_clock).clone();
        child_clock.inc(child);
        self.publish(child, child_clock);
        let mut bumped = (*parent_clock).clone();
        bumped.inc(parent);
        *slot.clock.write() = Arc::new(bumped);
    }

    /// `τ : join(u)` — `T(τ) ← T(τ) ⊔ T(u)`.
    pub fn join(&self, parent: ThreadId, child: ThreadId) {
        let child_clock = self.clock(child);
        let slot = self.slot(parent);
        let mut joined = (**slot.clock.read()).clone();
        joined.join_in_place(&child_clock);
        *slot.clock.write() = Arc::new(joined);
    }

    /// `τ : acq(l)` — `T(τ) ← T(τ) ⊔ L(l)`.
    pub fn acquire(&self, tid: ThreadId, lock: LockId) {
        let slot = self.slot(tid);
        let lock_clock = self.lock_shard(lock).read().get(&lock).map(Arc::clone);
        if let Some(lock_clock) = lock_clock {
            let mut joined = (**slot.clock.read()).clone();
            joined.join_in_place(&lock_clock);
            *slot.clock.write() = Arc::new(joined);
        }
    }

    /// `τ : rel(l)` — `L(l) ← T(τ); T(τ) ← inc_τ(T(τ))`.
    ///
    /// The lock clock is published as the same `Arc` snapshot the thread
    /// held — no copy.
    pub fn release(&self, tid: ThreadId, lock: LockId) {
        let slot = self.slot(tid);
        let snapshot = Arc::clone(&slot.clock.read());
        self.lock_shard(lock).write().insert(lock, snapshot);
        let mut bumped = (**slot.clock.read()).clone();
        bumped.inc(tid);
        *slot.clock.write() = Arc::new(bumped);
    }

    /// Applies one synchronization event; non-synchronization events are
    /// ignored (their handling is detector-specific).
    pub fn apply(&self, event: &Event) {
        match *event {
            Event::Fork { parent, child } => self.fork(parent, child),
            Event::Join { parent, child } => self.join(parent, child),
            Event::Acquire { tid, lock } => self.acquire(tid, lock),
            Event::Release { tid, lock } => self.release(tid, lock),
            Event::Action { .. } | Event::Read { .. } | Event::Write { .. } => {}
        }
    }

    /// Retires a dead thread's clock: removes its slot entirely.
    ///
    /// The abandonment analogue of [`crate::SyncClocks::retire`]: no
    /// happens-before edges are introduced, the slot is simply dropped.
    /// Snapshots already handed out by [`PublishedClocks::clock`] stay
    /// valid (they are `Arc`s); a later event naming the retired tid
    /// would lazily reinitialize it as a fresh thread, so callers shed
    /// such events.
    pub fn retire(&self, tid: ThreadId) {
        self.thread_shard(tid).write().remove(&tid);
    }

    /// Number of threads observed so far.
    pub fn num_threads(&self) -> usize {
        self.threads.iter().map(|s| s.read().len()).sum()
    }

    /// Every initialized thread slot as a `(tid, clock)` snapshot, in
    /// tid order, for checkpoint serialization.
    pub fn thread_snapshots(&self) -> Vec<(ThreadId, VectorClock)> {
        let mut out = Vec::new();
        for shard in &self.threads {
            for (tid, slot) in shard.read().iter() {
                out.push((*tid, (**slot.clock.read()).clone()));
            }
        }
        out.sort_by_key(|(t, _)| t.0);
        out
    }

    /// Every lock clock as a `(lock, clock)` snapshot, in lock order,
    /// for checkpoint serialization.
    pub fn lock_snapshots(&self) -> Vec<(LockId, VectorClock)> {
        let mut out = Vec::new();
        for shard in &self.locks {
            for (lock, clock) in shard.read().iter() {
                out.push((*lock, (**clock).clone()));
            }
        }
        out.sort_by_key(|(l, _)| l.0);
        out
    }

    /// Publishes a restored thread clock verbatim (checkpoint import;
    /// bypasses the fresh-thread lazy initialization).
    pub fn import_thread(&self, tid: ThreadId, clock: VectorClock) {
        self.publish(tid, clock);
    }

    /// Installs a restored lock clock verbatim (checkpoint import).
    pub fn import_lock(&self, lock: LockId, clock: VectorClock) {
        self.lock_shard(lock).write().insert(lock, Arc::new(clock));
    }
}

impl Default for PublishedClocks {
    fn default() -> PublishedClocks {
        PublishedClocks::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyncClocks;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const MAIN: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    #[test]
    fn fresh_threads_are_concurrent() {
        let s = PublishedClocks::new();
        assert!(s.clock(T1).concurrent_with(&s.clock(T2)));
    }

    #[test]
    fn fork_join_mirror_sync_clocks() {
        let s = PublishedClocks::new();
        let before_fork = s.clock(MAIN);
        s.fork(MAIN, T1);
        assert!(before_fork.le(&s.clock(T1)));
        assert!(s.clock(MAIN).concurrent_with(&s.clock(T1)));
        let child_work = s.clock(T1);
        s.join(MAIN, T1);
        assert!(child_work.le(&s.clock(MAIN)));
    }

    #[test]
    fn lock_release_acquire_creates_order() {
        let s = PublishedClocks::new();
        let lock = LockId(7);
        s.fork(MAIN, T1);
        s.fork(MAIN, T2);
        s.acquire(T1, lock);
        let critical = s.clock(T1);
        s.release(T1, lock);
        s.acquire(T2, lock);
        assert!(critical.le(&s.clock(T2)));
        // The releasing thread's post-release events are not ordered.
        assert!(!s.clock(T1).le(&s.clock(T2)));
    }

    #[test]
    fn acquire_of_untouched_lock_is_noop() {
        let s = PublishedClocks::new();
        let before = s.clock(T1);
        s.acquire(T1, LockId(99));
        assert_eq!(*before, *s.clock(T1));
    }

    #[test]
    fn clock_reads_share_one_snapshot() {
        let s = PublishedClocks::new();
        let a = s.clock(T1);
        let b = s.clock(T1);
        // Hot-path reads alias the same allocation — no deep copies.
        assert!(Arc::ptr_eq(&a, &b));
        s.release(T1, LockId(0));
        assert!(!Arc::ptr_eq(&a, &s.clock(T1)));
    }

    #[test]
    fn shard_collisions_are_harmless() {
        // Thread ids 1 and 65 share a shard (65 % 64 == 1).
        let s = PublishedClocks::new();
        let far = ThreadId(65);
        s.fork(MAIN, T1);
        s.fork(MAIN, far);
        assert!(s.clock(T1).concurrent_with(&s.clock(far)));
        assert_eq!(s.num_threads(), 3);
    }

    /// Replays random well-formed event sequences through both
    /// implementations and demands identical clocks after every step.
    #[test]
    fn random_schedules_agree_with_sync_clocks() {
        for seed in 0..50u64 {
            let mut rng = StdRng::seed_from_u64(0x5EED ^ seed);
            let reference = &mut SyncClocks::new();
            let published = PublishedClocks::new();
            let mut live = vec![MAIN];
            let mut next_tid = 1u32;
            for _ in 0..120 {
                let actor = live[rng.gen_range(0..live.len())];
                match rng.gen_range(0u32..4) {
                    0 if live.len() < 6 => {
                        let child = ThreadId(next_tid);
                        next_tid += 1;
                        reference.fork(actor, child);
                        published.fork(actor, child);
                        live.push(child);
                    }
                    1 if live.len() > 1 => {
                        // Join a random other live thread and retire it so
                        // no later events violate well-formedness.
                        let idx = rng.gen_range(0..live.len());
                        let child = live[idx];
                        if child != actor {
                            reference.join(actor, child);
                            published.join(actor, child);
                            live.remove(idx);
                        }
                    }
                    2 => {
                        let lock = LockId(rng.gen_range(0u64..3));
                        reference.acquire(actor, lock);
                        published.acquire(actor, lock);
                        reference.release(actor, lock);
                        published.release(actor, lock);
                    }
                    _ => {
                        // An "action": just compare the stamped clock.
                    }
                }
                for &tid in &live {
                    assert_eq!(
                        reference.clock(tid),
                        &*published.clock(tid),
                        "seed {seed}, thread {tid}"
                    );
                }
            }
        }
    }

    #[test]
    fn retire_drops_slot_but_keeps_snapshots_valid() {
        let s = PublishedClocks::new();
        s.fork(MAIN, T1);
        let snapshot = s.clock(T1);
        let main_before = s.clock(MAIN);
        s.retire(T1);
        // No happens-before edges introduced; old snapshots stay usable.
        assert_eq!(*main_before, *s.clock(MAIN));
        assert!(snapshot.get(T1) >= 1);
        assert_eq!(s.num_threads(), 1);
        // Retiring an unseen thread is a no-op.
        s.retire(ThreadId(99));
    }

    #[test]
    fn apply_dispatches_sync_events_only() {
        let s = PublishedClocks::new();
        s.apply(&Event::Fork {
            parent: MAIN,
            child: T1,
        });
        s.apply(&Event::Read {
            tid: T2,
            loc: crace_model::LocId(0),
        });
        s.apply(&Event::Join {
            parent: MAIN,
            child: T1,
        });
        let child = s.clock(T1);
        assert!(child.le(&s.clock(MAIN)));
    }
}
