//! Vector clocks and happens-before machinery (§3.2 of the paper).
//!
//! This crate provides the three pieces of temporal bookkeeping the
//! detectors share:
//!
//! * [`VectorClock`] — the lattice `VC = Tid → ℕ` with pointwise order `⊑`,
//!   join `⊔`, bottom `⊥` and the per-component increment `inc_υ`,
//! * [`Epoch`] — FastTrack's compressed `c@t` clocks (one component plus the
//!   thread that owns it), used by the low-level baseline,
//! * [`SyncClocks`] — the standard Table 1 treatment of
//!   fork/join/acquire/release events, maintaining the thread-clock map
//!   `T : Tid → VC` and the lock-clock map `L : Lock → VC`,
//! * [`AdaptiveClock`] — a per-access-point clock that stays an epoch
//!   while accesses are totally ordered and promotes to a full vector on
//!   the first concurrent access, with [`ClockStats`] counting how often
//!   the compressed path was taken,
//! * [`PublishedClocks`] — the Table 1 state sharded for concurrent
//!   detectors: reading a thread's clock on the action hot path takes no
//!   process-global lock and copies no vector.
//!
//! # Examples
//!
//! ```
//! use crace_model::ThreadId;
//! use crace_vclock::VectorClock;
//!
//! let mut a = VectorClock::new();
//! a.inc(ThreadId(0));
//! let mut b = VectorClock::new();
//! b.inc(ThreadId(1));
//! // Two events on different threads with no synchronization in between
//! // are concurrent: their clocks are incomparable.
//! assert!(a.concurrent_with(&b));
//! assert!(a.le(&a.join(&b)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
pub mod ckpt;
mod clock;
mod epoch;
mod published;
mod sync;

pub use adaptive::{AdaptiveClock, ClockStats, Observation};
pub use ckpt::{CkptError, CkptReader, CkptWriter};
pub use clock::VectorClock;
pub use epoch::Epoch;
pub use published::PublishedClocks;
pub use sync::SyncClocks;
