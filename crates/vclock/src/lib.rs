//! Vector clocks and happens-before machinery (§3.2 of the paper).
//!
//! This crate provides the three pieces of temporal bookkeeping the
//! detectors share:
//!
//! * [`VectorClock`] — the lattice `VC = Tid → ℕ` with pointwise order `⊑`,
//!   join `⊔`, bottom `⊥` and the per-component increment `inc_υ`,
//! * [`Epoch`] — FastTrack's compressed `c@t` clocks (one component plus the
//!   thread that owns it), used by the low-level baseline,
//! * [`SyncClocks`] — the standard Table 1 treatment of
//!   fork/join/acquire/release events, maintaining the thread-clock map
//!   `T : Tid → VC` and the lock-clock map `L : Lock → VC`.
//!
//! # Examples
//!
//! ```
//! use crace_model::ThreadId;
//! use crace_vclock::VectorClock;
//!
//! let mut a = VectorClock::new();
//! a.inc(ThreadId(0));
//! let mut b = VectorClock::new();
//! b.inc(ThreadId(1));
//! // Two events on different threads with no synchronization in between
//! // are concurrent: their clocks are incomparable.
//! assert!(a.concurrent_with(&b));
//! assert!(a.le(&a.join(&b)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod epoch;
mod sync;

pub use clock::VectorClock;
pub use epoch::Epoch;
pub use sync::SyncClocks;
