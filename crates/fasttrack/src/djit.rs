//! DJIT⁺ — the full-vector-clock read-write race detector FastTrack was
//! designed to improve on (Flanagan & Freund compare against it in the
//! PLDI'09 paper).
//!
//! Per memory location DJIT⁺ keeps a *read vector clock* and a *write
//! vector clock*, always full-width. Every access costs O(#threads)
//! instead of FastTrack's O(1) common case. The two detectors report races
//! on exactly the same prefixes (first race per location), which this
//! crate's tests exploit: DJIT⁺ serves as an executable specification for
//! FastTrack, the same way the quadratic oracle specifies RD2.

use crate::AccessRace;
use crace_model::ThreadId;
use crace_vclock::VectorClock;

/// Per-location DJIT⁺ shadow state: full read and write vector clocks.
///
/// # Examples
///
/// ```
/// use crace_fasttrack::DjitVar;
/// use crace_model::ThreadId;
/// use crace_vclock::VectorClock;
///
/// let mut var = DjitVar::new();
/// let t0 = VectorClock::from_components([1, 0]);
/// let t1 = VectorClock::from_components([0, 1]);
/// assert!(var.write(ThreadId(0), &t0).is_none());
/// assert!(var.write(ThreadId(1), &t1).is_some()); // unordered writes
/// ```
#[derive(Clone, Debug, Default)]
pub struct DjitVar {
    reads: VectorClock,
    writes: VectorClock,
}

impl DjitVar {
    /// Fresh state: never accessed.
    pub fn new() -> DjitVar {
        DjitVar::default()
    }

    /// Processes a read by `tid` at `clock`; reports a race if some
    /// previous write is unordered with it.
    pub fn read(&mut self, tid: ThreadId, clock: &VectorClock) -> Option<AccessRace> {
        let race = if !self.writes.le(clock) {
            Some(AccessRace::WriteRead)
        } else {
            None
        };
        self.reads.set(tid, clock.get(tid));
        race
    }

    /// Processes a write by `tid` at `clock`; reports a race if some
    /// previous access is unordered with it.
    pub fn write(&mut self, tid: ThreadId, clock: &VectorClock) -> Option<AccessRace> {
        let race = if !self.writes.le(clock) {
            Some(AccessRace::WriteWrite)
        } else if !self.reads.le(clock) {
            Some(AccessRace::ReadWrite)
        } else {
            None
        };
        self.writes.set(tid, clock.get(tid));
        race
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarState;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn vc(c: &[u64]) -> VectorClock {
        VectorClock::from_components(c.iter().copied())
    }

    #[test]
    fn ordered_accesses_are_clean() {
        let mut v = DjitVar::new();
        assert!(v.write(ThreadId(0), &vc(&[1])).is_none());
        assert!(v.read(ThreadId(1), &vc(&[1, 1])).is_none());
        assert!(v.write(ThreadId(1), &vc(&[1, 2])).is_none());
    }

    #[test]
    fn unordered_write_write_races() {
        let mut v = DjitVar::new();
        v.write(ThreadId(0), &vc(&[1, 0]));
        assert_eq!(
            v.write(ThreadId(1), &vc(&[0, 1])),
            Some(AccessRace::WriteWrite)
        );
    }

    #[test]
    fn unordered_read_write_races() {
        let mut v = DjitVar::new();
        v.read(ThreadId(0), &vc(&[1, 0]));
        assert_eq!(
            v.write(ThreadId(1), &vc(&[0, 1])),
            Some(AccessRace::ReadWrite)
        );
    }

    #[test]
    fn concurrent_reads_are_clean() {
        let mut v = DjitVar::new();
        assert!(v.read(ThreadId(0), &vc(&[1, 0])).is_none());
        assert!(v.read(ThreadId(1), &vc(&[0, 1])).is_none());
        // A write after only one read races with the other.
        assert!(v.write(ThreadId(0), &vc(&[2, 0])).is_some());
    }

    /// FastTrack must agree with DJIT⁺ on whether each access races, for
    /// arbitrary (monotone per-thread) access sequences. This mirrors the
    /// FastTrack paper's correctness claim. We generate random clock
    /// interleavings of a handful of threads with random synchronization,
    /// replaying the identical access sequence into both detectors.
    #[test]
    fn fasttrack_agrees_with_djit_on_race_existence() {
        for seed in 0..200u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let threads = 3u32;
            // Per-thread current clocks, advanced by "synchronization".
            let mut clocks: Vec<VectorClock> = (0..threads)
                .map(|t| {
                    let mut c = VectorClock::new();
                    c.inc(ThreadId(t));
                    c
                })
                .collect();
            let mut ft = VarState::new();
            let mut dj = DjitVar::new();
            let mut ft_raced = false;
            let mut dj_raced = false;
            for _ in 0..24 {
                let t = rng.gen_range(0..threads) as usize;
                match rng.gen_range(0..4) {
                    // Synchronize: thread t observes thread u's clock (like
                    // acquiring a lock u just released).
                    0 => {
                        let u = rng.gen_range(0..threads) as usize;
                        let other = clocks[u].clone();
                        clocks[t].join_in_place(&other);
                        clocks[t].inc(ThreadId(t as u32));
                    }
                    1 => {
                        let c = clocks[t].clone();
                        ft_raced |= ft.write(ThreadId(t as u32), &c).is_some();
                        dj_raced |= dj.write(ThreadId(t as u32), &c).is_some();
                    }
                    _ => {
                        let c = clocks[t].clone();
                        ft_raced |= ft.read(ThreadId(t as u32), &c).is_some();
                        dj_raced |= dj.read(ThreadId(t as u32), &c).is_some();
                    }
                }
            }
            assert_eq!(ft_raced, dj_raced, "seed {seed}");
        }
    }
}
