//! FastTrack — the efficient happens-before data race detector of Flanagan
//! & Freund (PLDI'09), reimplemented as the low-level baseline for the
//! commutativity race evaluation (Table 2 of the PLDI'14 paper).
//!
//! FastTrack tracks, per memory location, the *epoch* `c@t` of the last
//! write and either the epoch of the last read or — once reads become
//! concurrent — a full read vector clock ("read-shared" mode). Because
//! accesses to a given location are almost always totally ordered, the
//! common case costs O(1) instead of O(#threads).
//!
//! Two entry points:
//!
//! * [`VarState`] — the per-location state machine, usable directly,
//! * [`FastTrack`] — an [`Analysis`] over event streams: synchronization
//!   events update the Table 1 clocks, [`Analysis::on_read`] /
//!   [`Analysis::on_write`] drive the per-location automaton, and
//!   [`Analysis::on_action`] is ignored (method invocations are invisible
//!   at this level; their internal reads/writes are what arrive here).
//!
//! # Examples
//!
//! ```
//! use crace_fasttrack::FastTrack;
//! use crace_model::{Analysis, LocId, ThreadId};
//!
//! let ft = FastTrack::new();
//! ft.on_fork(ThreadId(0), ThreadId(1));
//! ft.on_write(ThreadId(0), LocId(0x10));
//! ft.on_write(ThreadId(1), LocId(0x10)); // unordered write-write race
//! assert_eq!(ft.report().total(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod djit;
pub use djit::DjitVar;

use crace_model::{
    Action, Analysis, LocId, LockId, Provenance, RaceKind, RaceRecord, RaceReport, ThreadId,
};
use crace_vclock::{Epoch, SyncClocks, VectorClock};
use parking_lot::{Mutex, RwLock};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The read component of a location's shadow state: an epoch in the common
/// totally-ordered case, or a full vector clock once reads are concurrent.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ReadState {
    Epoch(Epoch),
    Shared(VectorClock),
}

/// The kind of access-pair a data race was detected on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessRace {
    /// A write concurrent with a previous write.
    WriteWrite,
    /// A read concurrent with a previous write.
    WriteRead,
    /// A write concurrent with a previous read.
    ReadWrite,
}

impl AccessRace {
    fn describe(self) -> &'static str {
        match self {
            AccessRace::WriteWrite => "write-write",
            AccessRace::WriteRead => "write-read",
            AccessRace::ReadWrite => "read-write",
        }
    }
}

/// Per-location FastTrack shadow state.
///
/// # Examples
///
/// ```
/// use crace_fasttrack::VarState;
/// use crace_model::ThreadId;
/// use crace_vclock::VectorClock;
///
/// let mut var = VarState::new();
/// let t0 = VectorClock::from_components([1, 0]);
/// let t1 = VectorClock::from_components([0, 1]);
/// assert!(var.write(ThreadId(0), &t0).is_none());
/// // Concurrent write from the other thread races.
/// assert!(var.write(ThreadId(1), &t1).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct VarState {
    write: Epoch,
    read: ReadState,
}

impl VarState {
    /// Fresh state: never read, never written.
    pub fn new() -> VarState {
        VarState {
            write: Epoch::NONE,
            read: ReadState::Epoch(Epoch::NONE),
        }
    }

    /// Processes a read by thread `tid` whose clock is `clock`. Returns the
    /// race kind if the read races with a previous write.
    pub fn read(&mut self, tid: ThreadId, clock: &VectorClock) -> Option<AccessRace> {
        let here = Epoch::of(tid, clock);
        // Same-epoch fast path (FastTrack rule [READ SAME EPOCH]).
        if self.read == ReadState::Epoch(here) {
            return None;
        }
        // Write-read check.
        let race = if !self.write.le_clock(clock) {
            Some(AccessRace::WriteRead)
        } else {
            None
        };
        match &mut self.read {
            ReadState::Epoch(prev) => {
                if prev.le_clock(clock) {
                    // [READ EXCLUSIVE]: the previous read happens before us.
                    self.read = ReadState::Epoch(here);
                } else {
                    // [READ SHARE]: reads become concurrent — inflate.
                    let mut vc = VectorClock::new();
                    vc.set(prev.tid(), prev.clock());
                    vc.set(tid, here.clock());
                    self.read = ReadState::Shared(vc);
                }
            }
            ReadState::Shared(vc) => {
                // [READ SHARED]: update our slot.
                vc.set(tid, here.clock());
            }
        }
        race
    }

    /// Processes a write by thread `tid` whose clock is `clock`. Returns
    /// the race kind if the write races with a previous access.
    pub fn write(&mut self, tid: ThreadId, clock: &VectorClock) -> Option<AccessRace> {
        let here = Epoch::of(tid, clock);
        // Same-epoch fast path ([WRITE SAME EPOCH]).
        if self.write == here {
            return None;
        }
        // Write-write check.
        if !self.write.le_clock(clock) {
            self.write = here;
            return Some(AccessRace::WriteWrite);
        }
        // Read-write check.
        let race = match &self.read {
            ReadState::Epoch(r) => {
                if !r.le_clock(clock) {
                    Some(AccessRace::ReadWrite)
                } else {
                    None
                }
            }
            ReadState::Shared(vc) => {
                if !vc.le(clock) {
                    Some(AccessRace::ReadWrite)
                } else {
                    None
                }
            }
        };
        // [WRITE SHARED] deflates the read state back to an epoch.
        if matches!(self.read, ReadState::Shared(_)) {
            self.read = ReadState::Epoch(Epoch::NONE);
        }
        self.write = here;
        race
    }

    /// Is the location currently in read-shared mode?
    pub fn is_read_shared(&self) -> bool {
        matches!(self.read, ReadState::Shared(_))
    }

    /// The read component as the clock string provenance reports.
    fn read_desc(&self) -> String {
        match &self.read {
            ReadState::Epoch(e) => e.to_string(),
            ReadState::Shared(vc) => vc.to_string(),
        }
    }
}

impl Default for VarState {
    fn default() -> VarState {
        VarState::new()
    }
}

const SHARDS: usize = 64;

/// The FastTrack detector as a thread-safe [`Analysis`].
///
/// Shadow-variable state is sharded by location hash so that accesses to
/// different locations rarely contend — the analogue of RoadRunner's
/// per-field shadow memory.
pub struct FastTrack {
    sync: RwLock<SyncClocks>,
    shards: Vec<Mutex<HashMap<LocId, VarState>>>,
    report: Mutex<RaceReport>,
    /// Collect race provenance (prior shadow state and both clocks) for
    /// sampled races. Off by default: it clones the shadow state of every
    /// access, which the overhead benchmarks must not pay.
    provenance: bool,
    /// Threads abandoned via [`Analysis::abandon_thread`]: retired clocks,
    /// later events naming them shed.
    abandoned: RwLock<HashSet<ThreadId>>,
    /// Fast-path guard: true iff `abandoned` is non-empty.
    has_abandoned: AtomicBool,
    /// Events shed because they named an abandoned thread.
    shed: AtomicU64,
}

impl FastTrack {
    /// Creates a detector with no shadowed locations.
    pub fn new() -> FastTrack {
        FastTrack {
            sync: RwLock::new(SyncClocks::new()),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            report: Mutex::new(RaceReport::new()),
            provenance: false,
            abandoned: RwLock::new(HashSet::new()),
            has_abandoned: AtomicBool::new(false),
            shed: AtomicU64::new(0),
        }
    }

    /// Creates a detector whose sampled races carry provenance: the
    /// access pair, the racing thread's clock, and the conflicting shadow
    /// component's clock at detection time.
    pub fn with_provenance() -> FastTrack {
        FastTrack {
            provenance: true,
            ..FastTrack::new()
        }
    }

    fn shard(&self, loc: LocId) -> &Mutex<HashMap<LocId, VarState>> {
        let mut h = DefaultHasher::new();
        loc.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// True iff an event naming any of `tids` must be shed because that
    /// thread was abandoned. One relaxed load in the fault-free case.
    fn sheds(&self, tids: &[ThreadId]) -> bool {
        if !self.has_abandoned.load(Ordering::Relaxed) {
            return false;
        }
        let abandoned = self.abandoned.read();
        if tids.iter().any(|t| abandoned.contains(t)) {
            self.shed.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Number of events shed because they named an abandoned thread.
    pub fn events_shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    fn clock_of(&self, tid: ThreadId) -> VectorClock {
        if let Some(c) = self.sync.read().peek_clock(tid) {
            return c.clone();
        }
        self.sync.write().clock(tid).clone()
    }

    fn access(&self, tid: ThreadId, loc: LocId, is_write: bool) {
        let clock = self.clock_of(tid);
        let (race, prior) = {
            let mut shard = self.shard(loc).lock();
            let var = shard.entry(loc).or_default();
            // The update overwrites the conflicting component, so snapshot
            // the state first — only in provenance mode.
            let prior = self.provenance.then(|| var.clone());
            let race = if is_write {
                var.write(tid, &clock)
            } else {
                var.read(tid, &clock)
            };
            (race, prior)
        };
        if let Some(kind) = race {
            self.report
                .lock()
                .record_with(RaceKind::ReadWrite { loc }, || RaceRecord {
                    kind: RaceKind::ReadWrite { loc },
                    tid,
                    action: None,
                    detail: kind.describe().to_string(),
                    provenance: prior.map(|p| {
                        let this = if is_write { "write" } else { "read" };
                        let (conflicting, point_clock) = match kind {
                            AccessRace::WriteWrite | AccessRace::WriteRead => {
                                ("write".to_string(), p.write.to_string())
                            }
                            AccessRace::ReadWrite => ("read".to_string(), p.read_desc()),
                        };
                        Box::new(Provenance {
                            current: format!("{tid}: {this} {loc}"),
                            prior: None,
                            touched: format!("{this}:{loc}"),
                            conflicting: format!("{conflicting}:{loc}"),
                            thread_clock: clock.to_string(),
                            point_clock,
                            recent: Vec::new(),
                        })
                    }),
                });
        }
    }
}

impl Default for FastTrack {
    fn default() -> FastTrack {
        FastTrack::new()
    }
}

impl crace_core::Checkpoint for FastTrack {
    fn checkpoint_kind(&self) -> &'static str {
        "fasttrack"
    }

    /// Serializes the complete detector state: the Table 1 clocks, the
    /// abandonment set, the race report, and every shadowed location's
    /// `VarState` (`var <loc> <write-epoch> (re <read-epoch> | rv <vc>)`,
    /// sorted by location for reproducible checkpoints).
    fn checkpoint(&self) -> String {
        use crace_core::checkpoint as ck;
        use crace_vclock::ckpt::vc_word;
        let mut w = crace_vclock::CkptWriter::new(self.checkpoint_kind());
        w.rec(&format!(
            "meta {} {}",
            u8::from(self.provenance),
            self.shed.load(Ordering::Relaxed)
        ));
        ck::sync_write(&mut w, &self.sync.read());
        let mut abandoned: Vec<u32> = self.abandoned.read().iter().map(|t| t.0).collect();
        abandoned.sort_unstable();
        let mut words = vec!["abandoned".to_string(), abandoned.len().to_string()];
        words.extend(abandoned.iter().map(u32::to_string));
        w.rec(&words.join(" "));
        ck::report_write(&mut w, "", &self.report.lock());
        let mut vars: Vec<(LocId, VarState)> = Vec::new();
        for shard in &self.shards {
            for (loc, var) in shard.lock().iter() {
                vars.push((*loc, var.clone()));
            }
        }
        vars.sort_by_key(|(loc, _)| loc.0);
        for (loc, var) in vars {
            let read = match &var.read {
                ReadState::Epoch(e) => format!("re {}@{}", e.clock(), e.tid().0),
                ReadState::Shared(vc) => format!("rv {}", vc_word(vc)),
            };
            w.rec(&format!(
                "var {} {}@{} {read}",
                loc.0,
                var.write.clock(),
                var.write.tid().0
            ));
        }
        w.finish()
    }

    fn restore(
        &self,
        text: &str,
        _resolve: &crace_core::SpecResolver<'_>,
    ) -> Result<(), crace_vclock::CkptError> {
        use crace_core::checkpoint as ck;
        use crace_vclock::ckpt::vc_parse;
        use crace_vclock::CkptError;
        fn epoch_parse(word: &str, line: usize) -> Result<Epoch, CkptError> {
            let (clock, tid) = word
                .split_once('@')
                .ok_or_else(|| CkptError::at(line, format!("bad epoch `{word}`")))?;
            let clock: u64 = clock
                .parse()
                .map_err(|_| CkptError::at(line, format!("bad epoch clock `{clock}`")))?;
            let tid: u32 = tid
                .parse()
                .map_err(|_| CkptError::at(line, format!("bad epoch tid `{tid}`")))?;
            Ok(Epoch::new(ThreadId(tid), clock))
        }
        let mut r = crace_vclock::CkptReader::new(text, self.checkpoint_kind())?;
        let head = r
            .next_rec()
            .ok_or_else(|| CkptError::at(0, "checkpoint has no `meta` record"))?;
        if head.tag() != "meta" {
            return Err(CkptError::at(
                head.line,
                format!("expected `meta`, found `{}`", head.tag()),
            ));
        }
        let provenance = match head.word(1)? {
            "0" => false,
            "1" => true,
            other => {
                return Err(CkptError::at(
                    head.line,
                    format!("bad provenance flag `{other}`"),
                ))
            }
        };
        if provenance != self.provenance {
            return Err(CkptError::at(
                head.line,
                format!(
                    "checkpoint provenance mode ({provenance:?}) does not match this detector's \
                     ({:?}) — restore into a detector with the same configuration",
                    self.provenance
                ),
            ));
        }
        self.shed.store(head.num(2)?, Ordering::Relaxed);
        *self.sync.write() = ck::sync_read(&mut r)?;
        let rec = r
            .next_rec()
            .ok_or_else(|| CkptError::at(0, "checkpoint ends where `abandoned` was expected"))?;
        if rec.tag() != "abandoned" {
            return Err(CkptError::at(
                rec.line,
                format!("expected `abandoned`, found `{}`", rec.tag()),
            ));
        }
        let n: usize = rec.num(1)?;
        let mut abandoned = HashSet::with_capacity(n);
        for i in 0..n {
            abandoned.insert(ThreadId(rec.num(2 + i)?));
        }
        self.has_abandoned
            .store(!abandoned.is_empty(), Ordering::Relaxed);
        *self.abandoned.write() = abandoned;
        *self.report.lock() = ck::report_read(&mut r, "")?;
        for shard in &self.shards {
            shard.lock().clear();
        }
        while let Some(rec) = r.next_rec() {
            if rec.tag() != "var" {
                return Err(CkptError::at(
                    rec.line,
                    format!("expected `var`, found `{}`", rec.tag()),
                ));
            }
            let loc = LocId(rec.num(1)?);
            let write = epoch_parse(rec.word(2)?, rec.line)?;
            let read = match rec.word(3)? {
                "re" => ReadState::Epoch(epoch_parse(rec.word(4)?, rec.line)?),
                "rv" => ReadState::Shared(vc_parse(rec.word(4)?, rec.line)?),
                other => {
                    return Err(CkptError::at(
                        rec.line,
                        format!("bad read-state marker `{other}`"),
                    ))
                }
            };
            self.shard(loc).lock().insert(loc, VarState { write, read });
        }
        Ok(())
    }
}

impl Analysis for FastTrack {
    fn name(&self) -> &str {
        "fasttrack"
    }

    fn on_fork(&self, parent: ThreadId, child: ThreadId) {
        if self.sheds(&[parent, child]) {
            return;
        }
        self.sync.write().fork(parent, child);
    }

    fn on_join(&self, parent: ThreadId, child: ThreadId) {
        // Joining an abandoned child is shed: its clock was retired, so
        // the join would fold a lazily reinitialized fresh clock.
        if self.sheds(&[parent, child]) {
            return;
        }
        self.sync.write().join(parent, child);
    }

    fn on_acquire(&self, tid: ThreadId, lock: LockId) {
        if self.sheds(&[tid]) {
            return;
        }
        self.sync.write().acquire(tid, lock);
    }

    fn on_release(&self, tid: ThreadId, lock: LockId) {
        if self.sheds(&[tid]) {
            return;
        }
        self.sync.write().release(tid, lock);
    }

    /// Method invocations are invisible to a low-level detector; their
    /// constituent reads/writes arrive via [`Analysis::on_read`] /
    /// [`Analysis::on_write`].
    fn on_action(&self, _tid: ThreadId, _action: &Action) {}

    fn on_read(&self, tid: ThreadId, loc: LocId) {
        if self.sheds(&[tid]) {
            return;
        }
        self.access(tid, loc, false);
    }

    fn on_write(&self, tid: ThreadId, loc: LocId) {
        if self.sheds(&[tid]) {
            return;
        }
        self.access(tid, loc, true);
    }

    /// Finalizes a dead thread: retires its sync clock and sheds all
    /// later events naming it. No happens-before edges are introduced and
    /// the report over the delivered prefix is untouched.
    fn abandon_thread(&self, tid: ThreadId) {
        self.abandoned.write().insert(tid);
        self.has_abandoned.store(true, Ordering::Relaxed);
        self.sync.write().retire(tid);
    }

    fn report(&self) -> RaceReport {
        self.report.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_model::{replay, Event, Trace};

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);
    const X: LocId = LocId(1);

    fn vc(c: &[u64]) -> VectorClock {
        VectorClock::from_components(c.iter().copied())
    }

    // ---- VarState unit tests ----

    #[test]
    fn sequential_accesses_never_race() {
        let mut v = VarState::new();
        assert!(v.write(T0, &vc(&[1])).is_none());
        assert!(v.read(T0, &vc(&[1])).is_none());
        assert!(v.write(T0, &vc(&[2])).is_none());
        // T1 after synchronizing with T0 (clock dominates).
        assert!(v.read(T1, &vc(&[2, 1])).is_none());
        assert!(v.write(T1, &vc(&[2, 1])).is_none());
    }

    #[test]
    fn concurrent_write_write_races() {
        let mut v = VarState::new();
        assert!(v.write(T0, &vc(&[1, 0])).is_none());
        assert_eq!(v.write(T1, &vc(&[0, 1])), Some(AccessRace::WriteWrite));
    }

    #[test]
    fn concurrent_write_then_read_races() {
        let mut v = VarState::new();
        v.write(T0, &vc(&[1, 0]));
        assert_eq!(v.read(T1, &vc(&[0, 1])), Some(AccessRace::WriteRead));
    }

    #[test]
    fn concurrent_read_then_write_races() {
        let mut v = VarState::new();
        v.read(T0, &vc(&[1, 0]));
        assert_eq!(v.write(T1, &vc(&[0, 1])), Some(AccessRace::ReadWrite));
    }

    #[test]
    fn concurrent_reads_are_fine_and_inflate() {
        let mut v = VarState::new();
        assert!(v.read(T0, &vc(&[1, 0])).is_none());
        assert!(!v.is_read_shared());
        assert!(v.read(T1, &vc(&[0, 1])).is_none());
        assert!(v.is_read_shared());
        assert!(v.read(T2, &vc(&[0, 0, 1])).is_none());
        // A write ordered after ALL reads does not race…
        let mut ordered = v.clone();
        assert!(ordered.write(T0, &vc(&[2, 1, 1])).is_none());
        // …and deflates back to epoch mode.
        assert!(!ordered.is_read_shared());
        // A write ordered after only SOME reads races.
        assert_eq!(v.write(T0, &vc(&[2, 1, 0])), Some(AccessRace::ReadWrite));
    }

    #[test]
    fn same_epoch_fast_paths() {
        let mut v = VarState::new();
        let c = vc(&[3]);
        v.write(T0, &c);
        // Repeated accesses in the same epoch are no-ops.
        assert!(v.write(T0, &c).is_none());
        v.read(T0, &c);
        assert!(v.read(T0, &c).is_none());
    }

    #[test]
    fn read_exclusive_hands_over_epoch() {
        let mut v = VarState::new();
        v.read(T0, &vc(&[1, 0]));
        // T1 read that happens after T0's read stays in epoch mode.
        assert!(v.read(T1, &vc(&[1, 1])).is_none());
        assert!(!v.is_read_shared());
        // Now a concurrent-with-T1 write by T0 must still race (the epoch
        // now belongs to T1).
        assert_eq!(v.write(T0, &vc(&[2, 0])), Some(AccessRace::ReadWrite));
    }

    // ---- FastTrack end-to-end tests ----

    #[test]
    fn fork_join_program_is_race_free() {
        let ft = FastTrack::new();
        let mut trace = Trace::new();
        trace.push(Event::Fork {
            parent: T0,
            child: T1,
        });
        trace.push(Event::Write { tid: T1, loc: X });
        trace.push(Event::Join {
            parent: T0,
            child: T1,
        });
        trace.push(Event::Write { tid: T0, loc: X });
        assert!(replay(&trace, &ft).is_empty());
    }

    #[test]
    fn lock_protected_writes_are_race_free() {
        let ft = FastTrack::new();
        let l = LockId(0);
        let mut trace = Trace::new();
        trace.push(Event::Fork {
            parent: T0,
            child: T1,
        });
        for &t in &[T0, T1] {
            trace.push(Event::Acquire { tid: t, lock: l });
            trace.push(Event::Write { tid: t, loc: X });
            trace.push(Event::Release { tid: t, lock: l });
        }
        assert!(replay(&trace, &ft).is_empty());
    }

    #[test]
    fn unlocked_writes_race_once_per_access() {
        let ft = FastTrack::new();
        let mut trace = Trace::new();
        trace.push(Event::Fork {
            parent: T0,
            child: T1,
        });
        trace.push(Event::Write { tid: T0, loc: X });
        trace.push(Event::Write { tid: T1, loc: X });
        trace.push(Event::Write { tid: T0, loc: X });
        let report = replay(&trace, &ft);
        // T1's write races with T0's; T0's second write races with T1's
        // (FastTrack keeps reporting on subsequent conflicting epochs).
        assert_eq!(report.total(), 2);
        assert_eq!(report.distinct(), 1); // same location
    }

    #[test]
    fn distinct_locations_count_separately() {
        let ft = FastTrack::new();
        let mut trace = Trace::new();
        trace.push(Event::Fork {
            parent: T0,
            child: T1,
        });
        for loc in [LocId(1), LocId(2), LocId(3)] {
            trace.push(Event::Write { tid: T0, loc });
            trace.push(Event::Write { tid: T1, loc });
        }
        let report = replay(&trace, &ft);
        assert_eq!(report.total(), 3);
        assert_eq!(report.distinct(), 3);
    }

    #[test]
    fn actions_are_ignored() {
        use crace_model::{Action, MethodId, ObjId, Value};
        let ft = FastTrack::new();
        ft.on_fork(T0, T1);
        for t in [T0, T1] {
            ft.on_action(
                t,
                &Action::new(ObjId(1), MethodId(0), vec![Value::Int(1)], Value::Nil),
            );
        }
        assert!(ft.report().is_empty());
    }

    /// Abandonment on the low-level detector: the delivered write still
    /// races with a survivor, late accesses of the dead tid are shed.
    #[test]
    fn abandon_sheds_late_accesses_and_orders_nobody() {
        let ft = FastTrack::new();
        ft.on_fork(T0, T1);
        ft.on_fork(T0, T2);
        ft.on_write(T1, X);
        ft.abandon_thread(T1);
        // Late events of the dead thread are shed…
        ft.on_write(T1, LocId(99));
        ft.on_join(T0, T1);
        assert_eq!(ft.events_shed(), 2);
        assert!(ft.report().is_empty());
        // …and no HB edge protects T2's concurrent write.
        ft.on_write(T2, X);
        assert_eq!(ft.report().total(), 1);
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        use crace_core::{builtin_resolver, Checkpoint};
        let resolver = builtin_resolver();
        for provenance in [false, true] {
            let make = || {
                if provenance {
                    FastTrack::with_provenance()
                } else {
                    FastTrack::new()
                }
            };
            let ft = make();
            // Prefix: fork structure, an epoch-mode and a read-shared
            // location, an abandoned thread, and one recorded race.
            ft.on_fork(T0, T1);
            ft.on_fork(T0, T2);
            ft.on_write(T0, X);
            ft.on_read(T1, LocId(2));
            ft.on_read(T2, LocId(2)); // inflates to read-shared
            ft.on_write(T1, X); // write-write race
            ft.abandon_thread(T2);
            let blob = ft.checkpoint();
            let restored = make();
            restored.restore(&blob, &resolver).unwrap();
            assert_eq!(restored.report(), ft.report(), "provenance={provenance}");
            assert_eq!(restored.events_shed(), ft.events_shed());
            // Suffix drives both identically: same verdicts, same sheds.
            for d in [&ft, &restored] {
                d.on_write(T0, X); // races with T1's write epoch
                d.on_write(T2, LocId(9)); // shed: abandoned
                d.on_read(T1, LocId(2)); // read-shared update, no race
            }
            assert_eq!(
                restored.report().to_json(),
                ft.report().to_json(),
                "provenance={provenance}"
            );
            assert_eq!(restored.events_shed(), ft.events_shed());
        }
    }

    #[test]
    fn checkpoint_rejects_mismatched_configuration_and_damage() {
        use crace_core::{builtin_resolver, Checkpoint};
        let resolver = builtin_resolver();
        let ft = FastTrack::new();
        ft.on_fork(T0, T1);
        ft.on_write(T0, X);
        let blob = ft.checkpoint();
        // Provenance-mode mismatch fails closed.
        assert!(FastTrack::with_provenance()
            .restore(&blob, &resolver)
            .is_err());
        // Kind mismatch fails closed.
        assert!(crace_vclock::CkptReader::new(&blob, "rd2").is_err());
        // A flipped byte in any framed record fails closed.
        let mut damaged = blob.clone().into_bytes();
        let mid = damaged.len() / 2;
        damaged[mid] ^= 0x20;
        let damaged = String::from_utf8_lossy(&damaged).into_owned();
        if damaged != blob {
            let fresh = FastTrack::new();
            let err = fresh.restore(&damaged, &resolver);
            if let Ok(()) = err {
                // The flip may land in a spot that keeps framing intact
                // only if it produced the identical text — anything else
                // must have errored.
                assert_eq!(damaged, blob);
            }
        }
    }

    #[test]
    fn concurrent_hammering_is_deadlock_free() {
        use std::sync::Arc;
        let ft = Arc::new(FastTrack::new());
        let mut handles = Vec::new();
        for t in 1..=4u32 {
            ft.on_fork(T0, ThreadId(t));
            let ft = Arc::clone(&ft);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    // Per-thread locations: no races.
                    ft.on_write(ThreadId(t), LocId(t as u64 * 1000 + i));
                    ft.on_read(ThreadId(t), LocId(t as u64 * 1000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(ft.report().is_empty());
    }
}
