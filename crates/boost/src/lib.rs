//! Abstract locking from access points — the optimistic-concurrency use of
//! the representation the paper points at in §2 and §8 (“the access point
//! representation can be used … to enable more general optimistic
//! concurrency control schemes”), following Kulkarni et al.'s abstract
//! locks and Herlihy & Koskinen's transactional boosting.
//!
//! The idea: a transaction about to perform `o.m(u⃗)` must hold *abstract
//! locks* on the access points the invocation touches; two lock requests
//! conflict exactly when their access points conflict, i.e. when the
//! operations might not commute. Commuting operations (two `put`s to
//! different keys, any number of counter `inc`s) proceed fully in
//! parallel; non-commuting ones serialize through conflict-and-retry.
//!
//! Because lock acquisition happens *before* the invocation, the return
//! value is not yet known; lock requests are therefore made from the
//! argument-only over-approximation of the touched points (every β of the
//! method is possible) — the same pessimism Kulkarni et al.'s static
//! lock/mode assignment needs, and the reason the PLDI'14 *detector* could
//! move to the more precise post-hoc β (it looks at completed actions).
//! This contrast is exactly §6's motivation for ECL over SIMPLE.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use crace_boost::LockManager;
//! use crace_core::translate;
//! use crace_model::{MethodId, Value};
//! use crace_spec::builtin;
//!
//! let spec = builtin::dictionary();
//! let put = spec.method_id("put").unwrap();
//! let manager = LockManager::new(Arc::new(translate(&spec)?));
//!
//! let mut tx1 = manager.begin();
//! let mut tx2 = manager.begin();
//! // Different keys commute: both transactions lock without conflict.
//! assert!(manager.try_lock(&mut tx1, put, &[Value::Int(1), Value::Int(9)]));
//! assert!(manager.try_lock(&mut tx2, put, &[Value::Int(2), Value::Int(9)]));
//! // The same key conflicts: tx2 must wait for tx1.
//! assert!(!manager.try_lock(&mut tx2, put, &[Value::Int(1), Value::Int(9)]));
//! manager.commit(tx1);
//! assert!(manager.try_lock(&mut tx2, put, &[Value::Int(1), Value::Int(9)]));
//! manager.commit(tx2);
//! # Ok::<(), crace_core::TranslateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crace_core::{AccessPoint, ClassId, CompiledSpec, PointKind};
use crace_model::{Action, MethodId, ObjId, Value};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Identifier of a running transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u64);

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

/// A transaction's lock set (two-phase: grows until commit/abort).
#[derive(Debug)]
pub struct Tx {
    id: TxId,
    held: HashSet<AccessPoint>,
}

impl Tx {
    /// The transaction's identifier.
    pub fn id(&self) -> TxId {
        self.id
    }

    /// Number of abstract locks held.
    pub fn num_held(&self) -> usize {
        self.held.len()
    }
}

/// Statistics of a lock manager (for experiments and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Successful lock acquisitions.
    pub acquired: u64,
    /// Rejected (conflicting) requests.
    pub conflicts: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions.
    pub aborts: u64,
}

/// The abstract lock manager for one object specification.
///
/// Locks are the *argument-slot* access points of the compiled
/// specification, plus one `ds` lock per method whose `ds` points can
/// conflict. Conflicts between lock requests mirror the compiled conflict
/// relation `Cₒ`.
pub struct LockManager {
    spec: Arc<CompiledSpec>,
    /// Current owners per access point. A point is held *shared* by any
    /// number of transactions; exclusion comes entirely from the conflict
    /// relation (a self-conflicting class excludes other holders of the
    /// same point).
    owners: Mutex<HashMap<AccessPoint, Vec<TxId>>>,
    stats: Mutex<LockStats>,
    next_tx: Mutex<u64>,
    /// Per method: the lock templates to request before invoking it — the
    /// union over all β of the touched classes (argument slots only; the
    /// return slot is unknown pre-invocation and its class set is folded
    /// into the pessimism).
    templates: Vec<Vec<LockTemplate>>,
}

#[derive(Clone, Copy, Debug)]
enum LockTemplate {
    Ds(ClassId),
    /// Lock the point `(class, args[i])`.
    Arg(ClassId, usize),
}

impl LockManager {
    /// Creates a manager for `spec`.
    pub fn new(spec: Arc<CompiledSpec>) -> LockManager {
        let source = spec.spec();
        let mut templates = Vec::with_capacity(source.num_methods());
        for m in 0..source.num_methods() {
            let method = MethodId(m as u32);
            let num_args = source.sig(method).num_args();
            // Union of touched classes over every possible β: enumerate by
            // probing `touched` is impossible without concrete values, so
            // recover templates from the compiled tables via a probe action
            // per β using placeholder values — instead we conservatively
            // take all classes any action of this method can touch, which
            // the compiled spec exposes through its per-method tables.
            let mut ds: HashSet<ClassId> = HashSet::new();
            let mut slots: HashSet<(ClassId, usize)> = HashSet::new();
            for (class, slot) in spec.method_touch_universe(method) {
                match slot {
                    None => {
                        ds.insert(class);
                    }
                    Some(i) if i < num_args => {
                        slots.insert((class, i));
                    }
                    // Return-slot points cannot be locked pre-invocation;
                    // fold them into the method's ds lock (coarse but
                    // sound).
                    Some(_) => {
                        ds.insert(class);
                    }
                }
            }
            let mut list: Vec<LockTemplate> = Vec::new();
            list.extend(ds.into_iter().map(LockTemplate::Ds));
            list.extend(slots.into_iter().map(|(c, i)| LockTemplate::Arg(c, i)));
            templates.push(list);
        }
        LockManager {
            spec,
            owners: Mutex::new(HashMap::new()),
            stats: Mutex::new(LockStats::default()),
            next_tx: Mutex::new(0),
            templates,
        }
    }

    /// Starts a transaction.
    pub fn begin(&self) -> Tx {
        let mut next = self.next_tx.lock();
        *next += 1;
        Tx {
            id: TxId(*next),
            held: HashSet::new(),
        }
    }

    /// The lock points an invocation of `method` with `args` must hold.
    fn points_for(&self, method: MethodId, args: &[Value]) -> Vec<AccessPoint> {
        self.templates[method.index()]
            .iter()
            .map(|t| match *t {
                LockTemplate::Ds(class) => AccessPoint { class, value: None },
                LockTemplate::Arg(class, i) => AccessPoint {
                    class,
                    value: Some(args[i].clone()),
                },
            })
            .collect()
    }

    /// Attempts to acquire the abstract locks for invoking `method(args)`
    /// within `tx`. Returns `false` (acquiring nothing) if any required
    /// point conflicts with a point held by another transaction — the
    /// caller should abort or retry.
    ///
    /// # Panics
    ///
    /// Panics if `args` does not match the method's declared arity.
    pub fn try_lock(&self, tx: &mut Tx, method: MethodId, args: &[Value]) -> bool {
        assert_eq!(
            args.len(),
            self.spec.spec().sig(method).num_args(),
            "arity mismatch for {}",
            self.spec.spec().sig(method)
        );
        let wanted = self.points_for(method, args);
        let mut owners = self.owners.lock();
        // Conflict check: a wanted point conflicts with a held point of a
        // conflicting class and equal value (ds: no value).
        for pt in &wanted {
            for &other in self.spec.conflicting(pt.class) {
                let key = AccessPoint {
                    class: other,
                    value: if self.spec.kind(other) == PointKind::Ds {
                        None
                    } else {
                        pt.value.clone()
                    },
                };
                if let Some(holders) = owners.get(&key) {
                    if holders.iter().any(|&owner| owner != tx.id) {
                        self.stats.lock().conflicts += 1;
                        return false;
                    }
                }
            }
            // Same-point sharing: non-self-conflicting points (e.g. the
            // dictionary's r:k) may be held by many readers at once;
            // self-conflicting ones are excluded above.
        }
        for pt in wanted {
            let holders = owners.entry(pt.clone()).or_default();
            if !holders.contains(&tx.id) {
                holders.push(tx.id);
            }
            tx.held.insert(pt);
        }
        self.stats.lock().acquired += 1;
        true
    }

    fn release(&self, tx: &Tx) {
        let mut owners = self.owners.lock();
        for pt in &tx.held {
            if let Some(holders) = owners.get_mut(pt) {
                holders.retain(|&owner| owner != tx.id);
                if holders.is_empty() {
                    owners.remove(pt);
                }
            }
        }
    }

    /// Commits `tx`, releasing its locks.
    pub fn commit(&self, tx: Tx) {
        self.release(&tx);
        self.stats.lock().commits += 1;
    }

    /// Aborts `tx`, releasing its locks (the caller undoes its effects,
    /// e.g. via boosting's inverse operations).
    pub fn abort(&self, tx: Tx) {
        self.release(&tx);
        self.stats.lock().aborts += 1;
    }

    /// Snapshot of the manager's statistics.
    pub fn stats(&self) -> LockStats {
        *self.stats.lock()
    }

    /// Builds the action an executed invocation corresponds to (helper for
    /// tests that drive a detector alongside the manager).
    pub fn action(&self, obj: ObjId, method: MethodId, args: Vec<Value>, ret: Value) -> Action {
        Action::new(obj, method, args, ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_core::translate;
    use crace_spec::builtin;
    use std::sync::atomic::{AtomicI64, Ordering};

    fn dict_manager() -> (crace_spec::Spec, LockManager) {
        let spec = builtin::dictionary();
        let manager = LockManager::new(Arc::new(translate(&spec).unwrap()));
        (spec, manager)
    }

    #[test]
    fn different_keys_do_not_conflict() {
        let (spec, m) = dict_manager();
        let put = spec.method_id("put").unwrap();
        let mut tx1 = m.begin();
        let mut tx2 = m.begin();
        assert!(m.try_lock(&mut tx1, put, &[Value::Int(1), Value::Int(9)]));
        assert!(m.try_lock(&mut tx2, put, &[Value::Int(2), Value::Int(9)]));
        m.commit(tx1);
        m.commit(tx2);
        assert_eq!(m.stats().conflicts, 0);
        assert_eq!(m.stats().commits, 2);
    }

    #[test]
    fn same_key_puts_conflict_until_commit() {
        let (spec, m) = dict_manager();
        let put = spec.method_id("put").unwrap();
        let mut tx1 = m.begin();
        let mut tx2 = m.begin();
        assert!(m.try_lock(&mut tx1, put, &[Value::Int(1), Value::Int(9)]));
        assert!(!m.try_lock(&mut tx2, put, &[Value::Int(1), Value::Int(9)]));
        m.commit(tx1);
        assert!(m.try_lock(&mut tx2, put, &[Value::Int(1), Value::Int(9)]));
        m.commit(tx2);
        assert_eq!(m.stats().conflicts, 1);
    }

    #[test]
    fn put_conflicts_with_size_via_ds_locks() {
        let (spec, m) = dict_manager();
        let put = spec.method_id("put").unwrap();
        let size = spec.method_id("size").unwrap();
        let mut tx1 = m.begin();
        let mut tx2 = m.begin();
        // A put might resize; size observes the size: they must exclude
        // each other pessimistically (pre-invocation we can't know β).
        assert!(m.try_lock(&mut tx1, put, &[Value::Int(1), Value::Int(9)]));
        assert!(!m.try_lock(&mut tx2, size, &[]));
        m.abort(tx1);
        assert!(m.try_lock(&mut tx2, size, &[]));
        m.commit(tx2);
        assert_eq!(m.stats().aborts, 1);
    }

    #[test]
    fn gets_on_same_key_are_shared_but_excluded_by_put() {
        let (spec, m) = dict_manager();
        let get = spec.method_id("get").unwrap();
        let put = spec.method_id("put").unwrap();
        let mut tx1 = m.begin();
        let mut tx2 = m.begin();
        let mut tx3 = m.begin();
        // Two readers of the same key coexist (r does not conflict with r)…
        assert!(m.try_lock(&mut tx1, get, &[Value::Int(1)]));
        assert!(m.try_lock(&mut tx2, get, &[Value::Int(1)]));
        // …but a writer is excluded. (NOTE: the get lock is pessimistic —
        // it must also cover put's read-like β, hence it conflicts with w.)
        assert!(!m.try_lock(&mut tx3, put, &[Value::Int(1), Value::Int(9)]));
        m.commit(tx1);
        assert!(!m.try_lock(&mut tx3, put, &[Value::Int(1), Value::Int(9)]));
        m.commit(tx2);
        assert!(m.try_lock(&mut tx3, put, &[Value::Int(1), Value::Int(9)]));
        m.commit(tx3);
    }

    #[test]
    fn counter_increments_never_conflict() {
        let spec = builtin::counter();
        let m = LockManager::new(Arc::new(translate(&spec).unwrap()));
        let inc = spec.method_id("inc").unwrap();
        let read = spec.method_id("read").unwrap();
        let mut txs: Vec<Tx> = (0..8).map(|_| m.begin()).collect();
        for tx in &mut txs {
            assert!(m.try_lock(tx, inc, &[]));
        }
        // A reader conflicts with the pending increments.
        let mut reader = m.begin();
        assert!(!m.try_lock(&mut reader, read, &[]));
        for tx in txs {
            m.commit(tx);
        }
        assert!(m.try_lock(&mut reader, read, &[]));
        m.commit(reader);
        assert_eq!(m.stats().conflicts, 1);
    }

    #[test]
    fn locks_are_two_phase_within_a_transaction() {
        let (spec, m) = dict_manager();
        let put = spec.method_id("put").unwrap();
        let mut tx = m.begin();
        assert!(m.try_lock(&mut tx, put, &[Value::Int(1), Value::Int(9)]));
        assert!(m.try_lock(&mut tx, put, &[Value::Int(2), Value::Int(9)]));
        // Re-acquiring an own lock is fine.
        assert!(m.try_lock(&mut tx, put, &[Value::Int(1), Value::Int(9)]));
        assert!(tx.num_held() >= 2);
        m.commit(tx);
    }

    /// A realistic optimistic loop: many threads transfer "money" between
    /// counter-like accounts; commuting deposits run in parallel, and the
    /// retry loop preserves the total.
    #[test]
    fn concurrent_boosted_increments_preserve_invariants() {
        let spec = builtin::counter();
        let m = Arc::new(LockManager::new(Arc::new(translate(&spec).unwrap())));
        let inc = spec.method_id("inc").unwrap();
        let value = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            let value = Arc::clone(&value);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    loop {
                        let mut tx = m.begin();
                        if m.try_lock(&mut tx, inc, &[]) {
                            value.fetch_add(1, Ordering::Relaxed);
                            m.commit(tx);
                            break;
                        }
                        m.abort(tx);
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(value.load(Ordering::Relaxed), 2000);
        let stats = m.stats();
        assert_eq!(stats.commits, 2000);
        // Increments commute: the lock manager never rejected one.
        assert_eq!(stats.conflicts, 0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let (spec, m) = dict_manager();
        let put = spec.method_id("put").unwrap();
        let mut tx = m.begin();
        m.try_lock(&mut tx, put, &[]);
    }
}
