//! Bounded-model soundness audit (L010): executable reference semantics
//! for the builtin structures, used to refute wrong commutativity claims.
//!
//! A spec *names* a builtin structure when its spec name matches one of the
//! builtins (`dictionary`, `dictionary_ext`, `set`, `counter`, `register`,
//! `queue`). Methods are matched by name **and** arity; pairs involving an
//! unmatched method are skipped. For every matched pair, every initial
//! state and argument tuple from a small bounded domain is executed in both
//! orders; if the spec claims the realized actions commute but the two
//! orders disagree on a return value or the final state, the claim is
//! refuted with a concrete counterexample ([`crate::Code::L010`]).
//!
//! Soundness (Definition 4.2) only requires that `ϕ` *implies*
//! commutativity — claiming too little is imprecise but fine, claiming too
//! much is what this audit catches.

use crate::{Code, Diagnostic, Severity};
use crace_model::{Action, MethodId, MethodSig, ObjId, Value};
use crace_spec::{Span, Spec};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Dict,
    Set,
    Counter,
    Register,
    Queue,
}

fn kind_for(spec_name: &str) -> Option<Kind> {
    match spec_name {
        "dictionary" | "dictionary_ext" => Some(Kind::Dict),
        "set" => Some(Kind::Set),
        "counter" => Some(Kind::Counter),
        "register" => Some(Kind::Register),
        "queue" => Some(Kind::Queue),
        _ => None,
    }
}

/// Concrete object state of a reference model.
#[derive(Clone, Debug, PartialEq, Eq)]
enum State {
    Map(BTreeMap<i64, Value>),
    Set(BTreeSet<i64>),
    Counter(i64),
    Register(Value),
    Queue(Vec<i64>),
}

impl State {
    fn show(&self) -> String {
        match self {
            State::Map(m) => {
                let entries: Vec<String> = m.iter().map(|(k, v)| format!("{k}: {v}")).collect();
                format!("{{{}}}", entries.join(", "))
            }
            State::Set(s) => {
                let entries: Vec<String> = s.iter().map(|x| x.to_string()).collect();
                format!("{{{}}}", entries.join(", "))
            }
            State::Counter(n) => n.to_string(),
            State::Register(v) => v.to_string(),
            State::Queue(q) => {
                let entries: Vec<String> = q.iter().map(|x| x.to_string()).collect();
                format!("[{}]", entries.join(", "))
            }
        }
    }
}

fn initial_states(kind: Kind) -> Vec<State> {
    match kind {
        Kind::Dict => {
            // Every map over keys {0, 1} with values from {absent, 1, 2}.
            let choices = [None, Some(Value::Int(1)), Some(Value::Int(2))];
            let mut out = Vec::new();
            for c0 in &choices {
                for c1 in &choices {
                    let mut m = BTreeMap::new();
                    if let Some(v) = c0 {
                        m.insert(0, v.clone());
                    }
                    if let Some(v) = c1 {
                        m.insert(1, v.clone());
                    }
                    out.push(State::Map(m));
                }
            }
            out
        }
        Kind::Set => (0..4)
            .map(|bits: u32| State::Set((0..2).filter(|k| bits & (1 << k) != 0).collect()))
            .collect(),
        Kind::Counter => vec![State::Counter(0), State::Counter(1)],
        Kind::Register => vec![State::Register(Value::Nil), State::Register(Value::Int(1))],
        Kind::Queue => vec![
            State::Queue(vec![]),
            State::Queue(vec![1]),
            State::Queue(vec![2]),
            State::Queue(vec![1, 2]),
        ],
    }
}

/// Argument tuples for a modeled method, or `None` when the model does not
/// know the method under that name and arity.
fn arg_tuples(kind: Kind, sig: &MethodSig) -> Option<Vec<Vec<Value>>> {
    let keys = || vec![Value::Int(0), Value::Int(1)];
    let vals = || vec![Value::Nil, Value::Int(1), Value::Int(2)];
    match (kind, sig.name(), sig.num_args()) {
        (Kind::Dict, "put", 2) => Some(
            keys()
                .into_iter()
                .flat_map(|k| vals().into_iter().map(move |v| vec![k.clone(), v]))
                .collect(),
        ),
        (Kind::Dict, "get" | "remove" | "contains_key", 1) => {
            Some(keys().into_iter().map(|k| vec![k]).collect())
        }
        (Kind::Dict, "size", 0) => Some(vec![vec![]]),
        (Kind::Set, "add" | "remove" | "contains", 1) => {
            Some(keys().into_iter().map(|k| vec![k]).collect())
        }
        (Kind::Set, "size", 0) => Some(vec![vec![]]),
        (Kind::Counter, "inc" | "dec" | "read", 0) => Some(vec![vec![]]),
        (Kind::Register, "write", 1) => Some(vec![vec![Value::Int(1)], vec![Value::Int(2)]]),
        (Kind::Register, "read", 0) => Some(vec![vec![]]),
        (Kind::Queue, "enq", 1) => Some(vec![vec![Value::Int(1)], vec![Value::Int(2)]]),
        (Kind::Queue, "deq" | "len", 0) => Some(vec![vec![]]),
        _ => None,
    }
}

fn as_int(v: &Value) -> Option<i64> {
    match v {
        Value::Int(n) => Some(*n),
        _ => None,
    }
}

/// Executes one method invocation, returning the next state and the return
/// value. `None` when the method is not modeled.
fn step(kind: Kind, state: &State, sig: &MethodSig, args: &[Value]) -> Option<(State, Value)> {
    match (kind, state, sig.name()) {
        (Kind::Dict, State::Map(m), "put") => {
            let k = as_int(&args[0])?;
            let mut m = m.clone();
            // put(k, nil) removes the key; the previous value is returned.
            let prev = if args[1] == Value::Nil {
                m.remove(&k)
            } else {
                m.insert(k, args[1].clone())
            };
            Some((State::Map(m), prev.unwrap_or(Value::Nil)))
        }
        (Kind::Dict, State::Map(m), "get") => {
            let k = as_int(&args[0])?;
            Some((state.clone(), m.get(&k).cloned().unwrap_or(Value::Nil)))
        }
        (Kind::Dict, State::Map(m), "remove") => {
            let k = as_int(&args[0])?;
            let mut m = m.clone();
            let prev = m.remove(&k);
            Some((State::Map(m), prev.unwrap_or(Value::Nil)))
        }
        (Kind::Dict, State::Map(m), "contains_key") => {
            let k = as_int(&args[0])?;
            Some((state.clone(), Value::Bool(m.contains_key(&k))))
        }
        (Kind::Dict, State::Map(m), "size") => Some((state.clone(), Value::Int(m.len() as i64))),
        (Kind::Set, State::Set(s), "add") => {
            let x = as_int(&args[0])?;
            let mut s = s.clone();
            let fresh = s.insert(x);
            Some((State::Set(s), Value::Bool(fresh)))
        }
        (Kind::Set, State::Set(s), "remove") => {
            let x = as_int(&args[0])?;
            let mut s = s.clone();
            let was = s.remove(&x);
            Some((State::Set(s), Value::Bool(was)))
        }
        (Kind::Set, State::Set(s), "contains") => {
            let x = as_int(&args[0])?;
            Some((state.clone(), Value::Bool(s.contains(&x))))
        }
        (Kind::Set, State::Set(s), "size") => Some((state.clone(), Value::Int(s.len() as i64))),
        (Kind::Counter, State::Counter(n), "inc") => Some((State::Counter(n + 1), Value::Nil)),
        (Kind::Counter, State::Counter(n), "dec") => Some((State::Counter(n - 1), Value::Nil)),
        (Kind::Counter, State::Counter(n), "read") => Some((state.clone(), Value::Int(*n))),
        (Kind::Register, State::Register(_), "write") => {
            Some((State::Register(args[0].clone()), Value::Nil))
        }
        (Kind::Register, State::Register(v), "read") => Some((state.clone(), v.clone())),
        (Kind::Queue, State::Queue(q), "enq") => {
            let x = as_int(&args[0])?;
            let mut q = q.clone();
            q.push(x);
            Some((State::Queue(q), Value::Nil))
        }
        (Kind::Queue, State::Queue(q), "deq") => {
            let mut q = q.clone();
            if q.is_empty() {
                Some((State::Queue(q), Value::Nil))
            } else {
                let x = q.remove(0);
                Some((State::Queue(q), Value::Int(x)))
            }
        }
        (Kind::Queue, State::Queue(q), "len") => Some((state.clone(), Value::Int(q.len() as i64))),
        _ => None,
    }
}

fn describe(sig: &MethodSig, args: &[Value], ret: &Value) -> String {
    let args: Vec<String> = args.iter().map(|v| v.to_string()).collect();
    format!("{}({}) -> {ret}", sig.name(), args.join(", "))
}

/// Runs the soundness audit against the matching builtin model, if any.
/// `rule_span` maps a method pair to the span of its declared rule.
pub(crate) fn audit_soundness(
    spec: &Spec,
    rule_span: &dyn Fn(MethodId, MethodId) -> Option<Span>,
) -> Vec<Diagnostic> {
    let Some(kind) = kind_for(spec.name()) else {
        return Vec::new();
    };
    let states = initial_states(kind);
    let mut diags = Vec::new();
    for i in 0..spec.num_methods() {
        'pair: for j in i..spec.num_methods() {
            let (m1, m2) = (MethodId(i as u32), MethodId(j as u32));
            let (sig1, sig2) = (spec.sig(m1), spec.sig(m2));
            let (Some(args1), Some(args2)) = (arg_tuples(kind, sig1), arg_tuples(kind, sig2))
            else {
                continue; // unmatched method: skip the pair
            };
            for s0 in &states {
                for a1 in &args1 {
                    for a2 in &args2 {
                        // Realize each order; if the spec claims the
                        // realized actions commute, the other order must
                        // reproduce both returns and the final state.
                        for &(first, fa, fs, second, sa, ss) in
                            &[(m1, a1, sig1, m2, a2, sig2), (m2, a2, sig2, m1, a1, sig1)]
                        {
                            let Some((mid, r_first)) = step(kind, s0, fs, fa) else {
                                continue 'pair;
                            };
                            let Some((end, r_second)) = step(kind, &mid, ss, sa) else {
                                continue 'pair;
                            };
                            let act_first =
                                Action::new(ObjId(0), first, fa.clone(), r_first.clone());
                            let act_second =
                                Action::new(ObjId(0), second, sa.clone(), r_second.clone());
                            if !spec.commute(&act_first, &act_second) {
                                continue;
                            }
                            let (mid_b, r2b) = step(kind, s0, ss, sa).expect("modeled above");
                            let (end_b, r1b) = step(kind, &mid_b, fs, fa).expect("modeled above");
                            if r2b != r_second || r1b != r_first || end_b != end {
                                diags.push(Diagnostic {
                                    code: Code::L010,
                                    severity: Severity::Error,
                                    message: format!(
                                        "spec claims `{}` and `{}` commute, but the \
                                         `{}` model refutes it on a bounded \
                                         counterexample",
                                        fs.name(),
                                        ss.name(),
                                        spec.name()
                                    ),
                                    span: rule_span(first, second),
                                    notes: vec![
                                        format!("from state {}:", s0.show()),
                                        format!(
                                            "  order A: {} ; {} -> state {}",
                                            describe(fs, fa, &r_first),
                                            describe(ss, sa, &r_second),
                                            end.show()
                                        ),
                                        format!(
                                            "  order B: {} ; {} -> state {}",
                                            describe(ss, sa, &r2b),
                                            describe(fs, fa, &r1b),
                                            end_b.show()
                                        ),
                                    ],
                                });
                                continue 'pair; // first counterexample only
                            }
                        }
                    }
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_spec::builtin;

    #[test]
    fn builtins_pass_their_own_models() {
        for spec in builtin::all() {
            let diags = audit_soundness(&spec, &|m1, m2| spec.rule_span(m1, m2));
            assert!(diags.is_empty(), "{}: {diags:#?}", spec.name());
        }
    }

    #[test]
    fn overclaiming_dictionary_is_refuted() {
        // Fig. 6 with the put/put guard replaced by `true`.
        let src =
            builtin::DICTIONARY_SRC.replace("when k1 != k2 || (v1 == p1 && v2 == p2)", "when true");
        let spec = crace_spec::parse(&src).unwrap();
        let diags = audit_soundness(&spec, &|m1, m2| spec.rule_span(m1, m2));
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].code, Code::L010);
        assert!(diags[0].span.is_some());
        assert!(!diags[0].notes.is_empty());
    }

    #[test]
    fn non_builtin_names_are_skipped() {
        let spec =
            crace_spec::parse("spec custom { method m(); commute m(), m() when true; }").unwrap();
        assert!(audit_soundness(&spec, &|_, _| None).is_empty());
    }
}
