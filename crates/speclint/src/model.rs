//! Bounded-model audits against executable reference semantics: the
//! soundness audit (L010) and the precision audit (L011), both driven by
//! the shared [`crate::oracle`].
//!
//! **Soundness (L010).** Definition 4.2 only requires that `ϕ` *implies*
//! commutativity. For every matched pair, every realized execution where
//! the spec claims the actions commute but the two orders disagree on a
//! return value or the final state refutes the claim with a concrete
//! counterexample. Claiming too little is imprecise but fine; claiming too
//! much is what this audit catches.
//!
//! **Precision (L011).** The dual direction: a declared condition that
//! *rejects* a slot vector whose every bounded realization commutes is
//! sound but strictly stronger than the weakest bounded condition — the
//! one `crace synth` builds by covering exactly the aggregated-commuting
//! samples. Such imprecision makes the detector report false
//! commutativity races, so it is surfaced as a warning with a concrete
//! missed pair. Only pairs with a declared rule are audited: an undeclared
//! pair already gets L008 for its implicit `false`.
//!
//! A pair whose bounded enumeration exceeds the action budget is reported
//! as an L010 **error** naming the `--max-actions` override — never
//! silently truncated, because a truncated audit would claim more than it
//! checked.

use crate::oracle::{self, OracleConfig};
use crate::{Code, Diagnostic, Severity};
use crace_model::{MethodId, MethodSig, Value};
use crace_spec::{Span, Spec};
use std::collections::BTreeSet;

fn describe(sig: &MethodSig, slots: &[Value]) -> String {
    let (args, ret) = slots.split_at(sig.num_args());
    let args: Vec<String> = args.iter().map(|v| v.to_string()).collect();
    format!("{}({}) -> {}", sig.name(), args.join(", "), ret[0])
}

/// Runs the soundness (L010) and precision (L011) audits against the
/// matching builtin model, if any. `rule_span` maps a method pair to the
/// span of its declared rule; `declared` holds the pairs that have one.
pub(crate) fn audit_model(
    spec: &Spec,
    declared: &BTreeSet<(MethodId, MethodId)>,
    rule_span: &dyn Fn(MethodId, MethodId) -> Option<Span>,
    config: &OracleConfig,
) -> Vec<Diagnostic> {
    let Some(kind) = oracle::kind_for(spec.name()) else {
        return Vec::new();
    };
    let mut diags = Vec::new();
    for i in 0..spec.num_methods() {
        for j in i..spec.num_methods() {
            let (m1, m2) = (MethodId(i as u32), MethodId(j as u32));
            let (sig1, sig2) = (spec.sig(m1), spec.sig(m2));
            let realized = match oracle::realized_pairs(kind, sig1, sig2, config) {
                Ok(Some(r)) => r,
                Ok(None) => continue, // unmatched method: skip the pair
                Err(budget) => {
                    diags.push(Diagnostic {
                        code: Code::L010,
                        severity: Severity::Error,
                        message: format!("soundness audit skipped: {budget}"),
                        span: rule_span(m1, m2),
                        notes: vec![
                            "an audit over a truncated enumeration would claim more than \
                             it checked, so the budget overflow is an error instead"
                                .to_string(),
                        ],
                    });
                    continue;
                }
            };
            let phi = spec.formula(m1, m2);

            // L010: the first refuted commute claim, with both orders shown.
            if let Some(cex) = realized
                .iter()
                .find(|r| !r.commutes && phi.eval(&r.slots1, &r.slots2))
            {
                let (fs, f_slots, ss, s_slots) = if cex.sig1_first {
                    (sig1, &cex.slots1, sig2, &cex.slots2)
                } else {
                    (sig2, &cex.slots2, sig1, &cex.slots1)
                };
                let (other_f, other_s) = if cex.sig1_first {
                    (&cex.other_ret1, &cex.other_ret2)
                } else {
                    (&cex.other_ret2, &cex.other_ret1)
                };
                let redescribe = |sig: &MethodSig, slots: &[Value], ret: &Value| {
                    let mut slots = slots.to_vec();
                    *slots.last_mut().expect("slots include the return") = ret.clone();
                    describe(sig, &slots)
                };
                diags.push(Diagnostic {
                    code: Code::L010,
                    severity: Severity::Error,
                    message: format!(
                        "spec claims `{}` and `{}` commute, but the `{}` model \
                         refutes it on a bounded counterexample",
                        sig1.name(),
                        sig2.name(),
                        spec.name()
                    ),
                    span: rule_span(m1, m2),
                    notes: vec![
                        format!("from state {}:", cex.state.show()),
                        format!(
                            "  order A: {} ; {} -> state {}",
                            describe(fs, f_slots),
                            describe(ss, s_slots),
                            cex.end_this.show()
                        ),
                        format!(
                            "  order B: {} ; {} -> state {}",
                            redescribe(ss, s_slots, other_s),
                            redescribe(fs, f_slots, other_f),
                            cex.end_other.show()
                        ),
                    ],
                });
                continue; // an unsound pair is not additionally "imprecise"
            }

            // L011: declared conditions that reject aggregated-commuting
            // samples (see the module docs for the aggregation argument).
            if !declared.contains(&(m1, m2)) {
                continue;
            }
            let samples = oracle::aggregate(&realized);
            let missed: Vec<_> = samples
                .iter()
                .filter(|s| s.commutes && !phi.eval(&s.slots1, &s.slots2))
                .collect();
            if let Some(first) = missed.first() {
                diags.push(Diagnostic {
                    code: Code::L011,
                    severity: Severity::Warning,
                    message: format!(
                        "condition for (`{}`, `{}`) is sound but strictly stronger than \
                         the weakest bounded condition: it rejects {} realized pair(s) \
                         that always commute",
                        sig1.name(),
                        sig2.name(),
                        missed.len()
                    ),
                    span: rule_span(m1, m2),
                    notes: vec![
                        format!(
                            "e.g. {} and {} commute from every bounded state realizing \
                             them, yet the condition rejects the pair",
                            describe(sig1, &first.slots1),
                            describe(sig2, &first.slots2)
                        ),
                        "every rejected commuting pair becomes a false commutativity race \
                         at detection time"
                            .to_string(),
                        format!(
                            "`crace synth {}` generates the weakest condition consistent \
                             with the bounded semantics",
                            spec.name()
                        ),
                    ],
                });
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_spec::builtin;

    fn audit(spec: &Spec, config: &OracleConfig) -> Vec<Diagnostic> {
        let declared: BTreeSet<(MethodId, MethodId)> = (0..spec.num_methods())
            .flat_map(|i| {
                (i..spec.num_methods()).map(move |j| (MethodId(i as u32), MethodId(j as u32)))
            })
            .filter(|&(m1, m2)| spec.rule_span(m1, m2).is_some())
            .collect();
        audit_model(spec, &declared, &|m1, m2| spec.rule_span(m1, m2), config)
    }

    #[test]
    fn builtins_pass_the_soundness_audit() {
        for spec in builtin::all() {
            let diags = audit(&spec, &OracleConfig::default());
            assert!(
                diags.iter().all(|d| d.code != Code::L010),
                "{}: {diags:#?}",
                spec.name()
            );
        }
    }

    #[test]
    fn precise_builtins_have_no_l011() {
        // dictionary, dictionary_ext, set and counter are already the
        // weakest bounded conditions; register and queue deliberately
        // under-claim (their refinements are outside ECL — see the builtin
        // sources) and are pinned in `l011_flags_the_underclaiming_builtins`.
        for name in ["dictionary", "dictionary_ext", "set", "counter"] {
            let spec = builtin::all()
                .into_iter()
                .find(|s| s.name() == name)
                .unwrap();
            let diags = audit(&spec, &OracleConfig::default());
            assert!(diags.is_empty(), "{name}: {diags:#?}");
        }
    }

    #[test]
    fn l011_flags_the_underclaiming_builtins() {
        let flagged = |name: &str| -> Vec<String> {
            let spec = builtin::all()
                .into_iter()
                .find(|s| s.name() == name)
                .unwrap();
            let diags = audit(&spec, &OracleConfig::default());
            assert!(diags.iter().all(|d| d.code == Code::L011), "{diags:#?}");
            assert!(diags.iter().all(|d| d.severity == Severity::Warning));
            diags.iter().map(|d| d.message.clone()).collect()
        };
        let register = flagged("register");
        assert_eq!(register.len(), 1, "{register:#?}");
        assert!(register[0].contains("`write`, `write`"), "{register:#?}");
        let queue = flagged("queue");
        assert_eq!(queue.len(), 4, "{queue:#?}");
        for pair in [
            "`enq`, `enq`",
            "`enq`, `deq`",
            "`deq`, `deq`",
            "`deq`, `len`",
        ] {
            assert!(queue.iter().any(|m| m.contains(pair)), "{pair}: {queue:#?}");
        }
    }

    #[test]
    fn overclaiming_dictionary_is_refuted() {
        // Fig. 6 with the put/put guard replaced by `true`.
        let src =
            builtin::DICTIONARY_SRC.replace("when k1 != k2 || (v1 == p1 && v2 == p2)", "when true");
        let spec = crace_spec::parse(&src).unwrap();
        let diags = audit(&spec, &OracleConfig::default());
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].code, Code::L010);
        assert!(diags[0].span.is_some());
        assert!(diags[0].notes.iter().any(|n| n.contains("order B")));
    }

    #[test]
    fn budget_overflow_surfaces_a_spanned_error() {
        let spec = builtin::all()
            .into_iter()
            .find(|s| s.name() == "dictionary")
            .unwrap();
        let cfg = OracleConfig {
            max_int: 2,
            max_actions: 100,
        };
        let diags = audit(&spec, &cfg);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.code == Code::L010));
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
        assert!(
            diags[0].message.contains("--max-actions"),
            "{:#?}",
            diags[0]
        );
        assert!(diags[0].span.is_some());
    }

    #[test]
    fn non_builtin_names_are_skipped() {
        let spec =
            crace_spec::parse("spec custom { method m(); commute m(), m() when true; }").unwrap();
        assert!(audit(&spec, &OracleConfig::default()).is_empty());
    }
}
