//! Formula-level lint passes: bounded value domains, abstract equivalence,
//! and the conjunct diagnostics (L005/L006/L007).

use crate::{Code, Diagnostic, Severity};
use crace_model::{MethodSig, Value};
use crace_spec::{Formula, Pred, Side, Span};
use std::collections::BTreeSet;

/// Skip semantic enumeration beyond this many assignments — the bounded
/// domains stay bounded.
const MAX_ASSIGNMENTS: usize = 20_000;

/// Atoms distinguishable by the abstract (truth-table) semantics.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum AtomKey {
    Cross(usize, usize),
    Lb(Side, Pred),
}

fn collect_atoms(phi: &Formula, out: &mut BTreeSet<AtomKey>) {
    match phi {
        Formula::True | Formula::False => {}
        Formula::NeqCross { i, j } => {
            out.insert(AtomKey::Cross(*i, *j));
        }
        Formula::Atom { side, pred } => {
            out.insert(AtomKey::Lb(*side, pred.clone()));
        }
        Formula::Not(f) => collect_atoms(f, out),
        Formula::And(a, b) | Formula::Or(a, b) => {
            collect_atoms(a, out);
            collect_atoms(b, out);
        }
    }
}

fn eval_abstract(phi: &Formula, atoms: &[AtomKey], mask: u32) -> bool {
    match phi {
        Formula::True => true,
        Formula::False => false,
        Formula::NeqCross { i, j } => {
            let idx = atoms
                .binary_search(&AtomKey::Cross(*i, *j))
                .expect("atom collected");
            mask & (1 << idx) != 0
        }
        Formula::Atom { side, pred } => {
            let idx = atoms
                .binary_search(&AtomKey::Lb(*side, pred.clone()))
                .expect("atom collected");
            mask & (1 << idx) != 0
        }
        Formula::Not(f) => !eval_abstract(f, atoms, mask),
        Formula::And(a, b) => eval_abstract(a, atoms, mask) && eval_abstract(b, atoms, mask),
        Formula::Or(a, b) => eval_abstract(a, atoms, mask) || eval_abstract(b, atoms, mask),
    }
}

/// Truth-table equivalence treating atoms as free booleans. Sound for
/// distinguishing formulas (`Some(false)` means genuinely different);
/// returns `None` when the combined atom count exceeds 16.
///
/// Public because the `crace-specsynth` crate uses the same table to
/// decide whether a synthesized condition is structurally equivalent to a
/// handwritten one (the L003/L004 machinery, run in reverse).
pub fn abstract_equiv(a: &Formula, b: &Formula) -> Option<bool> {
    let mut atoms = BTreeSet::new();
    collect_atoms(a, &mut atoms);
    collect_atoms(b, &mut atoms);
    let atoms: Vec<AtomKey> = atoms.into_iter().collect();
    if atoms.len() > 16 {
        return None;
    }
    for mask in 0u32..(1 << atoms.len()) {
        if eval_abstract(a, &atoms, mask) != eval_abstract(b, &atoms, mask) {
            return Some(false);
        }
    }
    Some(true)
}

/// The bounded value domain used by the semantic checks: `nil`, two small
/// integers, every constant mentioned by the formulas, and the boolean
/// partner of any boolean constant (so `b == false` is not "constant" just
/// because `true` never appears).
pub(crate) fn value_universe<'a>(formulas: impl Iterator<Item = &'a Formula>) -> Vec<Value> {
    let mut universe: BTreeSet<Value> = [Value::Nil, Value::Int(1), Value::Int(2)].into();
    fn walk(phi: &Formula, out: &mut BTreeSet<Value>) {
        match phi {
            Formula::True | Formula::False | Formula::NeqCross { .. } => {}
            Formula::Atom { pred, .. } => {
                for term in [pred.lhs(), pred.rhs()] {
                    if let crace_spec::Term::Const(v) = term {
                        out.insert(v.clone());
                        if let Value::Bool(b) = v {
                            out.insert(Value::Bool(!b));
                        }
                    }
                }
            }
            Formula::Not(f) => walk(f, out),
            Formula::And(a, b) | Formula::Or(a, b) => {
                walk(a, out);
                walk(b, out);
            }
        }
    }
    for phi in formulas {
        walk(phi, &mut universe);
    }
    universe.into_iter().collect()
}

/// Iterates all `universe^slots` assignments, calling `f` on each; returns
/// `false` (and stops) if the space exceeds [`MAX_ASSIGNMENTS`].
fn for_each_assignment(universe: &[Value], slots: usize, mut f: impl FnMut(&[Value])) -> bool {
    let space = universe.len().checked_pow(slots as u32);
    if space.is_none_or(|s| s > MAX_ASSIGNMENTS) {
        return false;
    }
    let mut idx = vec![0usize; slots];
    loop {
        let vals: Vec<Value> = idx.iter().map(|&i| universe[i].clone()).collect();
        f(&vals);
        let mut k = 0;
        while k < slots {
            idx[k] += 1;
            if idx[k] < universe.len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
        if k == slots {
            return true;
        }
    }
}

/// An atom-like conjunct: a single-side predicate, possibly negated.
fn atom_like(phi: &Formula) -> Option<(Side, &Pred, bool)> {
    match phi {
        Formula::Atom { side, pred } => Some((*side, pred, false)),
        Formula::Not(inner) => match &**inner {
            Formula::Atom { side, pred } => Some((*side, pred, true)),
            _ => None,
        },
        _ => None,
    }
}

/// A path from the formula root to a subformula: 0 = left/inner child,
/// 1 = right child.
type Path = Vec<u8>;

/// Flattens a formula's `And` spine into its conjunct list, with the path
/// of each conjunct.
fn flatten_and<'a>(phi: &'a Formula, path: Path, out: &mut Vec<(Path, &'a Formula)>) {
    match phi {
        Formula::And(a, b) => {
            let mut left = path.clone();
            left.push(0);
            flatten_and(a, left, out);
            let mut right = path;
            right.push(1);
            flatten_and(b, right, out);
        }
        other => out.push((path, other)),
    }
}

/// Collects every maximal conjunction in the formula (with conjunct
/// paths), in traversal order.
fn and_lists<'a>(phi: &'a Formula, path: Path, out: &mut Vec<Vec<(Path, &'a Formula)>>) {
    match phi {
        Formula::And(_, _) => {
            let mut list = Vec::new();
            flatten_and(phi, path, &mut list);
            for (p, c) in list.clone() {
                // Conjuncts are non-And by construction; look inside them.
                if let Formula::Or(_, _) | Formula::Not(_) = c {
                    and_lists_children(c, p, out);
                }
            }
            out.push(list);
        }
        Formula::Or(_, _) | Formula::Not(_) => and_lists_children(phi, path, out),
        _ => {}
    }
}

fn and_lists_children<'a>(phi: &'a Formula, path: Path, out: &mut Vec<Vec<(Path, &'a Formula)>>) {
    match phi {
        Formula::Or(a, b) => {
            let mut left = path.clone();
            left.push(0);
            and_lists(a, left, out);
            let mut right = path;
            right.push(1);
            and_lists(b, right, out);
        }
        Formula::Not(f) => {
            let mut inner = path;
            inner.push(0);
            and_lists(f, inner, out);
        }
        _ => {}
    }
}

/// Replaces the subformula at `path` with `True`, without smart-constructor
/// folding (the abstract comparison evaluates semantics anyway).
fn replace_at_with_true(phi: &Formula, path: &[u8]) -> Formula {
    let Some((&step, rest)) = path.split_first() else {
        return Formula::True;
    };
    match (phi, step) {
        (Formula::Not(f), _) => Formula::Not(Box::new(replace_at_with_true(f, rest))),
        (Formula::And(a, b), 0) => Formula::And(Box::new(replace_at_with_true(a, rest)), b.clone()),
        (Formula::And(a, b), _) => Formula::And(a.clone(), Box::new(replace_at_with_true(b, rest))),
        (Formula::Or(a, b), 0) => Formula::Or(Box::new(replace_at_with_true(a, rest)), b.clone()),
        (Formula::Or(a, b), _) => Formula::Or(a.clone(), Box::new(replace_at_with_true(b, rest))),
        (other, _) => {
            debug_assert!(false, "path {path:?} does not exist in {other:?}");
            other.clone()
        }
    }
}

/// Context for linting one rule's formula.
pub(crate) struct RuleCtx<'a> {
    /// The resolved, canonically-oriented formula.
    pub formula: &'a Formula,
    /// Signature of the pair's first method.
    pub sig1: &'a MethodSig,
    /// Signature of the pair's second method.
    pub sig2: &'a MethodSig,
    /// Span the diagnostics anchor at (the `when` formula).
    pub span: Span,
}

impl RuleCtx<'_> {
    fn sig(&self, side: Side) -> &MethodSig {
        match side {
            Side::First => self.sig1,
            Side::Second => self.sig2,
        }
    }

    fn show(&self, phi: &Formula) -> String {
        phi.to_source(self.sig1, self.sig2)
    }
}

/// Semantic truth of an atom-like conjunct under a slot assignment.
fn eval_atom_like(pred: &Pred, negated: bool, slots: &[Value]) -> bool {
    pred.eval(slots) != negated
}

/// Does conjunct `a` imply conjunct `b` over the bounded domain? Both must
/// be atom-like on `side`. Returns `None` when the space is too large.
fn implies(a: (&Pred, bool), b: (&Pred, bool), slots: usize, universe: &[Value]) -> Option<bool> {
    let mut holds = true;
    let complete = for_each_assignment(universe, slots, |vals| {
        if eval_atom_like(a.0, a.1, vals) && !eval_atom_like(b.0, b.1, vals) {
            holds = false;
        }
    });
    complete.then_some(holds)
}

/// L005: duplicate or subsumed conjuncts within each conjunction.
///
/// Returns the diagnostics plus the set of flagged conjuncts (by rendered
/// source), which L006 skips to keep one finding per defect.
pub(crate) fn check_subsumed(
    ctx: &RuleCtx<'_>,
    universe: &[Value],
) -> (Vec<Diagnostic>, BTreeSet<String>) {
    let mut diags = Vec::new();
    let mut flagged = BTreeSet::new();
    let mut lists = Vec::new();
    and_lists(ctx.formula, Vec::new(), &mut lists);
    for list in &lists {
        for (j, (_, cj)) in list.iter().enumerate() {
            for (_, ci) in &list[..j] {
                if ci == cj {
                    let shown = ctx.show(cj);
                    if flagged.insert(shown.clone()) {
                        diags.push(Diagnostic {
                            code: Code::L005,
                            severity: Severity::Warning,
                            message: format!(
                                "conjunct `{shown}` appears more than once in the same \
                                 conjunction; the duplicate produces no additional \
                                 access points"
                            ),
                            span: Some(ctx.span),
                            notes: vec![],
                        });
                    }
                    continue;
                }
                let (Some((si, pi, ni)), Some((sj, pj, nj))) = (atom_like(ci), atom_like(cj))
                else {
                    continue;
                };
                if si != sj {
                    continue;
                }
                let slots = ctx.sig(si).num_slots();
                let fwd = implies((pi, ni), (pj, nj), slots, universe);
                if fwd == Some(true) {
                    let shown = ctx.show(cj);
                    if flagged.insert(shown.clone()) {
                        let back = implies((pj, nj), (pi, ni), slots, universe);
                        let how = if back == Some(true) {
                            "is equivalent to"
                        } else {
                            "is subsumed by"
                        };
                        diags.push(Diagnostic {
                            code: Code::L005,
                            severity: Severity::Warning,
                            message: format!(
                                "conjunct `{shown}` {how} `{}` over the bounded value \
                                 domain; it adds only redundant access points",
                                ctx.show(ci)
                            ),
                            span: Some(ctx.span),
                            notes: vec![],
                        });
                    }
                }
            }
        }
    }
    (diags, flagged)
}

/// L006: dead conjuncts — replacing the conjunct with `true` leaves the
/// formula (abstractly) unchanged. Conjuncts already flagged by L005 are
/// skipped so each defect gets one finding.
pub(crate) fn check_dead_conjuncts(ctx: &RuleCtx<'_>, skip: &BTreeSet<String>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut lists = Vec::new();
    and_lists(ctx.formula, Vec::new(), &mut lists);
    let mut checked = BTreeSet::new();
    for list in &lists {
        if list.len() < 2 {
            continue;
        }
        for (path, c) in list {
            let shown = ctx.show(c);
            if skip.contains(&shown) || !checked.insert(shown.clone()) {
                continue;
            }
            let without = replace_at_with_true(ctx.formula, path);
            if abstract_equiv(ctx.formula, &without) == Some(true) {
                diags.push(Diagnostic {
                    code: Code::L006,
                    severity: Severity::Warning,
                    message: format!(
                        "conjunct `{shown}` is dead: removing it leaves the \
                         formula unchanged"
                    ),
                    span: Some(ctx.span),
                    notes: vec![],
                });
            }
        }
    }
    diags
}

/// L007: atoms that are semantically constant over the bounded domain —
/// their β entries can never be reached by a concrete action.
pub(crate) fn check_constant_atoms(ctx: &RuleCtx<'_>, universe: &[Value]) -> Vec<Diagnostic> {
    let mut atoms = BTreeSet::new();
    collect_atoms(ctx.formula, &mut atoms);
    let mut diags = Vec::new();
    for key in atoms {
        let AtomKey::Lb(side, pred) = key else {
            continue;
        };
        let slots = ctx.sig(side).num_slots();
        let (mut any_true, mut any_false) = (false, false);
        let complete = for_each_assignment(universe, slots, |vals| {
            if pred.eval(vals) {
                any_true = true;
            } else {
                any_false = true;
            }
        });
        if !complete || (any_true && any_false) {
            continue;
        }
        let verdict = if any_true { "true" } else { "false" };
        let atom = Formula::Atom { side, pred };
        diags.push(Diagnostic {
            code: Code::L007,
            severity: Severity::Warning,
            message: format!(
                "atom `{}` is always {verdict} over the bounded value domain; \
                 the β entries for its other truth value are unreachable",
                ctx.show(&atom)
            ),
            span: Some(ctx.span),
            notes: vec![],
        });
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_spec::{CmpOp, Term};

    fn sig() -> MethodSig {
        MethodSig::new("m", 1)
    }

    fn atom(side: Side, op: CmpOp, rhs: Value) -> Formula {
        Formula::Atom {
            side,
            pred: Pred::new(op, Term::Slot(0), Term::Const(rhs)),
        }
    }

    #[test]
    fn abstract_equiv_basics() {
        let a = Formula::NeqCross { i: 0, j: 0 };
        let b = atom(Side::First, CmpOp::Eq, Value::Int(1));
        assert_eq!(abstract_equiv(&a, &a), Some(true));
        assert_eq!(abstract_equiv(&a, &b), Some(false));
        // Absorption: A && (A || B) ≡ A.
        let absorbed = a.clone().and(a.clone().or(b.clone()));
        assert_eq!(abstract_equiv(&absorbed, &a), Some(true));
    }

    #[test]
    fn universe_includes_spec_constants_and_bool_partner() {
        let phi = atom(Side::First, CmpOp::Eq, Value::Bool(false));
        let u = value_universe(std::iter::once(&phi));
        assert!(u.contains(&Value::Bool(false)));
        assert!(u.contains(&Value::Bool(true)));
        assert!(u.contains(&Value::Nil));
    }

    #[test]
    fn subsumption_detected_over_bounded_domain() {
        // a0 < 1 implies a0 < 2 over {nil, 1, 2, …} (nil orders below ints).
        let tight = atom(Side::First, CmpOp::Lt, Value::Int(1));
        let loose = atom(Side::First, CmpOp::Lt, Value::Int(2));
        let phi = tight.clone().and(loose.clone());
        let u = value_universe(std::iter::once(&phi));
        let s = sig();
        let ctx = RuleCtx {
            formula: &phi,
            sig1: &s,
            sig2: &s,
            span: Span::point(0),
        };
        let (diags, flagged) = check_subsumed(&ctx, &u);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("subsumed"),
            "{}",
            diags[0].message
        );
        // The flagged conjunct is excluded from L006.
        assert!(check_dead_conjuncts(&ctx, &flagged).is_empty());
    }

    #[test]
    fn dead_conjunct_detected_by_absorption() {
        let a = Formula::NeqCross { i: 0, j: 0 };
        let b1 = atom(Side::First, CmpOp::Eq, Value::Int(1));
        // (A || B) && A: the disjunction is dead.
        let phi = a.clone().or(b1).and(a);
        let s = sig();
        let ctx = RuleCtx {
            formula: &phi,
            sig1: &s,
            sig2: &s,
            span: Span::point(0),
        };
        let diags = check_dead_conjuncts(&ctx, &BTreeSet::new());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::L006);
    }

    #[test]
    fn constant_atom_detected() {
        // a0 == a0 is always true.
        let phi = Formula::Atom {
            side: Side::First,
            pred: Pred::new(CmpOp::Eq, Term::Slot(0), Term::Slot(0)),
        }
        .and(Formula::NeqCross { i: 0, j: 0 });
        let u = value_universe(std::iter::once(&phi));
        let s = sig();
        let ctx = RuleCtx {
            formula: &phi,
            sig1: &s,
            sig2: &s,
            span: Span::point(0),
        };
        let diags = check_constant_atoms(&ctx, &u);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::L007);
        assert!(diags[0].message.contains("always true"));
    }

    #[test]
    fn healthy_formula_is_clean() {
        // The dictionary put/put shape: A || (B1 && B2).
        let phi = Formula::NeqCross { i: 0, j: 0 }.or(atom(Side::First, CmpOp::Eq, Value::Int(1))
            .and(atom(Side::Second, CmpOp::Eq, Value::Int(1))));
        let s = MethodSig::new("put", 2);
        let u = value_universe(std::iter::once(&phi));
        let ctx = RuleCtx {
            formula: &phi,
            sig1: &s,
            sig2: &s,
            span: Span::point(0),
        };
        let (d5, flagged) = check_subsumed(&ctx, &u);
        assert!(d5.is_empty(), "{d5:?}");
        assert!(check_dead_conjuncts(&ctx, &flagged).is_empty());
        assert!(check_constant_atoms(&ctx, &u).is_empty());
    }
}
