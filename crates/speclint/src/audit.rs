//! Differential pipeline audit (L009): runs every A.3 optimization pass
//! individually (plus the raw, unoptimized representation and the full
//! pipeline) and checks each resulting translation against the formula
//! semantics on a bounded, exhaustively enumerated action set.
//!
//! Definition 4.5 requires `actions_conflict(a, b) == !commute(a, b)` for
//! every pair of actions; an optimization pass is only admissible if it
//! preserves that equivalence. A mismatch here means either a translation
//! bug or a spec outside the translation's assumptions — both are errors.

use crate::{Code, Diagnostic, Severity};
use crace_core::{translate_with, OptPass, A3_PIPELINE};
use crace_model::{Action, MethodId, ObjId, Value};
use crace_spec::{Formula, Span, Spec};

/// Soft cap on the enumerated action set; beyond it the enumeration is
/// stride-sampled so the quadratic pair check stays cheap.
const MAX_ACTIONS: usize = 160;

/// The bounded value universe for a whole spec: every pairwise formula's
/// constants plus the shared small defaults (see [`crate::passes`]).
pub(crate) fn spec_universe(spec: &Spec) -> Vec<Value> {
    let formulas: Vec<Formula> = (0..spec.num_methods())
        .flat_map(|i| {
            (i..spec.num_methods()).map(move |j| (MethodId(i as u32), MethodId(j as u32)))
        })
        .map(|(m1, m2)| spec.formula(m1, m2))
        .collect();
    crate::passes::value_universe(formulas.iter())
}

/// Enumerates one action per slot assignment over `universe`, for every
/// method, stride-sampled down to roughly [`MAX_ACTIONS`] entries.
pub(crate) fn enumerate_actions(spec: &Spec, universe: &[Value]) -> Vec<Action> {
    let mut out = Vec::new();
    for m in 0..spec.num_methods() {
        let id = MethodId(m as u32);
        let slots = spec.sig(id).num_slots();
        let mut idx = vec![0usize; slots];
        loop {
            let vals: Vec<Value> = idx.iter().map(|&i| universe[i].clone()).collect();
            let (args, ret) = vals.split_at(slots - 1);
            out.push(Action::new(ObjId(0), id, args.to_vec(), ret[0].clone()));
            let mut k = 0;
            loop {
                if k == slots {
                    break;
                }
                idx[k] += 1;
                if idx[k] < universe.len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
            if k == slots {
                break;
            }
        }
    }
    if out.len() > MAX_ACTIONS {
        let stride = out.len().div_ceil(MAX_ACTIONS);
        out = out
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % stride == 0)
            .map(|(_, a)| a)
            .collect();
    }
    out
}

/// Runs the differential audit. `rule_span` maps a method pair to the span
/// of its declared rule so a mismatch can be anchored in the source.
pub(crate) fn audit_pipeline(
    spec: &Spec,
    universe: &[Value],
    rule_span: &dyn Fn(MethodId, MethodId) -> Option<Span>,
) -> Vec<Diagnostic> {
    let variants: [(&str, &[OptPass]); 6] = [
        ("raw", &[]),
        ("consolidate", &[OptPass::Consolidate]),
        ("drop", &[OptPass::Drop]),
        ("replace", &[OptPass::Replace]),
        ("cleanup", &[OptPass::Cleanup]),
        ("full", &A3_PIPELINE),
    ];
    let actions = enumerate_actions(spec, universe);
    let mut diags = Vec::new();
    'variant: for (name, passes) in variants {
        let compiled = match translate_with(spec, passes) {
            Ok(c) => c,
            Err(e) => {
                diags.push(Diagnostic {
                    code: Code::L009,
                    severity: Severity::Error,
                    message: format!("translation variant `{name}` failed: {e}"),
                    span: None,
                    notes: Vec::new(),
                });
                continue;
            }
        };
        for a in &actions {
            for b in &actions {
                let conflict = compiled.actions_conflict(a, b);
                let commute = spec.commute(a, b);
                if conflict == commute {
                    diags.push(Diagnostic {
                        code: Code::L009,
                        severity: Severity::Error,
                        message: format!(
                            "optimization variant `{name}` changed conflict semantics: \
                             `{a}` vs `{b}` — spec says {}, translation says {}",
                            if commute { "commute" } else { "conflict" },
                            if conflict { "conflict" } else { "no conflict" },
                        ),
                        span: rule_span(a.method(), b.method()),
                        notes: vec![format!(
                            "checked {} bounded actions pairwise against Definition 4.5",
                            actions.len()
                        )],
                    });
                    continue 'variant; // first mismatch per variant
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_spec::builtin;

    #[test]
    fn builtins_pass_the_differential_audit() {
        for spec in builtin::all() {
            let universe = spec_universe(&spec);
            let diags = audit_pipeline(&spec, &universe, &|m1, m2| spec.rule_span(m1, m2));
            assert!(diags.is_empty(), "{}: {diags:#?}", spec.name());
        }
    }

    #[test]
    fn action_enumeration_is_capped() {
        let spec = builtin::all()
            .into_iter()
            .find(|s| s.name() == "dictionary_ext")
            .unwrap();
        let universe = spec_universe(&spec);
        let actions = enumerate_actions(&spec, &universe);
        assert!(!actions.is_empty());
        assert!(actions.len() <= MAX_ACTIONS + spec.num_methods());
    }
}
