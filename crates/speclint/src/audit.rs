//! Differential pipeline audit (L009): runs every A.3 optimization pass
//! individually (plus the raw, unoptimized representation and the full
//! pipeline) and checks each resulting translation against the formula
//! semantics on a bounded, exhaustively enumerated action set.
//!
//! Definition 4.5 requires `actions_conflict(a, b) == !commute(a, b)` for
//! every pair of actions; an optimization pass is only admissible if it
//! preserves that equivalence. A mismatch here means either a translation
//! bug or a spec outside the translation's assumptions — both are errors.

use crate::oracle::enumerate_actions;
use crate::{Code, Diagnostic, Severity};
use crace_core::{translate_with, OptPass, A3_PIPELINE};
use crace_model::{MethodId, Value};
use crace_spec::{Span, Spec};

/// Runs the differential audit. `rule_span` maps a method pair to the span
/// of its declared rule so a mismatch can be anchored in the source.
pub(crate) fn audit_pipeline(
    spec: &Spec,
    universe: &[Value],
    rule_span: &dyn Fn(MethodId, MethodId) -> Option<Span>,
) -> Vec<Diagnostic> {
    let variants: [(&str, &[OptPass]); 6] = [
        ("raw", &[]),
        ("consolidate", &[OptPass::Consolidate]),
        ("drop", &[OptPass::Drop]),
        ("replace", &[OptPass::Replace]),
        ("cleanup", &[OptPass::Cleanup]),
        ("full", &A3_PIPELINE),
    ];
    let actions = enumerate_actions(spec, universe);
    let mut diags = Vec::new();
    'variant: for (name, passes) in variants {
        let compiled = match translate_with(spec, passes) {
            Ok(c) => c,
            Err(e) => {
                diags.push(Diagnostic {
                    code: Code::L009,
                    severity: Severity::Error,
                    message: format!("translation variant `{name}` failed: {e}"),
                    span: None,
                    notes: Vec::new(),
                });
                continue;
            }
        };
        for a in &actions {
            for b in &actions {
                let conflict = compiled.actions_conflict(a, b);
                let commute = spec.commute(a, b);
                if conflict == commute {
                    diags.push(Diagnostic {
                        code: Code::L009,
                        severity: Severity::Error,
                        message: format!(
                            "optimization variant `{name}` changed conflict semantics: \
                             `{a}` vs `{b}` — spec says {}, translation says {}",
                            if commute { "commute" } else { "conflict" },
                            if conflict { "conflict" } else { "no conflict" },
                        ),
                        span: rule_span(a.method(), b.method()),
                        notes: vec![format!(
                            "checked {} bounded actions pairwise against Definition 4.5",
                            actions.len()
                        )],
                    });
                    continue 'variant; // first mismatch per variant
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::spec_universe;
    use crace_spec::builtin;

    #[test]
    fn builtins_pass_the_differential_audit() {
        for spec in builtin::all() {
            let universe = spec_universe(&spec);
            let diags = audit_pipeline(&spec, &universe, &|m1, m2| spec.rule_span(m1, m2));
            assert!(diags.is_empty(), "{}: {diags:#?}", spec.name());
        }
    }

    #[test]
    fn action_enumeration_is_capped() {
        let spec = builtin::all()
            .into_iter()
            .find(|s| s.name() == "dictionary_ext")
            .unwrap();
        let universe = spec_universe(&spec);
        let actions = enumerate_actions(&spec, &universe);
        assert!(!actions.is_empty());
        assert!(actions.len() <= crate::oracle::SOFT_ACTION_CAP + spec.num_methods());
    }
}
