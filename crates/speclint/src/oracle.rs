//! The bounded executable-semantics oracle shared by the soundness audit
//! (L010), the precision audit (L011) and the `crace-specsynth` crate.
//!
//! A spec *names* a builtin structure when its spec name matches one of the
//! builtins (`dictionary`, `dictionary_ext`, `set`, `counter`, `register`,
//! `queue`); [`kind_for`] performs that match. Methods are matched by name
//! **and** arity. The oracle then runs real reference semantics
//! ([`step`]) over a small bounded domain of [`initial_states`] and
//! [`arg_tuples`] — sized by [`OracleConfig::max_int`] — and labels every
//! realized action pair commute / non-commute by executing both orders and
//! comparing the returns and the final state ([`realized_pairs`]).
//!
//! Two views of the labels are provided:
//!
//! * [`realized_pairs`] keeps one entry per *execution* (initial state ×
//!   argument tuples × order), with enough detail to print the L010
//!   counterexample notes;
//! * [`labeled_samples`] aggregates executions by their observable slot
//!   vectors. Distinct hidden states can realize the *same* argument/return
//!   vectors with different verdicts (e.g. `(enq(1), deq() -> 1)` commutes
//!   from the one-element queue `[1]` but not from the empty queue), and a
//!   condition over slots cannot tell them apart — so a slot vector is only
//!   labeled *commuting* when **every** realization of it commutes. This is
//!   the precision ground truth: the weakest sound condition expressible
//!   over the slots admits exactly the aggregated-commuting samples.
//!
//! Enumeration is budgeted: a pair whose execution count would exceed
//! [`OracleConfig::max_actions`] is reported as a [`BudgetExceeded`] error
//! (surfaced as a spanned diagnostic by the linter and as a CLI error by
//! `crace synth`, both naming the `--max-actions` override) instead of
//! being silently truncated. The L009 differential audit's
//! [`enumerate_actions`] keeps its deliberate stride-sampling under
//! [`SOFT_ACTION_CAP`]: sampling is sound there (any sampled mismatch is a
//! real mismatch), whereas sampling the soundness or precision audit would
//! silently weaken their claims.

use crace_model::{Action, MethodId, MethodSig, ObjId, Value};
use crace_spec::{Formula, Spec};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Default per-pair execution budget for the realized-execution audits
/// ([`realized_pairs`]); the densest builtin pair (dictionary `put`/`put`)
/// needs 648 executions at the default domain, so the default leaves ample
/// headroom while still catching accidental blow-ups from `--universe`.
pub const DEFAULT_MAX_ACTIONS: usize = 4096;

/// Soft cap on the L009 differential audit's enumerated action set; beyond
/// it [`enumerate_actions`] stride-samples so the quadratic pair check
/// stays cheap. Sampling is sound for that audit (it can only miss
/// mismatches, never invent them), so exceeding this cap is not an error.
pub const SOFT_ACTION_CAP: usize = 160;

/// Bounds of the oracle's enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OracleConfig {
    /// Largest integer used for stored values / elements; the default `2`
    /// reproduces the domains the L010 audit has always used. Dictionary
    /// and set keys stay `{0, 1}` — precision comes from value variety,
    /// key variety only scales the state space.
    pub max_int: i64,
    /// Per-pair execution budget for [`realized_pairs`]; exceeding it is a
    /// [`BudgetExceeded`] error, never a silent truncation.
    pub max_actions: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            max_int: 2,
            max_actions: DEFAULT_MAX_ACTIONS,
        }
    }
}

/// The builtin structure a spec name refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// `dictionary` / `dictionary_ext` — an integer-keyed map.
    Dict,
    /// `set` — a set of small integers.
    Set,
    /// `counter` — a single saturating-free integer counter.
    Counter,
    /// `register` — a single read/write cell.
    Register,
    /// `queue` — a FIFO queue of small integers.
    Queue,
}

/// Maps a spec name to the builtin structure it models, if any.
pub fn kind_for(spec_name: &str) -> Option<Kind> {
    match spec_name {
        "dictionary" | "dictionary_ext" => Some(Kind::Dict),
        "set" => Some(Kind::Set),
        "counter" => Some(Kind::Counter),
        "register" => Some(Kind::Register),
        "queue" => Some(Kind::Queue),
        _ => None,
    }
}

/// Concrete object state of a reference model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum State {
    /// A dictionary's key → value map.
    Map(BTreeMap<i64, Value>),
    /// A set's members.
    Set(BTreeSet<i64>),
    /// A counter's value.
    Counter(i64),
    /// A register's content.
    Register(Value),
    /// A queue's contents, front first.
    Queue(Vec<i64>),
}

impl State {
    /// Human-readable rendering for counterexample notes.
    pub fn show(&self) -> String {
        match self {
            State::Map(m) => {
                let entries: Vec<String> = m.iter().map(|(k, v)| format!("{k}: {v}")).collect();
                format!("{{{}}}", entries.join(", "))
            }
            State::Set(s) => {
                let entries: Vec<String> = s.iter().map(|x| x.to_string()).collect();
                format!("{{{}}}", entries.join(", "))
            }
            State::Counter(n) => n.to_string(),
            State::Register(v) => v.to_string(),
            State::Queue(q) => {
                let entries: Vec<String> = q.iter().map(|x| x.to_string()).collect();
                format!("[{}]", entries.join(", "))
            }
        }
    }
}

/// The bounded initial states a pair audit starts from.
pub fn initial_states(kind: Kind, config: &OracleConfig) -> Vec<State> {
    let max = config.max_int.max(1);
    match kind {
        Kind::Dict => {
            // Every map over keys {0, 1} with values from {absent, 1..max}.
            let mut choices = vec![None];
            choices.extend((1..=max).map(|v| Some(Value::Int(v))));
            let mut out = Vec::new();
            for c0 in &choices {
                for c1 in &choices {
                    let mut m = BTreeMap::new();
                    if let Some(v) = c0 {
                        m.insert(0, v.clone());
                    }
                    if let Some(v) = c1 {
                        m.insert(1, v.clone());
                    }
                    out.push(State::Map(m));
                }
            }
            out
        }
        Kind::Set => (0..4)
            .map(|bits: u32| State::Set((0..2).filter(|k| bits & (1 << k) != 0).collect()))
            .collect(),
        Kind::Counter => vec![State::Counter(0), State::Counter(1)],
        Kind::Register => {
            let mut out = vec![State::Register(Value::Nil)];
            out.extend((1..max).map(|v| State::Register(Value::Int(v))));
            if max == 1 {
                out.push(State::Register(Value::Int(1)));
            }
            out
        }
        Kind::Queue => {
            let mut out = vec![State::Queue(vec![])];
            out.extend((1..=max).map(|x| State::Queue(vec![x])));
            for a in 1..=max {
                for b in (a + 1)..=max {
                    out.push(State::Queue(vec![a, b]));
                }
            }
            out
        }
    }
}

/// Argument tuples for a modeled method, or `None` when the model does not
/// know the method under that name and arity.
pub fn arg_tuples(kind: Kind, sig: &MethodSig, config: &OracleConfig) -> Option<Vec<Vec<Value>>> {
    let max = config.max_int.max(1);
    let keys = || vec![Value::Int(0), Value::Int(1)];
    let vals = move || {
        let mut v = vec![Value::Nil];
        v.extend((1..=max).map(Value::Int));
        v
    };
    let elems = move || (1..=max).map(|x| vec![Value::Int(x)]).collect();
    match (kind, sig.name(), sig.num_args()) {
        (Kind::Dict, "put", 2) => Some(
            keys()
                .into_iter()
                .flat_map(|k| vals().into_iter().map(move |v| vec![k.clone(), v]))
                .collect(),
        ),
        (Kind::Dict, "get" | "remove" | "contains_key", 1) => {
            Some(keys().into_iter().map(|k| vec![k]).collect())
        }
        (Kind::Dict, "size", 0) => Some(vec![vec![]]),
        (Kind::Set, "add" | "remove" | "contains", 1) => {
            Some(keys().into_iter().map(|k| vec![k]).collect())
        }
        (Kind::Set, "size", 0) => Some(vec![vec![]]),
        (Kind::Counter, "inc" | "dec" | "read", 0) => Some(vec![vec![]]),
        (Kind::Register, "write", 1) => Some(elems()),
        (Kind::Register, "read", 0) => Some(vec![vec![]]),
        (Kind::Queue, "enq", 1) => Some(elems()),
        (Kind::Queue, "deq" | "len", 0) => Some(vec![vec![]]),
        _ => None,
    }
}

fn as_int(v: &Value) -> Option<i64> {
    match v {
        Value::Int(n) => Some(*n),
        _ => None,
    }
}

/// Executes one method invocation, returning the next state and the return
/// value. `None` when the method is not modeled.
pub fn step(kind: Kind, state: &State, sig: &MethodSig, args: &[Value]) -> Option<(State, Value)> {
    match (kind, state, sig.name()) {
        (Kind::Dict, State::Map(m), "put") => {
            let k = as_int(&args[0])?;
            let mut m = m.clone();
            // put(k, nil) removes the key; the previous value is returned.
            let prev = if args[1] == Value::Nil {
                m.remove(&k)
            } else {
                m.insert(k, args[1].clone())
            };
            Some((State::Map(m), prev.unwrap_or(Value::Nil)))
        }
        (Kind::Dict, State::Map(m), "get") => {
            let k = as_int(&args[0])?;
            Some((state.clone(), m.get(&k).cloned().unwrap_or(Value::Nil)))
        }
        (Kind::Dict, State::Map(m), "remove") => {
            let k = as_int(&args[0])?;
            let mut m = m.clone();
            let prev = m.remove(&k);
            Some((State::Map(m), prev.unwrap_or(Value::Nil)))
        }
        (Kind::Dict, State::Map(m), "contains_key") => {
            let k = as_int(&args[0])?;
            Some((state.clone(), Value::Bool(m.contains_key(&k))))
        }
        (Kind::Dict, State::Map(m), "size") => Some((state.clone(), Value::Int(m.len() as i64))),
        (Kind::Set, State::Set(s), "add") => {
            let x = as_int(&args[0])?;
            let mut s = s.clone();
            let fresh = s.insert(x);
            Some((State::Set(s), Value::Bool(fresh)))
        }
        (Kind::Set, State::Set(s), "remove") => {
            let x = as_int(&args[0])?;
            let mut s = s.clone();
            let was = s.remove(&x);
            Some((State::Set(s), Value::Bool(was)))
        }
        (Kind::Set, State::Set(s), "contains") => {
            let x = as_int(&args[0])?;
            Some((state.clone(), Value::Bool(s.contains(&x))))
        }
        (Kind::Set, State::Set(s), "size") => Some((state.clone(), Value::Int(s.len() as i64))),
        (Kind::Counter, State::Counter(n), "inc") => Some((State::Counter(n + 1), Value::Nil)),
        (Kind::Counter, State::Counter(n), "dec") => Some((State::Counter(n - 1), Value::Nil)),
        (Kind::Counter, State::Counter(n), "read") => Some((state.clone(), Value::Int(*n))),
        (Kind::Register, State::Register(_), "write") => {
            Some((State::Register(args[0].clone()), Value::Nil))
        }
        (Kind::Register, State::Register(v), "read") => Some((state.clone(), v.clone())),
        (Kind::Queue, State::Queue(q), "enq") => {
            let x = as_int(&args[0])?;
            let mut q = q.clone();
            q.push(x);
            Some((State::Queue(q), Value::Nil))
        }
        (Kind::Queue, State::Queue(q), "deq") => {
            let mut q = q.clone();
            if q.is_empty() {
                Some((State::Queue(q), Value::Nil))
            } else {
                let x = q.remove(0);
                Some((State::Queue(q), Value::Int(x)))
            }
        }
        (Kind::Queue, State::Queue(q), "len") => Some((state.clone(), Value::Int(q.len() as i64))),
        _ => None,
    }
}

/// The enumeration budget for one method pair was exceeded.
///
/// Raised instead of silently truncating: a truncated soundness or
/// precision audit would claim more than it checked. The message names the
/// `--max-actions` override so the caller can raise the budget explicitly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// First method of the pair.
    pub method1: String,
    /// Second method of the pair.
    pub method2: String,
    /// Executions the pair would need.
    pub needed: usize,
    /// The budget that was in force.
    pub max_actions: usize,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bounded audit of (`{}`, `{}`) needs {} realized executions, over the \
             action budget of {}; raise it with `--max-actions N` or shrink \
             `--universe`",
            self.method1, self.method2, self.needed, self.max_actions
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// One realized execution of a method pair: the observable slot vectors
/// (arguments then return, per method), the order they were executed in,
/// the commute verdict, and what the *other* order produced — enough to
/// print a concrete counterexample.
#[derive(Clone, Debug)]
pub struct RealizedPair {
    /// The initial state the pair ran from.
    pub state: State,
    /// `sig1`'s arguments followed by its realized return value.
    pub slots1: Vec<Value>,
    /// `sig2`'s arguments followed by its realized return value.
    pub slots2: Vec<Value>,
    /// Whether `sig1`'s invocation ran first in this realization.
    pub sig1_first: bool,
    /// Whether the reversed order reproduces both returns and the final
    /// state.
    pub commutes: bool,
    /// `sig1`'s return value in the reversed order.
    pub other_ret1: Value,
    /// `sig2`'s return value in the reversed order.
    pub other_ret2: Value,
    /// Final state of the realized order.
    pub end_this: State,
    /// Final state of the reversed order.
    pub end_other: State,
}

/// Executes every bounded initial state × argument tuple combination of
/// `(sig1, sig2)` in both orders and labels each realization.
///
/// Returns `Ok(None)` when either method is not modeled under that name
/// and arity (the pair is skipped, exactly as the L010 audit always has),
/// and [`BudgetExceeded`] when the pair needs more executions than
/// `config.max_actions`.
pub fn realized_pairs(
    kind: Kind,
    sig1: &MethodSig,
    sig2: &MethodSig,
    config: &OracleConfig,
) -> Result<Option<Vec<RealizedPair>>, BudgetExceeded> {
    let (Some(args1), Some(args2)) = (
        arg_tuples(kind, sig1, config),
        arg_tuples(kind, sig2, config),
    ) else {
        return Ok(None);
    };
    let states = initial_states(kind, config);
    let needed = states
        .len()
        .saturating_mul(args1.len())
        .saturating_mul(args2.len())
        .saturating_mul(2);
    if needed > config.max_actions {
        return Err(BudgetExceeded {
            method1: sig1.name().to_string(),
            method2: sig2.name().to_string(),
            needed,
            max_actions: config.max_actions,
        });
    }
    let mut out = Vec::with_capacity(needed);
    for s0 in &states {
        for a1 in &args1 {
            for a2 in &args2 {
                for &sig1_first in &[true, false] {
                    let (fs, fa, ss, sa) = if sig1_first {
                        (sig1, a1, sig2, a2)
                    } else {
                        (sig2, a2, sig1, a1)
                    };
                    let Some((mid, r_first)) = step(kind, s0, fs, fa) else {
                        return Ok(None); // unmodeled state/arg combo: skip pair
                    };
                    let Some((end, r_second)) = step(kind, &mid, ss, sa) else {
                        return Ok(None);
                    };
                    let (mid_b, r2b) = step(kind, s0, ss, sa).expect("modeled above");
                    let (end_b, r1b) = step(kind, &mid_b, fs, fa).expect("modeled above");
                    let commutes = r2b == r_second && r1b == r_first && end_b == end;
                    let slots = |args: &[Value], ret: &Value| {
                        let mut s = args.to_vec();
                        s.push(ret.clone());
                        s
                    };
                    let (slots1, slots2, other_ret1, other_ret2) = if sig1_first {
                        (slots(fa, &r_first), slots(sa, &r_second), r1b, r2b)
                    } else {
                        (slots(sa, &r_second), slots(fa, &r_first), r2b, r1b)
                    };
                    out.push(RealizedPair {
                        state: s0.clone(),
                        slots1,
                        slots2,
                        sig1_first,
                        commutes,
                        other_ret1,
                        other_ret2,
                        end_this: end,
                        end_other: end_b,
                    });
                }
            }
        }
    }
    Ok(Some(out))
}

/// One aggregated observable sample: slot vectors plus the conservative
/// commute label (`true` only when every realization of these slots
/// commutes — see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabeledSample {
    /// `sig1`'s arguments followed by its return value.
    pub slots1: Vec<Value>,
    /// `sig2`'s arguments followed by its return value.
    pub slots2: Vec<Value>,
    /// `true` iff every bounded realization of these slots commutes.
    pub commutes: bool,
}

/// Aggregates [`realized_pairs`] by observable slot vectors (see the
/// module docs for why non-commute wins on conflicts). Samples come out in
/// deterministic (sorted) order.
pub fn labeled_samples(
    kind: Kind,
    sig1: &MethodSig,
    sig2: &MethodSig,
    config: &OracleConfig,
) -> Result<Option<Vec<LabeledSample>>, BudgetExceeded> {
    let Some(pairs) = realized_pairs(kind, sig1, sig2, config)? else {
        return Ok(None);
    };
    Ok(Some(aggregate(&pairs)))
}

/// Aggregates already-realized executions by observable slot vectors.
pub fn aggregate(pairs: &[RealizedPair]) -> Vec<LabeledSample> {
    let mut by_slots: BTreeMap<(Vec<Value>, Vec<Value>), bool> = BTreeMap::new();
    for p in pairs {
        let entry = by_slots
            .entry((p.slots1.clone(), p.slots2.clone()))
            .or_insert(true);
        *entry &= p.commutes;
    }
    by_slots
        .into_iter()
        .map(|((slots1, slots2), commutes)| LabeledSample {
            slots1,
            slots2,
            commutes,
        })
        .collect()
}

/// The bounded value universe for a whole spec: every pairwise formula's
/// constants plus the shared small defaults (see [`crate::passes`]).
pub(crate) fn spec_universe(spec: &Spec) -> Vec<Value> {
    let formulas: Vec<Formula> = (0..spec.num_methods())
        .flat_map(|i| {
            (i..spec.num_methods()).map(move |j| (MethodId(i as u32), MethodId(j as u32)))
        })
        .map(|(m1, m2)| spec.formula(m1, m2))
        .collect();
    crate::passes::value_universe(formulas.iter())
}

/// Enumerates one action per slot assignment over `universe`, for every
/// method, stride-sampled down to roughly [`SOFT_ACTION_CAP`] entries (the
/// L009 differential audit tolerates sampling; see the module docs).
pub fn enumerate_actions(spec: &Spec, universe: &[Value]) -> Vec<Action> {
    let mut out = Vec::new();
    for m in 0..spec.num_methods() {
        let id = MethodId(m as u32);
        let slots = spec.sig(id).num_slots();
        let mut idx = vec![0usize; slots];
        loop {
            let vals: Vec<Value> = idx.iter().map(|&i| universe[i].clone()).collect();
            let (args, ret) = vals.split_at(slots - 1);
            out.push(Action::new(ObjId(0), id, args.to_vec(), ret[0].clone()));
            let mut k = 0;
            loop {
                if k == slots {
                    break;
                }
                idx[k] += 1;
                if idx[k] < universe.len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
            if k == slots {
                break;
            }
        }
    }
    if out.len() > SOFT_ACTION_CAP {
        let stride = out.len().div_ceil(SOFT_ACTION_CAP);
        out = out
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % stride == 0)
            .map(|(_, a)| a)
            .collect();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_spec::builtin;

    fn sig<'a>(spec: &'a Spec, name: &str) -> &'a MethodSig {
        spec.sig(spec.method_id(name).unwrap())
    }

    #[test]
    fn default_config_reproduces_the_historical_domains() {
        let cfg = OracleConfig::default();
        assert_eq!(initial_states(Kind::Dict, &cfg).len(), 9);
        assert_eq!(initial_states(Kind::Set, &cfg).len(), 4);
        assert_eq!(
            initial_states(Kind::Register, &cfg),
            vec![State::Register(Value::Nil), State::Register(Value::Int(1))]
        );
        assert_eq!(initial_states(Kind::Queue, &cfg).len(), 4);
    }

    #[test]
    fn aggregation_is_conservative_across_hidden_states() {
        // (enq(x), deq() -> v): from [v] the pair commutes, from [] the
        // same slots realize only when v == x and do not commute. The
        // aggregated label for any same-value slots must be non-commute.
        let cfg = OracleConfig::default();
        let spec = builtin::all()
            .into_iter()
            .find(|s| s.name() == "queue")
            .unwrap();
        let samples = labeled_samples(Kind::Queue, sig(&spec, "enq"), sig(&spec, "deq"), &cfg)
            .unwrap()
            .unwrap();
        let same = samples
            .iter()
            .find(|s| s.slots1[0] == Value::Int(1) && s.slots2[0] == Value::Int(1))
            .unwrap();
        assert!(!same.commutes, "{same:?}");
        let diff = samples
            .iter()
            .find(|s| s.slots1[0] == Value::Int(1) && s.slots2[0] == Value::Int(2))
            .unwrap();
        assert!(diff.commutes, "{diff:?}");
    }

    #[test]
    fn budget_overflow_is_an_error_not_a_truncation() {
        let cfg = OracleConfig {
            max_int: 2,
            max_actions: 10,
        };
        let spec = builtin::all()
            .into_iter()
            .find(|s| s.name() == "dictionary")
            .unwrap();
        let err = realized_pairs(Kind::Dict, sig(&spec, "put"), sig(&spec, "put"), &cfg)
            .expect_err("put/put needs 648 executions");
        assert_eq!(err.needed, 648);
        assert!(err.to_string().contains("--max-actions"), "{err}");
    }

    #[test]
    fn unmatched_methods_are_skipped_not_errors() {
        let spec =
            crace_spec::parse("spec dictionary { method frobnicate(); commute frobnicate(), frobnicate() when true; }")
                .unwrap();
        let cfg = OracleConfig::default();
        let got = realized_pairs(
            Kind::Dict,
            sig(&spec, "frobnicate"),
            sig(&spec, "frobnicate"),
            &cfg,
        )
        .unwrap();
        assert!(got.is_none());
    }
}
