//! Static analysis ("lint") for ECL commutativity specifications.
//!
//! The paper's guarantees are only as good as the specification itself:
//! ECL membership buys the constant conflict-check bound (§6.1), the
//! Appendix A.3 optimization passes must preserve conflict semantics, and a
//! spec that wrongly asserts commutativity silently makes the detector
//! unsound (Definition 4.2 permits imprecision, never unsoundness). The
//! [`lint`] entry point audits all of this statically, before a spec is
//! trusted, in six passes:
//!
//! 1. **Fragment conformance** — every formula must be in the ECL fragment
//!    ([`Code::L001`], [`Code::L002`]); for conforming specs the static
//!    per-method conflict-check bound of Theorem 6.6 is computed and
//!    reported in the [`Summary`].
//! 2. **Symmetry** — same-method rules must be symmetric in their two
//!    actions ([`Code::L003`]), and a pair declared in both orientations
//!    must agree ([`Code::L004`]).
//! 3. **Access-point diagnostics** — subsumed or duplicate conjuncts
//!    ([`Code::L005`]), dead conjuncts ([`Code::L006`]), semantically
//!    constant atoms whose β entries are unreachable ([`Code::L007`]), and
//!    method pairs silently defaulting to "never commute" ([`Code::L008`]).
//! 4. **Pipeline audit** — each A.3 optimization pass is run individually
//!    and checked differentially against the formula semantics by bounded
//!    exhaustive enumeration ([`Code::L009`]).
//! 5. **Soundness audit** — for specs naming a builtin structure, every
//!    commutativity claim is bounded-model-checked against executable
//!    method semantics; a small counterexample refutes the claim
//!    ([`Code::L010`]).
//! 6. **Precision audit** — the dual direction: a declared condition that
//!    rejects realized pairs which commute from *every* bounded state is
//!    sound but strictly stronger than the weakest bounded condition (the
//!    one `crace synth` generates), and each rejected pair is a false
//!    commutativity race at detection time ([`Code::L011`]).
//!
//! Passes 5–6 share one executable-semantics oracle, [`oracle`], which is
//! public so the `crace-specsynth` crate labels its training pairs with
//! exactly the semantics the linter audits against. The oracle's
//! enumeration is budgeted ([`oracle::OracleConfig::max_actions`]); a pair
//! over budget surfaces as a spanned error naming the `--max-actions`
//! override, never as a silent truncation. [`lint_with`] exposes the knob
//! programmatically.
//!
//! Semantic checks (implication, constancy, the audits) enumerate **bounded
//! value domains** — a handful of small integers, `nil`, and every constant
//! the spec mentions. A clean lint is therefore evidence, not proof: a
//! defect only visible outside the bounded domain escapes passes 3–6
//! (passes 1–2 are exact).
//!
//! # Exit-code contract
//!
//! [`LintReport::exit_code`] is `0` for a clean spec, `2` when only
//! warnings were found, and `3` when any error was found — mirroring the
//! `crace` CLI convention (3 = races found).
//!
//! # Examples
//!
//! ```
//! use crace_speclint::lint;
//! use crace_spec::builtin;
//!
//! let report = lint(builtin::DICTIONARY_SRC).unwrap();
//! assert_eq!(report.exit_code(), 0, "{:?}", report.diagnostics);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod audit;
mod model;
pub mod oracle;
mod passes;
mod render;

use crace_spec::Span;
use std::fmt;

pub use analyze::{lint, lint_with, LintOptions};
pub use passes::abstract_equiv;

/// Severity of a [`Diagnostic`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The spec is usable but suspicious or wasteful.
    Warning,
    /// The spec is broken: outside ECL, inconsistent, or refuted.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes emitted by the linter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// A rule failed to resolve (unknown method, arity mismatch, variable
    /// discipline violation); the rest of the spec is still linted.
    L000,
    /// A rule's formula is outside the ECL fragment (§6.1), so the
    /// per-pair conflict-check count is not constant.
    L001,
    /// A method accumulates more normalized LB atoms than the translation
    /// can enumerate β vectors for.
    L002,
    /// A same-method rule is not symmetric in its two actions
    /// (`ϕ_m^m(x⃗₁;x⃗₂)` must be equivalent to `ϕ_m^m(x⃗₂;x⃗₁)`).
    L003,
    /// The same method pair is declared more than once. An error when the
    /// orientations disagree semantically; a warning when they are
    /// redundant duplicates.
    L004,
    /// A conjunct is subsumed by (or duplicates) another conjunct of the
    /// same conjunction, so it produces redundant access points.
    L005,
    /// A dead conjunct: removing it does not change the formula.
    L006,
    /// A semantically constant atom (always true or always false over the
    /// bounded value domain); its β entries are unreachable.
    L007,
    /// A method pair with no declared rule, silently defaulting to "never
    /// commute" — sound (Definition 4.2) but maximally imprecise.
    L008,
    /// An A.3 optimization pass changed conflict semantics on the bounded
    /// differential audit — a translation bug or a spec outside the
    /// translation's assumptions.
    L009,
    /// The spec claims a pair commutes, but executing the builtin's method
    /// semantics found a small counterexample state where it does not.
    L010,
    /// A declared condition is sound but strictly stronger than the weakest
    /// bounded condition: it rejects realized pairs that commute from every
    /// bounded state, each of which becomes a false commutativity race.
    L011,
}

impl Code {
    /// The stable code string, e.g. `"L003"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::L000 => "L000",
            Code::L001 => "L001",
            Code::L002 => "L002",
            Code::L003 => "L003",
            Code::L004 => "L004",
            Code::L005 => "L005",
            Code::L006 => "L006",
            Code::L007 => "L007",
            Code::L008 => "L008",
            Code::L009 => "L009",
            Code::L010 => "L010",
            Code::L011 => "L011",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a code, a severity, a message, and (when the construct has
/// a source location) a span.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The stable diagnostic code.
    pub code: Code,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Source span of the offending construct, when known.
    pub span: Option<Span>,
    /// Additional context lines (counterexamples, suggestions).
    pub notes: Vec<String>,
}

/// The static conflict-check cost of one method (Theorem 6.6).
#[derive(Clone, Debug)]
pub struct MethodCost {
    /// The method name.
    pub method: String,
    /// The largest number of pairwise conflict checks one invocation can
    /// trigger — constant for ECL specs, independent of trace length.
    pub max_conflict_checks: usize,
}

/// Non-diagnostic facts about the linted spec, reported alongside findings.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// The spec name.
    pub spec_name: String,
    /// Number of declared methods.
    pub methods: usize,
    /// Number of declared rules (before deduplication).
    pub rules: usize,
    /// Whether every usable rule is in the ECL fragment.
    pub is_ecl: bool,
    /// Symbolic points before optimization, when translation succeeded.
    pub raw_classes: Option<usize>,
    /// Access-point classes after optimization.
    pub classes: Option<usize>,
    /// Largest per-class conflict degree (Theorem 6.6 bound).
    pub max_conflict_degree: Option<usize>,
    /// Static per-method conflict-check bounds.
    pub conflict_checks: Vec<MethodCost>,
}

/// The result of linting one spec: a [`Summary`] plus the findings.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Facts about the spec (sizes, translation stats, cost bounds).
    pub summary: Summary,
    /// All findings, ordered by source position then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Whether any finding is a warning.
    pub fn has_warnings(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Warning)
    }

    /// The process exit code for this report: `0` clean, `2` warnings
    /// only, `3` any error.
    pub fn exit_code(&self) -> i32 {
        if self.has_errors() {
            3
        } else if self.has_warnings() {
            2
        } else {
            0
        }
    }

    /// Renders the report as a compiler-style text listing with source
    /// carets, against the source the spec was linted from.
    pub fn render_pretty(&self, source: &str) -> String {
        render::pretty(self, source)
    }

    /// Renders the report as a JSON object (stable shape, hand-written
    /// writer — see the `crace lint --json` documentation).
    pub fn to_json(&self, source: &str) -> String {
        render::json(self, source)
    }
}
