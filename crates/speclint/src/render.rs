//! Report rendering: compiler-style text with source carets, and a
//! stable hand-written JSON shape for tooling.

use crate::{Diagnostic, LintReport, Severity};
use crace_spec::{line_col, render_snippet};
use std::fmt::Write;

/// Renders one report as a text listing against its source.
pub(crate) fn pretty(report: &LintReport, source: &str) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = write!(out, "{}[{}]: {}", d.severity, d.code, d.message);
        if let Some(span) = d.span {
            let (line, col) = line_col(source, span);
            let _ = writeln!(out, " (line {line}, column {col})");
            out.push_str(&render_snippet(source, span));
        } else {
            out.push('\n');
        }
        for note in &d.notes {
            let _ = writeln!(out, "  = {note}");
        }
    }
    let s = &report.summary;
    let _ = writeln!(
        out,
        "spec `{}`: {} method(s), {} rule(s), ECL: {}",
        s.spec_name,
        s.methods,
        s.rules,
        if s.is_ecl { "yes" } else { "no" }
    );
    if let (Some(raw), Some(classes), Some(degree)) =
        (s.raw_classes, s.classes, s.max_conflict_degree)
    {
        let _ = writeln!(
            out,
            "access points: {raw} raw -> {classes} class(es), max conflict degree {degree}"
        );
    }
    if !s.conflict_checks.is_empty() {
        let costs: Vec<String> = s
            .conflict_checks
            .iter()
            .map(|c| format!("{} <= {}", c.method, c.max_conflict_checks))
            .collect();
        let _ = writeln!(out, "conflict checks per invocation: {}", costs.join(", "));
    }
    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = report.diagnostics.len() - errors;
    if report.diagnostics.is_empty() {
        out.push_str("clean: no findings\n");
    } else {
        let _ = writeln!(out, "{errors} error(s), {warnings} warning(s)");
    }
    out
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    let _ = write!(out, "\"{key}\":\"");
    escape(value, out);
    out.push('"');
}

fn push_opt_usize(out: &mut String, key: &str, value: Option<usize>) {
    match value {
        Some(v) => {
            let _ = write!(out, "\"{key}\":{v}");
        }
        None => {
            let _ = write!(out, "\"{key}\":null");
        }
    }
}

fn diagnostic_json(d: &Diagnostic, source: &str, out: &mut String) {
    out.push('{');
    push_str_field(out, "code", d.code.as_str());
    out.push(',');
    push_str_field(out, "severity", &d.severity.to_string());
    out.push(',');
    push_str_field(out, "message", &d.message);
    out.push(',');
    match d.span {
        Some(span) => {
            let (line, col) = line_col(source, span);
            let _ = write!(
                out,
                "\"line\":{line},\"column\":{col},\"span\":{{\"start\":{},\"end\":{}}}",
                span.start, span.end
            );
        }
        None => out.push_str("\"line\":null,\"column\":null,\"span\":null"),
    }
    out.push_str(",\"notes\":[");
    for (i, note) in d.notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape(note, out);
        out.push('"');
    }
    out.push_str("]}");
}

/// Renders one report as a single JSON object. The shape is stable:
/// `spec`, `summary` (sizes, ECL flag, translation stats or `null`, the
/// per-method conflict-check bounds), `diagnostics` (code, severity,
/// message, 1-based line/column or `null`, byte span, notes), and
/// `exit_code`.
pub(crate) fn json(report: &LintReport, source: &str) -> String {
    let mut out = String::new();
    out.push('{');
    push_str_field(&mut out, "spec", &report.summary.spec_name);
    let s = &report.summary;
    let _ = write!(
        out,
        ",\"summary\":{{\"methods\":{},\"rules\":{},\"is_ecl\":{},",
        s.methods, s.rules, s.is_ecl
    );
    push_opt_usize(&mut out, "raw_classes", s.raw_classes);
    out.push(',');
    push_opt_usize(&mut out, "classes", s.classes);
    out.push(',');
    push_opt_usize(&mut out, "max_conflict_degree", s.max_conflict_degree);
    out.push_str(",\"conflict_checks\":[");
    for (i, c) in s.conflict_checks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_str_field(&mut out, "method", &c.method);
        let _ = write!(out, ",\"max_conflict_checks\":{}", c.max_conflict_checks);
        out.push('}');
    }
    out.push_str("]},\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        diagnostic_json(d, source, &mut out);
    }
    let _ = write!(out, "],\"exit_code\":{}}}", report.exit_code());
    out
}

#[cfg(test)]
mod tests {
    use crate::lint;
    use crace_spec::builtin;

    #[test]
    fn pretty_renders_carets_and_summary() {
        let src = "spec s { method m(a) -> r; commute m(x1) -> r1, m(x2) -> r2 when x1 == r1; }";
        let report = lint(src).unwrap();
        let text = report.render_pretty(src);
        assert!(text.contains("error[L003]"), "{text}");
        assert!(text.contains("^"), "{text}");
        assert!(text.contains("1 error(s), 0 warning(s)"), "{text}");
    }

    #[test]
    fn pretty_clean_report() {
        let src = builtin::source("counter").unwrap();
        let report = lint(src).unwrap();
        let text = report.render_pretty(src);
        assert!(text.contains("clean: no findings"), "{text}");
        assert!(text.contains("conflict checks per invocation"), "{text}");
    }

    #[test]
    fn json_is_well_formed_for_clean_and_dirty_reports() {
        let dirty = "spec s { method m(a); commute m(x1), m(x2) when !(x1 != x2); }";
        for src in [builtin::source("dictionary").unwrap(), dirty] {
            let report = lint(src).unwrap();
            let json = report.to_json(src);
            crace_obs::json::validate(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
            assert!(json.contains("\"exit_code\""));
        }
    }

    #[test]
    fn json_escapes_quoted_names() {
        let src = "spec s { method m(a); commute m(x1), m(x2) when !(x1 != x2); }";
        let report = lint(src).unwrap();
        let json = report.to_json(src);
        // Messages quote source constructs with backticks, never raw quotes,
        // but the escaper must keep the output parseable regardless.
        assert!(json.contains("\"code\":\"L001\""), "{json}");
    }
}
