//! The lint driver: lenient resolution, the six analysis passes, and
//! report assembly.

use crate::oracle::{self, OracleConfig};
use crate::{audit, model, passes, Code, Diagnostic, LintReport, MethodCost, Severity, Summary};
use crace_core::{translate, MAX_ATOMS_PER_METHOD};
use crace_model::MethodId;
use crace_spec::{
    is_symmetric, line_col, resolve_methods, resolve_rule, ResolvedRule, Span, SpecBuilder,
    SpecError,
};
use std::collections::{BTreeMap, BTreeSet};

/// Lints one specification source text.
///
/// Unlike [`crace_spec::parse`], broken rules do not abort the analysis:
/// each rule is resolved independently and whole-spec defects become
/// diagnostics, so one report covers everything wrong with the spec.
///
/// # Errors
///
/// Only unrecoverable defects are returned as `Err`: a syntax error, or a
/// method table that cannot be built (duplicate method names). Everything
/// else is a [`Diagnostic`] in the report.
pub fn lint(source: &str) -> Result<LintReport, SpecError> {
    lint_with(source, &LintOptions::default())
}

/// Knobs for [`lint_with`]; [`Default`] reproduces [`lint`].
#[derive(Clone, Copy, Debug)]
pub struct LintOptions {
    /// Per-pair execution budget for the bounded-model audits (L010/L011);
    /// surfaced on the CLI as `crace lint --max-actions N`. A pair over
    /// budget becomes a spanned error, never a silent truncation.
    pub max_actions: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            max_actions: oracle::DEFAULT_MAX_ACTIONS,
        }
    }
}

/// [`lint`] with explicit [`LintOptions`].
///
/// # Errors
///
/// Same contract as [`lint`].
pub fn lint_with(source: &str, options: &LintOptions) -> Result<LintReport, SpecError> {
    let ast = crace_spec::parse_ast(source)?;
    let methods = resolve_methods(&ast)?;
    let mut diags: Vec<Diagnostic> = Vec::new();

    // Lenient per-rule resolution: broken rules become L000, the rest of
    // the spec is still analyzed.
    let mut resolved: Vec<ResolvedRule> = Vec::new();
    for rule in &ast.rules {
        match resolve_rule(rule, &methods) {
            Ok(r) => resolved.push(r),
            Err(e) => diags.push(Diagnostic {
                code: Code::L000,
                severity: Severity::Error,
                message: e.message().to_string(),
                span: Some(e.span()),
                notes: Vec::new(),
            }),
        }
    }

    // Pass 2a (L003): same-method rules must be symmetric in their actions.
    let mut usable: Vec<&ResolvedRule> = Vec::new();
    for r in &resolved {
        if r.m1 == r.m2 && !is_symmetric(&r.formula) {
            let name = methods[r.m1.index()].name();
            diags.push(Diagnostic {
                code: Code::L003,
                severity: Severity::Error,
                message: format!(
                    "rule for (`{name}`, `{name}`) is not symmetric in its two \
                     actions; ϕ(x⃗₁;x⃗₂) must be equivalent to ϕ(x⃗₂;x⃗₁)"
                ),
                span: Some(r.formula_span),
                notes: vec![
                    "the two actions of a same-method pair are interchangeable, so an \
                     asymmetric condition cannot define their commutativity"
                        .to_string(),
                ],
            });
        } else {
            usable.push(r);
        }
    }

    // Pass 2b (L004): a pair declared more than once — possibly in the two
    // orientations — must agree. `resolve_rule` canonicalizes orientation,
    // so agreement is plain formula equivalence.
    let mut kept: BTreeMap<(MethodId, MethodId), &ResolvedRule> = BTreeMap::new();
    for r in usable {
        let Some(first) = kept.get(&(r.m1, r.m2)) else {
            kept.insert((r.m1, r.m2), r);
            continue;
        };
        let (n1, n2) = (methods[r.m1.index()].name(), methods[r.m2.index()].name());
        let orientation = if r.swapped != first.swapped {
            " in both orientations"
        } else {
            ""
        };
        let first_line = line_col(source, first.span).0;
        if passes::abstract_equiv(&first.formula, &r.formula) == Some(true) {
            diags.push(Diagnostic {
                code: Code::L004,
                severity: Severity::Warning,
                message: format!(
                    "pair (`{n1}`, `{n2}`) is declared more than once{orientation} \
                     with equivalent conditions; remove the duplicate"
                ),
                span: Some(r.span),
                notes: vec![format!("first declared at line {first_line}")],
            });
        } else {
            diags.push(Diagnostic {
                code: Code::L004,
                severity: Severity::Error,
                message: format!(
                    "pair (`{n1}`, `{n2}`) is declared more than once{orientation} \
                     with disagreeing conditions"
                ),
                span: Some(r.span),
                notes: vec![format!(
                    "first declared at line {first_line}; after orienting both \
                     declarations to (`{n1}`, `{n2}`) the conditions differ"
                )],
            });
        }
    }

    // Pass 1 (L001): fragment conformance per kept rule.
    for ((m1, m2), r) in &kept {
        if !r.formula.fragment().is_ecl {
            let (n1, n2) = (methods[m1.index()].name(), methods[m2.index()].name());
            diags.push(Diagnostic {
                code: Code::L001,
                severity: Severity::Error,
                message: format!(
                    "condition for (`{n1}`, `{n2}`) is outside the ECL fragment \
                     (§6.1: X ::= S | B | X∧X | X∨B)"
                ),
                span: Some(r.formula_span),
                notes: vec![
                    "outside ECL the per-invocation conflict-check count is no longer \
                     bounded by a spec-only constant (Theorem 6.6)"
                        .to_string(),
                ],
            });
        }
    }

    // Build the deep-analysis spec from the kept rules. Rules that already
    // produced an error are omitted; the pair then defaults to "never
    // commute", exactly what the detector itself would do.
    let mut builder = SpecBuilder::new(ast.name.clone());
    for m in &methods {
        builder.method(m.name(), m.num_args());
    }
    let mut pair_spans: BTreeMap<(MethodId, MethodId), (Span, Span)> = BTreeMap::new();
    for ((m1, m2), r) in &kept {
        if builder.rule(*m1, *m2, r.formula.clone()).is_ok() {
            pair_spans.insert((*m1, *m2), (r.span, r.formula_span));
        }
    }
    let spec = builder.finish()?;
    let span_of = |m1: MethodId, m2: MethodId| -> Option<Span> {
        let key = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        pair_spans.get(&key).map(|(s, _)| *s)
    };

    // Pass 1 (L002): the β-vector enumeration bound.
    for m in 0..spec.num_methods() {
        let id = MethodId(m as u32);
        let atoms = spec.lb_atoms(id).len();
        if atoms > MAX_ATOMS_PER_METHOD {
            let span = kept
                .iter()
                .filter(|((m1, m2), _)| *m1 == id || *m2 == id)
                .map(|(_, r)| r.span)
                .min_by_key(|s| s.start);
            diags.push(Diagnostic {
                code: Code::L002,
                severity: Severity::Error,
                message: format!(
                    "method `{}` accumulates {atoms} single-action atoms across its \
                     rules; the translation enumerates at most {MAX_ATOMS_PER_METHOD} \
                     β entries per method",
                    spec.sig(id).name()
                ),
                span,
                notes: Vec::new(),
            });
        }
    }

    // Pass 3 (L005/L006/L007): conjunct diagnostics per kept rule, over the
    // shared bounded value universe.
    let universe = oracle::spec_universe(&spec);
    for ((m1, m2), r) in &kept {
        let ctx = passes::RuleCtx {
            formula: &r.formula,
            sig1: spec.sig(*m1),
            sig2: spec.sig(*m2),
            span: r.formula_span,
        };
        let (subsumed, flagged) = passes::check_subsumed(&ctx, &universe);
        diags.extend(subsumed);
        diags.extend(passes::check_dead_conjuncts(&ctx, &flagged));
        diags.extend(passes::check_constant_atoms(&ctx, &universe));
    }

    // Pass 3 (L008): pairs silently defaulting to "never commute". Pairs
    // the source *did* declare (even brokenly) already carry their own
    // diagnostic and are not re-reported here.
    let declared: BTreeSet<(MethodId, MethodId)> = resolved.iter().map(|r| (r.m1, r.m2)).collect();
    for (m1, m2) in spec.missing_rules() {
        if declared.contains(&(m1, m2)) {
            continue;
        }
        let (n1, n2) = (spec.sig(m1).name(), spec.sig(m2).name());
        diags.push(Diagnostic {
            code: Code::L008,
            severity: Severity::Warning,
            message: format!(
                "no rule for pair (`{n1}`, `{n2}`); it silently defaults to \
                 \"never commute\""
            ),
            span: Some(ast.name_span),
            notes: vec![
                "the default is sound (Definition 4.2) but maximally imprecise: every \
                 concurrent use of the pair becomes a race candidate"
                    .to_string(),
            ],
        });
    }

    // Summary stats, pass 4 (L009) and passes 5-6 (L010/L011). Translation
    // stats and the differential pipeline audit need a translatable (ECL,
    // bounded) spec; the model audits only need the formula semantics.
    let mut summary = Summary {
        spec_name: ast.name.clone(),
        methods: spec.num_methods(),
        rules: ast.rules.len(),
        is_ecl: spec.is_ecl(),
        ..Summary::default()
    };
    if let Ok(compiled) = translate(&spec) {
        let stats = compiled.stats();
        summary.raw_classes = Some(stats.raw_classes);
        summary.classes = Some(compiled.num_classes());
        summary.max_conflict_degree = Some(stats.max_conflict_degree);
        summary.conflict_checks = (0..spec.num_methods())
            .map(|m| {
                let id = MethodId(m as u32);
                MethodCost {
                    method: spec.sig(id).name().to_string(),
                    max_conflict_checks: compiled.max_conflict_checks(id),
                }
            })
            .collect();
        diags.extend(audit::audit_pipeline(&spec, &universe, &span_of));
    }
    let ruled: BTreeSet<(MethodId, MethodId)> = pair_spans.keys().cloned().collect();
    let oracle_cfg = OracleConfig {
        max_actions: options.max_actions,
        ..OracleConfig::default()
    };
    diags.extend(model::audit_model(&spec, &ruled, &span_of, &oracle_cfg));

    diags.sort_by_key(|d| (d.span.map_or(u32::MAX, |s| s.start), d.code));
    Ok(LintReport {
        summary,
        diagnostics: diags,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_spec::builtin;

    fn codes(report: &LintReport) -> Vec<Code> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn precise_builtins_lint_clean() {
        for name in ["dictionary", "dictionary_ext", "set", "counter"] {
            let source = builtin::source(name).unwrap();
            let report = lint(source).unwrap();
            assert_eq!(report.exit_code(), 0, "{name}: {:#?}", report.diagnostics);
            assert!(report.summary.is_ecl);
            assert!(report.summary.classes.is_some());
            assert!(!report.summary.conflict_checks.is_empty());
        }
    }

    #[test]
    fn underclaiming_builtins_lint_with_l011_warnings_only() {
        // register and queue deliberately under-claim (their precise
        // conditions are outside ECL — see the builtin sources); the
        // precision audit documents that as warnings, nothing else fires.
        for name in ["register", "queue"] {
            let source = builtin::source(name).unwrap();
            let report = lint(source).unwrap();
            assert_eq!(report.exit_code(), 2, "{name}: {:#?}", report.diagnostics);
            assert!(
                report.diagnostics.iter().all(|d| d.code == Code::L011),
                "{name}: {:#?}",
                report.diagnostics
            );
            assert!(report.summary.is_ecl);
        }
    }

    #[test]
    fn max_actions_budget_overflow_is_a_spanned_l010_error() {
        let report = lint_with(builtin::DICTIONARY_SRC, &LintOptions { max_actions: 100 }).unwrap();
        assert_eq!(report.exit_code(), 3, "{:#?}", report.diagnostics);
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.code == Code::L010 && d.message.contains("--max-actions")));
        assert!(report.diagnostics.iter().all(|d| d.span.is_some()));
        // A raised budget restores the clean verdict.
        let report = lint_with(
            builtin::DICTIONARY_SRC,
            &LintOptions {
                max_actions: 10_000,
            },
        )
        .unwrap();
        assert_eq!(report.exit_code(), 0, "{:#?}", report.diagnostics);
    }

    #[test]
    fn l000_broken_rule_does_not_abort() {
        let report =
            lint("spec s { method m(); commute m(), q() when true; commute m(), m() when true; }")
                .unwrap();
        assert_eq!(codes(&report), vec![Code::L000]);
        assert_eq!(report.exit_code(), 3);
        assert!(report.diagnostics[0].message.contains("unknown method"));
    }

    #[test]
    fn l001_non_ecl_formula() {
        let report =
            lint("spec s { method m(a); commute m(x1), m(x2) when !(x1 != x2); }").unwrap();
        assert_eq!(codes(&report), vec![Code::L001]);
        assert_eq!(report.exit_code(), 3);
        assert!(!report.summary.is_ecl);
    }

    #[test]
    fn l002_too_many_atoms() {
        let n = MAX_ATOMS_PER_METHOD + 1;
        let args: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
        let xs: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
        let conds: Vec<String> = xs.iter().map(|x| format!("{x} == 1")).collect();
        let src = format!(
            "spec s {{ method m({}); method u(); \
             commute m({}) -> _, u() when {}; \
             commute m({}) -> _, m({}) -> _ when false; \
             commute u(), u() when true; }}",
            args.join(", "),
            xs.join(", "),
            conds.join(" && "),
            args.join(", "),
            xs.join(", "),
        );
        let report = lint(&src).unwrap();
        assert!(
            codes(&report).contains(&Code::L002),
            "{:#?}",
            report.diagnostics
        );
        assert_eq!(report.exit_code(), 3);
    }

    #[test]
    fn l003_asymmetric_same_method_rule() {
        let report =
            lint("spec s { method m(a) -> r; commute m(x1) -> r1, m(x2) -> r2 when x1 == r1; }")
                .unwrap();
        assert_eq!(codes(&report), vec![Code::L003]);
        assert_eq!(report.exit_code(), 3);
    }

    #[test]
    fn l004_disagreeing_orientations() {
        let report = lint(
            "spec s { method a(x); method b(y); \
             commute a(x1), b(y2) when x1 == 1; \
             commute b(y1), a(x2) when true; \
             commute a(x1), a(x2) when true; \
             commute b(y1), b(y2) when true; }",
        )
        .unwrap();
        assert_eq!(codes(&report), vec![Code::L004]);
        assert_eq!(report.exit_code(), 3);
        assert!(report.diagnostics[0].message.contains("orientations"));
    }

    #[test]
    fn l004_redundant_duplicate_is_a_warning() {
        let report = lint(
            "spec s { method m(); \
             commute m(), m() when true; \
             commute m(), m() when true; }",
        )
        .unwrap();
        assert_eq!(codes(&report), vec![Code::L004]);
        assert_eq!(report.exit_code(), 2);
    }

    #[test]
    fn l005_subsumed_conjunct() {
        let report = lint(
            "spec s { method m(a); \
             commute m(x1), m(x2) when (x1 < 1 && x1 < 2) && (x2 < 1 && x2 < 2); }",
        )
        .unwrap();
        assert_eq!(codes(&report), vec![Code::L005, Code::L005]);
        assert_eq!(report.exit_code(), 2);
    }

    #[test]
    fn l006_dead_conjunct() {
        let report = lint(
            "spec s { method m(a); \
             commute m(x1), m(x2) when (x1 != x2 || x1 == 1) && (x1 != x2 || x2 == 1) \
             && x1 != x2; }",
        )
        .unwrap();
        assert_eq!(codes(&report), vec![Code::L006, Code::L006]);
        assert_eq!(report.exit_code(), 2);
    }

    #[test]
    fn l007_constant_atom() {
        let report = lint(
            "spec s { method m(a); \
             commute m(x1), m(x2) when x1 != x2 && x1 == x1 && x2 == x2; }",
        )
        .unwrap();
        assert_eq!(codes(&report), vec![Code::L007, Code::L007]);
        assert_eq!(report.exit_code(), 2);
    }

    #[test]
    fn l008_missing_pair() {
        let report = lint(
            "spec s { method a(); method b(); \
             commute a(), a() when true; \
             commute b(), b() when true; }",
        )
        .unwrap();
        assert_eq!(codes(&report), vec![Code::L008]);
        assert_eq!(report.exit_code(), 2);
        assert!(report.diagnostics[0].message.contains("`a`"));
    }

    #[test]
    fn l010_refuted_commute_claim() {
        let src =
            builtin::DICTIONARY_SRC.replace("when k1 != k2 || (v1 == p1 && v2 == p2)", "when true");
        let report = lint(&src).unwrap();
        assert_eq!(codes(&report), vec![Code::L010]);
        assert_eq!(report.exit_code(), 3);
    }

    #[test]
    fn diagnostics_are_ordered_by_source_position() {
        let report = lint(
            "spec s { method m(a) -> r; method u(); \
             commute m(x1) -> r1, m(x2) -> r2 when x1 == r1; \
             commute u(), q() when true; }",
        )
        .unwrap();
        let starts: Vec<u32> = report
            .diagnostics
            .iter()
            .filter_map(|d| d.span.map(|s| s.start))
            .collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
        assert_eq!(report.exit_code(), 3);
    }
}
