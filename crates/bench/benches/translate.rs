//! Cost of the ECL → access-point translation (§6.2) and its optimization
//! pipeline (Appendix A.3), over the builtin specifications and a family
//! of synthetic specifications of growing size.

use crace_bench::synthetic_spec;
use crace_core::translate;
use crace_spec::builtin;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_builtins(c: &mut Criterion) {
    let mut group = c.benchmark_group("translate_builtin");
    for spec in builtin::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.name().to_string()),
            &spec,
            |b, spec| b.iter(|| translate(spec).expect("ECL")),
        );
    }
    group.finish();
}

fn bench_synthetic(c: &mut Criterion) {
    let mut group = c.benchmark_group("translate_synthetic");
    // Scaling in method count (atoms fixed)…
    for methods in [2usize, 4, 8] {
        let spec = synthetic_spec(methods, 2);
        group.bench_with_input(BenchmarkId::new("methods", methods), &spec, |b, spec| {
            b.iter(|| translate(spec).expect("ECL"))
        });
    }
    // …and in atoms per method (β enumeration is exponential in this).
    for atoms in [1usize, 3, 5, 7] {
        let spec = synthetic_spec(2, atoms);
        group.bench_with_input(BenchmarkId::new("atoms", atoms), &spec, |b, spec| {
            b.iter(|| translate(spec).expect("ECL"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_builtins, bench_synthetic);
criterion_main!(benches);
