//! Vector-clock primitive costs at growing thread counts — the substrate
//! every detector's per-event cost stands on.

use crace_model::ThreadId;
use crace_vclock::{Epoch, VectorClock};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn clocks(dim: usize) -> (VectorClock, VectorClock) {
    let a = VectorClock::from_components((0..dim as u64).map(|i| i * 3 + 1));
    let b = VectorClock::from_components((0..dim as u64).map(|i| (dim as u64 - i) * 2 + 1));
    (a, b)
}

fn bench_vclock(c: &mut Criterion) {
    let mut group = c.benchmark_group("vclock");
    for &dim in &[4usize, 16, 64, 256] {
        let (a, b) = clocks(dim);
        group.bench_with_input(BenchmarkId::new("le", dim), &dim, |bench, _| {
            bench.iter(|| black_box(&a).le(black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("join", dim), &dim, |bench, _| {
            bench.iter(|| black_box(&a).join(black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("clone", dim), &dim, |bench, _| {
            bench.iter(|| black_box(&a).clone())
        });
        // The FastTrack fast path: one component vs the whole vector.
        let e = Epoch::of(ThreadId(dim as u32 / 2), &a);
        group.bench_with_input(BenchmarkId::new("epoch_le", dim), &dim, |bench, _| {
            bench.iter(|| black_box(e).le_clock(black_box(&b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vclock);
criterion_main!(benches);
