//! Cost of the spec linter's full five-pass analysis, over the builtin
//! specifications and synthetic specifications of growing size. The
//! soundness audit (L010) only engages for builtin-named specs, so the
//! builtin group includes the bounded model checking and the synthetic
//! group isolates the formula/pipeline passes.

use crace_bench::synthetic_spec;
use crace_spec::builtin;
use crace_speclint::lint;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_builtins(c: &mut Criterion) {
    let mut group = c.benchmark_group("speclint_builtin");
    for name in ["dictionary", "dictionary_ext", "set", "queue"] {
        let source = builtin::source(name).expect("builtin source");
        group.bench_with_input(BenchmarkId::from_parameter(name), &source, |b, src| {
            b.iter(|| lint(src).expect("parseable"))
        });
    }
    group.finish();
}

fn bench_synthetic(c: &mut Criterion) {
    let mut group = c.benchmark_group("speclint_synthetic");
    for methods in [2usize, 4, 8] {
        let source = synthetic_spec(methods, 2).to_source();
        group.bench_with_input(BenchmarkId::new("methods", methods), &source, |b, src| {
            b.iter(|| lint(src).expect("parseable"))
        });
    }
    for atoms in [1usize, 3, 5] {
        let source = synthetic_spec(2, atoms).to_source();
        group.bench_with_input(BenchmarkId::new("atoms", atoms), &source, |b, src| {
            b.iter(|| lint(src).expect("parseable"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_builtins, bench_synthetic);
criterion_main!(benches);
