//! Cost of systematic schedule exploration: DPOR (sleep sets keyed on
//! access points) vs brute-force enumeration on programs with a growing
//! independent fringe.
//!
//! The program shape is two threads racing on one key plus `k` threads on
//! private keys: brute force pays for every interleaving of the
//! independent threads while DPOR collapses them, so the gap between
//! adjacent rows is the measured value of commutativity-aware pruning —
//! the same asymptotic separation Table 2 shows for detection, replayed
//! at the schedule-space level.

use crace_model::Value;
use crace_runtime::explore::{explore, ExploreConfig};
use crace_runtime::sim::{SimOp, SimProgram};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Two racing threads on key 0, plus `independent` single-put threads on
/// private keys.
fn racy_plus_fringe(independent: usize) -> SimProgram {
    let mut threads = vec![
        vec![SimOp::DictPut {
            dict: 0,
            key: Value::Int(0),
            value: Value::Int(1),
        }],
        vec![SimOp::DictPut {
            dict: 0,
            key: Value::Int(0),
            value: Value::Int(2),
        }],
    ];
    for i in 0..independent {
        threads.push(vec![SimOp::DictPut {
            dict: 0,
            key: Value::Int(100 + i as i64),
            value: Value::Int(1),
        }]);
    }
    SimProgram {
        num_dicts: 1,
        num_locks: 0,
        threads,
    }
}

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_space");
    for &independent in &[1usize, 2, 3, 4] {
        let program = racy_plus_fringe(independent);
        group.bench_with_input(
            BenchmarkId::new("dpor", independent),
            &program,
            |b, program| {
                b.iter(|| explore(program, &ExploreConfig::default()));
            },
        );
        // Brute force is factorial in the fringe; the shared sizes keep
        // wall-clock sane while the gap is already decisive.
        group.bench_with_input(
            BenchmarkId::new("brute", independent),
            &program,
            |b, program| {
                b.iter(|| {
                    explore(
                        program,
                        &ExploreConfig {
                            dpor: false,
                            ..ExploreConfig::default()
                        },
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
