//! Per-event detector cost on recorded traces — the microscopic view of
//! the Table 2 overhead columns.
//!
//! Replays the same mixed dictionary trace into RD2 (in both clock
//! representations: the adaptive epoch fast path and the full-vector
//! reference, so the before/after cost of the epoch compression is a
//! single diff of adjacent rows), the sharded live `Rd2` analysis, and the
//! direct detector, and an equally-sized read/write trace into FastTrack,
//! so the per-event costs are directly comparable. The epoch-hit rate of
//! the benchmarked trace is printed alongside the timings.

use crace_bench::{local_dict_trace, mixed_dict_trace, rw_trace, sharded_dict_trace, OBJ};
use crace_core::{
    translate, Checkpoint, ClockMode, Direct, ParallelConfig, ParallelRd2, Rd2, TraceDetector,
};
use crace_fasttrack::FastTrack;
use crace_model::{replay, Analysis, Isolated, NoopAnalysis, ObjId, Observer};
use crace_obs::{Registry, Tracer};
use crace_spec::builtin;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

const N: usize = 10_000;

/// Span-sampling period of the `-traced` rows: the tracer's cost is
/// amortized 1-in-64 exactly as `crace replay --trace-out` configures it.
const TRACE_SAMPLE_EVERY: u64 = 64;

/// Workload shape of the sharded parallel rows (10× longer trace so the
/// fixed thread-spawn cost does not drown the per-event story).
const SHARD_N: usize = 10 * N;
const SHARD_THREADS: u32 = 256;
const SHARD_OBJECTS: u64 = 48;

/// Worker widths measured by the `rd2-parallel-w*` rows.
const WORKER_WIDTHS: [usize; 5] = [1, 2, 4, 8, 16];

fn bench_per_event(c: &mut Criterion) {
    let spec = builtin::dictionary();
    let compiled = Arc::new(translate(&spec).expect("ECL"));
    let dict_trace = mixed_dict_trace(N, 4, 64, 0xFEED);
    let local_trace = local_dict_trace(N, 4, 64, 0xFEED);
    let mem_trace = rw_trace(N, 4, 256, 0xFEED);

    // How compressible each trace's access points are: replay once and
    // report the phase-2 update breakdown.
    for (name, trace) in [("mixed", &dict_trace), ("local", &local_trace)] {
        let detector = TraceDetector::new();
        detector.register(OBJ, Arc::clone(&compiled));
        replay(trace, &detector);
        println!(
            "per_event: {name} trace adaptive clock updates: {}",
            detector.clock_stats()
        );
    }

    let mut group = c.benchmark_group("per_event");
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function("noop", |b| {
        b.iter(|| replay(&dict_trace, &NoopAnalysis::new()));
    });

    group.bench_function("rd2-adaptive", |b| {
        b.iter(|| {
            let detector = TraceDetector::new();
            detector.register(OBJ, Arc::clone(&compiled));
            replay(&dict_trace, &detector)
        });
    });

    // The panic shield: the same adaptive run through `Isolated` — the
    // row EXPERIMENTS.md quotes for the chaos plane's hot-path overhead
    // (one quarantine load plus a `catch_unwind` frame per dispatch).
    group.bench_function("rd2-adaptive-isolated", |b| {
        b.iter(|| {
            let detector = TraceDetector::new();
            detector.register(OBJ, Arc::clone(&compiled));
            replay(&dict_trace, &Isolated::new(detector))
        });
    });

    // The tracing plane's hot-path overhead: the same adaptive run with a
    // live tracer sampling `rd2.on_action` spans 1-in-64 — the row the
    // acceptance gate holds within 1.05× of `rd2-adaptive`. The tracer
    // outlives the iterations (lanes are keyed by name, so every
    // iteration reuses the same bounded ring).
    {
        let tracer = Tracer::new();
        group.bench_function("rd2-adaptive-traced", |b| {
            b.iter(|| {
                let detector = TraceDetector::with_tracer(&tracer, TRACE_SAMPLE_EVERY);
                detector.register(OBJ, Arc::clone(&compiled));
                replay(&dict_trace, &detector)
            });
        });
    }

    group.bench_function("rd2-fullvector", |b| {
        b.iter(|| {
            let detector = TraceDetector::with_mode(ClockMode::FullVector);
            detector.register(OBJ, Arc::clone(&compiled));
            replay(&dict_trace, &detector)
        });
    });

    // The thread-local trace: the epoch fast path's best case (every
    // phase-2 update stays an O(1) epoch overwrite) vs the same trace on
    // full vectors. The gap widens with the thread count, since a full
    // vector join is O(threads) while an epoch overwrite stays O(1).
    for threads in [4u32, 16, 64] {
        let local = local_dict_trace(N, threads, 64, 0xFEED);
        group.bench_function(format!("rd2-adaptive-local-t{threads}"), |b| {
            b.iter(|| {
                let detector = TraceDetector::new();
                detector.register(OBJ, Arc::clone(&compiled));
                replay(&local, &detector)
            });
        });
        group.bench_function(format!("rd2-fullvector-local-t{threads}"), |b| {
            b.iter(|| {
                let detector = TraceDetector::with_mode(ClockMode::FullVector);
                detector.register(OBJ, Arc::clone(&compiled));
                replay(&local, &detector)
            });
        });
    }

    // The same adaptive run through the Observer tee — the row EXPERIMENTS.md
    // quotes for the tee's per-event overhead. Once at the default 1-in-64
    // latency sampling, once with sampling disabled (counters only), so the
    // cost of the two Instant reads is its own diff.
    group.bench_function("rd2-adaptive-observed", |b| {
        b.iter(|| {
            let detector = TraceDetector::new();
            detector.register(OBJ, Arc::clone(&compiled));
            replay(&dict_trace, &Observer::new(detector))
        });
    });

    group.bench_function("rd2-adaptive-observed-nosample", |b| {
        b.iter(|| {
            let detector = TraceDetector::new();
            detector.register(OBJ, Arc::clone(&compiled));
            let observer = Observer::with_sampling(detector, Arc::new(Registry::new()), 0);
            replay(&dict_trace, &observer)
        });
    });

    // One observed replay with its snapshot printed, so a bench run
    // doubles as a smoke test of the metrics surface.
    {
        let detector = TraceDetector::new();
        detector.register(OBJ, Arc::clone(&compiled));
        let observer = Observer::new(detector);
        replay(&dict_trace, &observer);
        println!(
            "per_event: observed rd2 snapshot:\n{}",
            observer.snapshot().to_pretty()
        );
    }

    // The live sharded analysis (published clock snapshots, per-object
    // mutexes) driven from one thread — measures hot-path bookkeeping, not
    // contention.
    group.bench_function("rd2-live", |b| {
        b.iter(|| {
            let detector = Rd2::new();
            detector.register(OBJ, Arc::clone(&compiled));
            replay(&dict_trace, &detector)
        });
    });

    // The direct detector is quadratic: run it on a 10× smaller trace and
    // report per-element cost (still ~10× worse per event at this size).
    let small_trace = mixed_dict_trace(N / 10, 4, 64, 0xFEED);
    group.bench_function("direct", |b| {
        b.iter(|| {
            let detector = Direct::new();
            detector.register(OBJ, Arc::new(spec.clone()));
            replay(&small_trace, &detector)
        });
    });

    group.bench_function("fasttrack", |b| {
        b.iter(|| {
            let detector = FastTrack::new();
            replay(&mem_trace, &detector)
        });
    });

    // The sharded parallel pipeline vs the serial replay paths, all on the
    // same many-thread multi-dictionary trace. The serial trace detector
    // pays a sync-clock clone per action (O(threads), and this trace has
    // 256 threads precisely because many-thread traces are where the
    // pipeline earns its keep); the pipeline's workers read `Arc`'d
    // clocks the ingress replayed once, so the pipeline comes out ahead
    // even on one CPU, and on many CPUs the shards additionally detect
    // concurrently. Each iteration builds the whole pipeline (thread
    // spawn included) and ends with the report barrier, so setup and
    // merge are priced in — which is why these rows use a 10× longer
    // trace: spawning N worker threads is a fixed millisecond-scale cost
    // that would otherwise drown the per-event story for both sides.
    let sharded = Arc::new(sharded_dict_trace(
        SHARD_N,
        SHARD_THREADS,
        SHARD_OBJECTS,
        16,
        0xFEED,
    ));
    let objects: Vec<ObjId> = (1..=SHARD_OBJECTS).map(ObjId).collect();
    group.throughput(Throughput::Elements(SHARD_N as u64));

    group.bench_function("rd2-serial-sharded", |b| {
        b.iter(|| {
            let detector = TraceDetector::new();
            for &obj in &objects {
                detector.register(obj, Arc::clone(&compiled));
            }
            replay(&sharded, &detector)
        });
    });

    group.bench_function("rd2-live-sharded", |b| {
        b.iter(|| {
            let detector = Rd2::new();
            for &obj in &objects {
                detector.register(obj, Arc::clone(&compiled));
            }
            replay(&sharded, &detector)
        });
    });

    // The parallel rows take the zero-copy offline path (`ingest_shared`):
    // a recorded trace is already a shared immutable buffer, so the
    // ingress ships each worker index views into it instead of cloning
    // events into messages. One chunk for the whole trace: on few cores
    // there is no pipelining win from smaller chunks, and every chunk
    // costs one wake per worker.
    let throughput_cfg = ParallelConfig {
        batch: usize::MAX,
        ..ParallelConfig::default()
    };
    for workers in WORKER_WIDTHS {
        group.bench_function(format!("rd2-parallel-w{workers}"), |b| {
            b.iter(|| {
                let detector = ParallelRd2::with_config(workers, throughput_cfg.clone());
                for &obj in &objects {
                    detector.register(obj, Arc::clone(&compiled));
                }
                detector.ingest_shared(&sharded);
                detector.report()
            });
        });
    }

    // The pipeline with span tracing on every phase (ingress, workers,
    // sync, merge) — the parallel side of the ≤1.05× overhead gate,
    // diffed against `rd2-parallel-w8`.
    {
        let tracer = Arc::new(Tracer::new());
        let traced_cfg = ParallelConfig {
            tracer: Some(Arc::clone(&tracer)),
            ..throughput_cfg.clone()
        };
        group.bench_function("rd2-parallel-w8-traced", |b| {
            b.iter(|| {
                let detector = ParallelRd2::with_config(8, traced_cfg.clone());
                for &obj in &objects {
                    detector.register(obj, Arc::clone(&compiled));
                }
                detector.ingest_shared(&sharded);
                detector.report()
            });
        });
    }

    // The durable variant: same stream, plus one full-state checkpoint
    // blob — the cost `crace serve` pays at every checkpoint boundary,
    // priced per 100k events here so the row tracks serialization
    // regressions. The operator-facing claim (overhead ≤1.05× at the
    // default 5 s interval) follows: the row's delta over
    // `rd2-parallel-w8` is the per-checkpoint cost, and one such
    // checkpoint per 5 s is well under 5% — see EXPERIMENTS.md.
    group.bench_function("rd2-parallel-w8-checkpointed", |b| {
        b.iter(|| {
            let detector = ParallelRd2::with_config(8, throughput_cfg.clone());
            for &obj in &objects {
                detector.register(obj, Arc::clone(&compiled));
            }
            detector.ingest_shared(&sharded);
            let blob = detector.checkpoint();
            (detector.report(), blob.len())
        });
    });

    group.finish();

    write_bench_snapshot();
}

/// Emits every row of this run as `BENCH_per_event.json` at the repo
/// root — hand-written RFC 8259 JSON, checked by the crace-obs validator
/// and the crace-bench schema before it is written. The `meta` object
/// records the machine (CPU count) and workload shape, so `crace
/// bench-diff` comparisons across snapshots can be read in context.
/// Parallel rows carry their speedup over the serial replay baseline
/// (`rd2-serial-sharded`, the path `crace replay` takes without
/// `--workers`).
fn write_bench_snapshot() {
    let records: Vec<criterion::measurements::Record> = criterion::measurements::drain()
        .into_iter()
        .filter(|r| r.group == "per_event")
        .collect();
    let serial_ns = records
        .iter()
        .find(|r| r.id == "rd2-serial-sharded")
        .map(criterion::measurements::Record::ns_per_element);
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            let mut row = format!(
                "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"ns_per_event\": {:.3}",
                crace_obs::json::escape(&r.id),
                r.ns_per_iter,
                r.ns_per_element()
            );
            if let Some(serial) = serial_ns {
                if r.id.starts_with("rd2-parallel-w") && r.ns_per_element() > 0.0 {
                    row.push_str(&format!(
                        ", \"speedup_vs_serial_replay\": {:.3}",
                        serial / r.ns_per_element()
                    ));
                }
            }
            row.push('}');
            row
        })
        .collect();
    let host_cpus = std::thread::available_parallelism().map_or(0, usize::from);
    let widths: Vec<String> = WORKER_WIDTHS.iter().map(usize::to_string).collect();
    let meta = format!(
        "    \"host_cpus\": {host_cpus},\n    \"events_per_iter\": {N},\n    \
         \"sharded_events\": {SHARD_N},\n    \"sharded_threads\": {SHARD_THREADS},\n    \
         \"sharded_objects\": {SHARD_OBJECTS},\n    \
         \"trace_sample_every\": {TRACE_SAMPLE_EVERY},\n    \
         \"worker_widths\": [{}]",
        widths.join(", ")
    );
    let json = format!(
        "{{\n  \"bench\": \"per_event\",\n  \"events_per_iter\": {N},\n  \"meta\": {{\n{meta}\n  }},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    crace_obs::json::validate(&json).expect("emitted bench JSON is RFC 8259 valid");
    crace_bench::snapshot::validate_per_event(&json).expect("emitted bench JSON matches schema");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_per_event.json");
    std::fs::write(path, &json).expect("write BENCH_per_event.json");
    println!("per_event: wrote {path}");
}

criterion_group!(benches, bench_per_event);
criterion_main!(benches);
