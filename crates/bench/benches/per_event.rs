//! Per-event detector cost on recorded traces — the microscopic view of
//! the Table 2 overhead columns.
//!
//! Replays the same mixed dictionary trace into RD2 and the direct
//! detector, and an equally-sized read/write trace into FastTrack, so the
//! per-event costs are directly comparable.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use crace_bench::{mixed_dict_trace, rw_trace, OBJ};
use crace_core::{translate, Direct, TraceDetector};
use crace_fasttrack::FastTrack;
use crace_model::{replay, NoopAnalysis};
use crace_spec::builtin;
use std::sync::Arc;

const N: usize = 10_000;

fn bench_per_event(c: &mut Criterion) {
    let spec = builtin::dictionary();
    let compiled = Arc::new(translate(&spec).expect("ECL"));
    let dict_trace = mixed_dict_trace(N, 4, 64, 0xFEED);
    let mem_trace = rw_trace(N, 4, 256, 0xFEED);

    let mut group = c.benchmark_group("per_event");
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function("noop", |b| {
        b.iter(|| replay(&dict_trace, &NoopAnalysis::new()));
    });

    group.bench_function("rd2", |b| {
        b.iter(|| {
            let detector = TraceDetector::new();
            detector.register(OBJ, Arc::clone(&compiled));
            replay(&dict_trace, &detector)
        });
    });

    // The direct detector is quadratic: run it on a 10× smaller trace and
    // report per-element cost (still ~10× worse per event at this size).
    let small_trace = mixed_dict_trace(N / 10, 4, 64, 0xFEED);
    group.bench_function("direct", |b| {
        b.iter(|| {
            let detector = Direct::new();
            detector.register(OBJ, Arc::new(spec.clone()));
            replay(&small_trace, &detector)
        });
    });

    group.bench_function("fasttrack", |b| {
        b.iter(|| {
            let detector = FastTrack::new();
            replay(&mem_trace, &detector)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_per_event);
criterion_main!(benches);
