//! Per-event detector cost on recorded traces — the microscopic view of
//! the Table 2 overhead columns.
//!
//! Replays the same mixed dictionary trace into RD2 (in both clock
//! representations: the adaptive epoch fast path and the full-vector
//! reference, so the before/after cost of the epoch compression is a
//! single diff of adjacent rows), the sharded live `Rd2` analysis, and the
//! direct detector, and an equally-sized read/write trace into FastTrack,
//! so the per-event costs are directly comparable. The epoch-hit rate of
//! the benchmarked trace is printed alongside the timings.

use crace_bench::{local_dict_trace, mixed_dict_trace, rw_trace, OBJ};
use crace_core::{translate, ClockMode, Direct, Rd2, TraceDetector};
use crace_fasttrack::FastTrack;
use crace_model::{replay, Isolated, NoopAnalysis, Observer};
use crace_obs::Registry;
use crace_spec::builtin;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

const N: usize = 10_000;

fn bench_per_event(c: &mut Criterion) {
    let spec = builtin::dictionary();
    let compiled = Arc::new(translate(&spec).expect("ECL"));
    let dict_trace = mixed_dict_trace(N, 4, 64, 0xFEED);
    let local_trace = local_dict_trace(N, 4, 64, 0xFEED);
    let mem_trace = rw_trace(N, 4, 256, 0xFEED);

    // How compressible each trace's access points are: replay once and
    // report the phase-2 update breakdown.
    for (name, trace) in [("mixed", &dict_trace), ("local", &local_trace)] {
        let detector = TraceDetector::new();
        detector.register(OBJ, Arc::clone(&compiled));
        replay(trace, &detector);
        println!(
            "per_event: {name} trace adaptive clock updates: {}",
            detector.clock_stats()
        );
    }

    let mut group = c.benchmark_group("per_event");
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function("noop", |b| {
        b.iter(|| replay(&dict_trace, &NoopAnalysis::new()));
    });

    group.bench_function("rd2-adaptive", |b| {
        b.iter(|| {
            let detector = TraceDetector::new();
            detector.register(OBJ, Arc::clone(&compiled));
            replay(&dict_trace, &detector)
        });
    });

    // The panic shield: the same adaptive run through `Isolated` — the
    // row EXPERIMENTS.md quotes for the chaos plane's hot-path overhead
    // (one quarantine load plus a `catch_unwind` frame per dispatch).
    group.bench_function("rd2-adaptive-isolated", |b| {
        b.iter(|| {
            let detector = TraceDetector::new();
            detector.register(OBJ, Arc::clone(&compiled));
            replay(&dict_trace, &Isolated::new(detector))
        });
    });

    group.bench_function("rd2-fullvector", |b| {
        b.iter(|| {
            let detector = TraceDetector::with_mode(ClockMode::FullVector);
            detector.register(OBJ, Arc::clone(&compiled));
            replay(&dict_trace, &detector)
        });
    });

    // The thread-local trace: the epoch fast path's best case (every
    // phase-2 update stays an O(1) epoch overwrite) vs the same trace on
    // full vectors. The gap widens with the thread count, since a full
    // vector join is O(threads) while an epoch overwrite stays O(1).
    for threads in [4u32, 16, 64] {
        let local = local_dict_trace(N, threads, 64, 0xFEED);
        group.bench_function(format!("rd2-adaptive-local-t{threads}"), |b| {
            b.iter(|| {
                let detector = TraceDetector::new();
                detector.register(OBJ, Arc::clone(&compiled));
                replay(&local, &detector)
            });
        });
        group.bench_function(format!("rd2-fullvector-local-t{threads}"), |b| {
            b.iter(|| {
                let detector = TraceDetector::with_mode(ClockMode::FullVector);
                detector.register(OBJ, Arc::clone(&compiled));
                replay(&local, &detector)
            });
        });
    }

    // The same adaptive run through the Observer tee — the row EXPERIMENTS.md
    // quotes for the tee's per-event overhead. Once at the default 1-in-64
    // latency sampling, once with sampling disabled (counters only), so the
    // cost of the two Instant reads is its own diff.
    group.bench_function("rd2-adaptive-observed", |b| {
        b.iter(|| {
            let detector = TraceDetector::new();
            detector.register(OBJ, Arc::clone(&compiled));
            replay(&dict_trace, &Observer::new(detector))
        });
    });

    group.bench_function("rd2-adaptive-observed-nosample", |b| {
        b.iter(|| {
            let detector = TraceDetector::new();
            detector.register(OBJ, Arc::clone(&compiled));
            let observer = Observer::with_sampling(detector, Arc::new(Registry::new()), 0);
            replay(&dict_trace, &observer)
        });
    });

    // One observed replay with its snapshot printed, so a bench run
    // doubles as a smoke test of the metrics surface.
    {
        let detector = TraceDetector::new();
        detector.register(OBJ, Arc::clone(&compiled));
        let observer = Observer::new(detector);
        replay(&dict_trace, &observer);
        println!(
            "per_event: observed rd2 snapshot:\n{}",
            observer.snapshot().to_pretty()
        );
    }

    // The live sharded analysis (published clock snapshots, per-object
    // mutexes) driven from one thread — measures hot-path bookkeeping, not
    // contention.
    group.bench_function("rd2-live", |b| {
        b.iter(|| {
            let detector = Rd2::new();
            detector.register(OBJ, Arc::clone(&compiled));
            replay(&dict_trace, &detector)
        });
    });

    // The direct detector is quadratic: run it on a 10× smaller trace and
    // report per-element cost (still ~10× worse per event at this size).
    let small_trace = mixed_dict_trace(N / 10, 4, 64, 0xFEED);
    group.bench_function("direct", |b| {
        b.iter(|| {
            let detector = Direct::new();
            detector.register(OBJ, Arc::new(spec.clone()));
            replay(&small_trace, &detector)
        });
    });

    group.bench_function("fasttrack", |b| {
        b.iter(|| {
            let detector = FastTrack::new();
            replay(&mem_trace, &detector)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_per_event);
criterion_main!(benches);
