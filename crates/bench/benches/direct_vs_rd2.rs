//! Ablation for the §5.4 complexity claim: Θ(1) conflict checks per action
//! with the access-point representation vs Θ(|A|) with the direct
//! approach.
//!
//! Replays put/size storms of growing length into the RD2 trace detector
//! and the direct detector. RD2's time per trace grows linearly with trace
//! length (constant per action); the direct detector grows quadratically —
//! the crossover is visible from the smallest size.

use crace_bench::{put_size_storm, OBJ};
use crace_core::{translate, ClockMode, Direct, TraceDetector};
use crace_model::replay;
use crace_spec::builtin;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

fn bench_direct_vs_rd2(c: &mut Criterion) {
    let spec = builtin::dictionary();
    let compiled = Arc::new(translate(&spec).expect("ECL"));
    let mut group = c.benchmark_group("direct_vs_rd2");
    for &n in &[200usize, 800, 3_200, 12_800] {
        let trace = put_size_storm(n, 4, 0xBEEF);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("rd2", n), &trace, |b, trace| {
            b.iter(|| {
                let detector = TraceDetector::new();
                detector.register(OBJ, Arc::clone(&compiled));
                replay(trace, &detector)
            });
        });
        // The pre-epoch reference: every active point keeps a full vector.
        group.bench_with_input(BenchmarkId::new("rd2-fullvec", n), &trace, |b, trace| {
            b.iter(|| {
                let detector = TraceDetector::with_mode(ClockMode::FullVector);
                detector.register(OBJ, Arc::clone(&compiled));
                replay(trace, &detector)
            });
        });
        // The direct detector is quadratic; skip the largest size to keep
        // wall-clock sane, which itself demonstrates the gap.
        if n <= 3_200 {
            group.bench_with_input(BenchmarkId::new("direct", n), &trace, |b, trace| {
                b.iter(|| {
                    let detector = Direct::new();
                    detector.register(OBJ, Arc::new(spec.clone()));
                    replay(trace, &detector)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_direct_vs_rd2);
criterion_main!(benches);
