//! Cost of weakest-condition synthesis (`crace synth`): per builtin type
//! at the default universe, and for the dictionary across growing
//! universes. Synthesis dominates linting because it labels every bounded
//! action pair *and* runs a prime-implicant cover per method pair, so the
//! universe sweep exposes the exponential bounded-domain factor the
//! `--max-actions` budget guards against.

use crace_specsynth::{synthesize, SynthConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_types(c: &mut Criterion) {
    let mut group = c.benchmark_group("specsynth_type");
    let config = SynthConfig::default();
    for name in [
        "dictionary",
        "dictionary_ext",
        "set",
        "counter",
        "register",
        "queue",
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, name| {
            b.iter(|| synthesize(name, &config).expect("synthesize"))
        });
    }
    group.finish();
}

fn bench_universe(c: &mut Criterion) {
    let mut group = c.benchmark_group("specsynth_universe");
    for max_int in [2i64, 3, 4] {
        let config = SynthConfig {
            max_int,
            max_actions: 1 << 20,
        };
        group.bench_with_input(
            BenchmarkId::new("dictionary", max_int),
            &config,
            |b, cfg| b.iter(|| synthesize("dictionary", cfg).expect("synthesize")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_types, bench_universe);
criterion_main!(benches);
