//! Shared generators for the `crace` benchmarks.
//!
//! The benches regenerate the paper's evaluation artifacts:
//!
//! * the `table2` **binary** reruns every Table 2 row (six Pole-Position
//!   circuits under uninstrumented / FastTrack / RD2 + the snitch),
//! * `direct_vs_rd2` measures the §5.4 complexity claim — Θ(1) checks per
//!   action with access points vs Θ(|A|) with the direct approach,
//! * `translate` measures the §6.2 translation + optimization pipeline,
//! * `per_event` measures raw per-event detector cost on recorded traces,
//! * `vclock_ops` measures the vector-clock primitives underlying all
//!   detectors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crace_model::{Action, Event, ObjId, ThreadId, Trace, Value};
use crace_spec::{builtin, CmpOp, Formula, Side, Spec, SpecBuilder, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The object id used by generated traces.
pub const OBJ: ObjId = ObjId(1);

/// Generates a trace of `n` dictionary actions from `threads` pre-forked
/// threads: a mix of fresh inserts (each to a distinct key, so the active
/// access-point set keeps growing) punctuated by `size()` calls.
///
/// This is the Fig. 4 shape: under the direct approach each `size()` must
/// be checked against *every* recorded put, while RD2 performs a single
/// lookup against the `resize` point.
pub fn put_size_storm(n: usize, threads: u32, seed: u64) -> Trace {
    let spec = builtin::dictionary();
    let put = spec.method_id("put").expect("builtin");
    let size = spec.method_id("size").expect("builtin");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for t in 1..=threads {
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(t),
        });
    }
    for i in 0..n {
        let tid = ThreadId(1 + rng.gen_range(0..threads));
        if i % 64 == 63 {
            trace.push(Event::Action {
                tid,
                action: Action::new(OBJ, size, vec![], Value::Int(i as i64)),
            });
        } else {
            // Fresh key every time: the active set grows linearly.
            trace.push(Event::Action {
                tid,
                action: Action::new(
                    OBJ,
                    put,
                    vec![Value::Int(i as i64), Value::Int(1)],
                    Value::Nil,
                ),
            });
        }
    }
    trace
}

/// Generates a mixed dictionary trace (puts, gets, sizes over a bounded
/// key space) for per-event cost measurements.
pub fn mixed_dict_trace(n: usize, threads: u32, key_space: i64, seed: u64) -> Trace {
    let spec = builtin::dictionary();
    let put = spec.method_id("put").expect("builtin");
    let get = spec.method_id("get").expect("builtin");
    let size = spec.method_id("size").expect("builtin");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for t in 1..=threads {
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(t),
        });
    }
    for _ in 0..n {
        let tid = ThreadId(1 + rng.gen_range(0..threads));
        let k = Value::Int(rng.gen_range(0..key_space));
        let action = match rng.gen_range(0..10) {
            0..=5 => Action::new(
                OBJ,
                put,
                vec![k, Value::Int(rng.gen_range(0..100))],
                Value::Int(rng.gen_range(0..100)),
            ),
            6..=8 => Action::new(OBJ, get, vec![k], Value::Int(rng.gen_range(0..100))),
            _ => Action::new(OBJ, size, vec![], Value::Int(rng.gen_range(0..100))),
        };
        trace.push(Event::Action { tid, action });
    }
    trace
}

/// Generates a *thread-local* dictionary trace: every thread works a
/// disjoint key range, so each access point is only ever touched by one
/// thread. This is the FastTrack-motivating common case where the adaptive
/// clock representation keeps every `pt.vc` as an epoch — the counterpart
/// to the contended [`mixed_dict_trace`], whose shared bounded key space
/// promotes almost every point to a full vector.
pub fn local_dict_trace(n: usize, threads: u32, keys_per_thread: i64, seed: u64) -> Trace {
    let spec = builtin::dictionary();
    let put = spec.method_id("put").expect("builtin");
    let get = spec.method_id("get").expect("builtin");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for t in 1..=threads {
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(t),
        });
    }
    for _ in 0..n {
        let t = rng.gen_range(0..threads);
        let tid = ThreadId(1 + t);
        let base = i64::from(t) * keys_per_thread;
        let k = Value::Int(base + rng.gen_range(0..keys_per_thread));
        let action = if rng.gen_bool(0.6) {
            Action::new(
                OBJ,
                put,
                vec![k, Value::Int(rng.gen_range(0..100))],
                Value::Int(rng.gen_range(0..100)),
            )
        } else {
            Action::new(OBJ, get, vec![k], Value::Int(rng.gen_range(0..100)))
        };
        trace.push(Event::Action { tid, action });
    }
    trace
}

/// Generates a *sharded* dictionary trace: `objects` independent
/// dictionaries (ids `1..=objects`), each worked by all `threads` over a
/// bounded per-object key space, with realistic cross-thread
/// synchronization — one warm-up acquire/release of a global lock per
/// thread (so thread clocks are dense, as they would be in any program
/// whose threads ever synchronized) and a lock pair every ~200 events
/// thereafter. Because the dictionaries are
/// independent, this is the shape the parallel pipeline can split across
/// detector workers — and the dense clocks make the serial replay path
/// pay its per-action cost in full (a sync-clock clone per action,
/// O(threads)), which is exactly the work the pipeline's workers avoid
/// by reading the `Arc`'d clocks the ingress replayed once. The trace
/// has `n + 3 * threads` events.
pub fn sharded_dict_trace(
    n: usize,
    threads: u32,
    objects: u64,
    key_space: i64,
    seed: u64,
) -> Trace {
    let spec = builtin::dictionary();
    let put = spec.method_id("put").expect("builtin");
    let get = spec.method_id("get").expect("builtin");
    let size = spec.method_id("size").expect("builtin");
    let lock = crace_model::LockId(0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for t in 1..=threads {
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(t),
        });
    }
    for t in 1..=threads {
        let tid = ThreadId(t);
        trace.push(Event::Acquire { tid, lock });
        trace.push(Event::Release { tid, lock });
    }
    let objects = objects.max(1);
    let mut i = 0usize;
    while i < n {
        let tid = ThreadId(1 + rng.gen_range(0..threads));
        if i % 200 == 198 && i + 1 < n {
            trace.push(Event::Acquire { tid, lock });
            trace.push(Event::Release { tid, lock });
            i += 2;
            continue;
        }
        let obj = ObjId(1 + rng.gen_range(0..objects));
        let k = Value::Int(rng.gen_range(0..key_space));
        let action = match rng.gen_range(0..10) {
            0..=5 => Action::new(
                obj,
                put,
                vec![k, Value::Int(rng.gen_range(0..100))],
                Value::Int(rng.gen_range(0..100)),
            ),
            6..=8 => Action::new(obj, get, vec![k], Value::Int(rng.gen_range(0..100))),
            _ => Action::new(obj, size, vec![], Value::Int(rng.gen_range(0..100))),
        };
        trace.push(Event::Action { tid, action });
        i += 1;
    }
    trace
}

/// Generates a read/write shadow-memory trace for FastTrack measurements.
pub fn rw_trace(n: usize, threads: u32, locs: u64, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for t in 1..=threads {
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(t),
        });
    }
    for _ in 0..n {
        let tid = ThreadId(1 + rng.gen_range(0..threads));
        let loc = crace_model::LocId(rng.gen_range(0..locs));
        if rng.gen_bool(0.3) {
            trace.push(Event::Write { tid, loc });
        } else {
            trace.push(Event::Read { tid, loc });
        }
    }
    trace
}

/// Schema checks for the machine-readable snapshots the benches emit at
/// the repo root (`BENCH_per_event.json`), so a malformed emitter — or a
/// hand-edited snapshot — fails loudly instead of silently feeding
/// garbage to `crace bench-diff`.
pub mod snapshot {
    use crace_obs::json::{self, Json};

    /// Validates a `BENCH_per_event.json` document: RFC 8259 syntax, the
    /// `bench`/`events_per_iter` header, a `meta` object describing the
    /// machine and workload shape, and a non-empty `rows` array whose
    /// entries carry unique ids with finite non-negative timings.
    /// Returns the first problem found.
    pub fn validate_per_event(text: &str) -> Result<(), String> {
        let doc = json::parse(text)?;
        if doc.get("bench").and_then(Json::as_str) != Some("per_event") {
            return Err("`bench` must be the string \"per_event\"".to_string());
        }
        doc.get("events_per_iter")
            .and_then(Json::as_f64)
            .ok_or_else(|| "`events_per_iter` must be a number".to_string())?;
        let meta = doc
            .get("meta")
            .filter(|m| m.as_object().is_some())
            .ok_or_else(|| "missing `meta` object".to_string())?;
        for key in [
            "host_cpus",
            "events_per_iter",
            "sharded_events",
            "sharded_threads",
            "sharded_objects",
            "trace_sample_every",
        ] {
            meta.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("`meta.{key}` must be a number"))?;
        }
        let widths = meta
            .get("worker_widths")
            .and_then(Json::as_array)
            .ok_or_else(|| "`meta.worker_widths` must be an array".to_string())?;
        if widths.is_empty() || widths.iter().any(|w| w.as_f64().is_none()) {
            return Err("`meta.worker_widths` must be a non-empty array of numbers".to_string());
        }
        let rows = doc
            .get("rows")
            .and_then(Json::as_array)
            .ok_or_else(|| "`rows` must be an array".to_string())?;
        if rows.is_empty() {
            return Err("`rows` must not be empty".to_string());
        }
        let mut seen = std::collections::BTreeSet::new();
        for (i, row) in rows.iter().enumerate() {
            let id = row
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("row {i}: `id` must be a string"))?;
            if !seen.insert(id.to_string()) {
                return Err(format!("row `{id}` appears twice"));
            }
            for key in ["ns_per_iter", "ns_per_event"] {
                let v = row
                    .get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("row `{id}`: `{key}` must be a number"))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!(
                        "row `{id}`: `{key}` must be finite and non-negative"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Builds a synthetic ECL specification with `methods` methods and `atoms`
/// LB atoms per same-method rule — used to measure how translation scales
/// with specification size.
pub fn synthetic_spec(methods: usize, atoms: usize) -> Spec {
    let mut b = SpecBuilder::new(format!("synthetic_{methods}x{atoms}"));
    let mut refs = Vec::new();
    for m in 0..methods {
        refs.push(b.method(format!("m{m}"), 1));
    }
    for (i, mi) in refs.iter().enumerate() {
        for mj in refs.iter().skip(i) {
            // k1 != k2 || (per-side atom conjunction)
            let mut lhs = Formula::True;
            let mut rhs = Formula::True;
            for a in 0..atoms {
                lhs = lhs.and(Formula::atom(
                    Side::First,
                    CmpOp::Eq,
                    Term::Slot(1),
                    Term::Const(Value::Int(a as i64)),
                ));
                rhs = rhs.and(Formula::atom(
                    Side::Second,
                    CmpOp::Eq,
                    Term::Slot(1),
                    Term::Const(Value::Int(a as i64)),
                ));
            }
            let phi = Formula::NeqCross { i: 0, j: 0 }.or(lhs.and(rhs));
            b.rule(mi.id, mj.id, phi).expect("well-formed");
        }
    }
    b.finish().expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_has_requested_size() {
        let t = put_size_storm(256, 4, 1);
        assert_eq!(t.len(), 256 + 4);
        assert!(t.iter().any(|e| e.action().is_some()));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(put_size_storm(100, 2, 9), put_size_storm(100, 2, 9));
        assert_eq!(
            mixed_dict_trace(100, 2, 16, 9),
            mixed_dict_trace(100, 2, 16, 9)
        );
        assert_eq!(rw_trace(100, 2, 16, 9), rw_trace(100, 2, 16, 9));
        assert_eq!(
            sharded_dict_trace(100, 8, 32, 16, 9),
            sharded_dict_trace(100, 8, 32, 16, 9)
        );
    }

    #[test]
    fn sharded_trace_spreads_over_objects() {
        let t = sharded_dict_trace(512, 8, 32, 16, 7);
        assert_eq!(t.len(), 512 + 3 * 8);
        let objects: std::collections::BTreeSet<_> = t
            .iter()
            .filter_map(|e| e.action().map(|a| a.obj()))
            .collect();
        assert!(objects.len() > 16, "only {} objects touched", objects.len());
        let syncs = t
            .iter()
            .filter(|e| matches!(e, Event::Acquire { .. } | Event::Release { .. }))
            .count();
        assert_eq!(syncs, 2 * 8 + 2 * (512 / 200), "warm-up + sparse pairs");
    }

    #[test]
    fn committed_bench_snapshot_matches_schema() {
        let text = include_str!("../../../BENCH_per_event.json");
        snapshot::validate_per_event(text).expect("committed BENCH_per_event.json");
    }

    #[test]
    fn per_event_schema_rejects_malformed_documents() {
        let ok = r#"{"bench": "per_event", "events_per_iter": 10,
            "meta": {"host_cpus": 8, "events_per_iter": 10, "sharded_events": 100,
                     "sharded_threads": 4, "sharded_objects": 2,
                     "trace_sample_every": 64, "worker_widths": [1, 2]},
            "rows": [{"id": "a", "ns_per_iter": 1.0, "ns_per_event": 0.1}]}"#;
        snapshot::validate_per_event(ok).expect("well-formed document");

        let cases: &[(&str, &str)] = &[
            ("not json", "at byte 0"),
            (r#"{"bench": "other"}"#, "`bench`"),
            (r#"{"bench": "per_event"}"#, "`events_per_iter`"),
            (
                r#"{"bench": "per_event", "events_per_iter": 10, "rows": []}"#,
                "`meta`",
            ),
            (&ok.replace(r#""host_cpus": 8, "#, ""), "`meta.host_cpus`"),
            (&ok.replace("[1, 2]", "[]"), "`meta.worker_widths`"),
            (
                &ok.replace(
                    r#"[{"id": "a", "ns_per_iter": 1.0, "ns_per_event": 0.1}]"#,
                    "[]",
                ),
                "`rows` must not be empty",
            ),
            (
                &ok.replace(r#""ns_per_event": 0.1}"#, r#""ns_per_event": -0.1}"#),
                "non-negative",
            ),
            (
                &ok.replace(
                    r#"{"id": "a", "ns_per_iter": 1.0, "ns_per_event": 0.1}"#,
                    r#"{"id": "a", "ns_per_iter": 1.0, "ns_per_event": 0.1},
                       {"id": "a", "ns_per_iter": 1.0, "ns_per_event": 0.1}"#,
                ),
                "appears twice",
            ),
        ];
        for (doc, want) in cases {
            let err = snapshot::validate_per_event(doc).expect_err(doc);
            assert!(err.contains(want), "`{err}` should mention {want}");
        }
    }

    #[test]
    fn synthetic_specs_translate() {
        let spec = synthetic_spec(3, 2);
        assert!(spec.is_ecl());
        let compiled = crace_core::translate(&spec).unwrap();
        assert!(compiled.num_classes() > 0);
    }
}
