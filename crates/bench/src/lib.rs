//! Shared generators for the `crace` benchmarks.
//!
//! The benches regenerate the paper's evaluation artifacts:
//!
//! * the `table2` **binary** reruns every Table 2 row (six Pole-Position
//!   circuits under uninstrumented / FastTrack / RD2 + the snitch),
//! * `direct_vs_rd2` measures the §5.4 complexity claim — Θ(1) checks per
//!   action with access points vs Θ(|A|) with the direct approach,
//! * `translate` measures the §6.2 translation + optimization pipeline,
//! * `per_event` measures raw per-event detector cost on recorded traces,
//! * `vclock_ops` measures the vector-clock primitives underlying all
//!   detectors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crace_model::{Action, Event, ObjId, ThreadId, Trace, Value};
use crace_spec::{builtin, CmpOp, Formula, Side, Spec, SpecBuilder, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The object id used by generated traces.
pub const OBJ: ObjId = ObjId(1);

/// Generates a trace of `n` dictionary actions from `threads` pre-forked
/// threads: a mix of fresh inserts (each to a distinct key, so the active
/// access-point set keeps growing) punctuated by `size()` calls.
///
/// This is the Fig. 4 shape: under the direct approach each `size()` must
/// be checked against *every* recorded put, while RD2 performs a single
/// lookup against the `resize` point.
pub fn put_size_storm(n: usize, threads: u32, seed: u64) -> Trace {
    let spec = builtin::dictionary();
    let put = spec.method_id("put").expect("builtin");
    let size = spec.method_id("size").expect("builtin");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for t in 1..=threads {
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(t),
        });
    }
    for i in 0..n {
        let tid = ThreadId(1 + rng.gen_range(0..threads));
        if i % 64 == 63 {
            trace.push(Event::Action {
                tid,
                action: Action::new(OBJ, size, vec![], Value::Int(i as i64)),
            });
        } else {
            // Fresh key every time: the active set grows linearly.
            trace.push(Event::Action {
                tid,
                action: Action::new(
                    OBJ,
                    put,
                    vec![Value::Int(i as i64), Value::Int(1)],
                    Value::Nil,
                ),
            });
        }
    }
    trace
}

/// Generates a mixed dictionary trace (puts, gets, sizes over a bounded
/// key space) for per-event cost measurements.
pub fn mixed_dict_trace(n: usize, threads: u32, key_space: i64, seed: u64) -> Trace {
    let spec = builtin::dictionary();
    let put = spec.method_id("put").expect("builtin");
    let get = spec.method_id("get").expect("builtin");
    let size = spec.method_id("size").expect("builtin");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for t in 1..=threads {
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(t),
        });
    }
    for _ in 0..n {
        let tid = ThreadId(1 + rng.gen_range(0..threads));
        let k = Value::Int(rng.gen_range(0..key_space));
        let action = match rng.gen_range(0..10) {
            0..=5 => Action::new(
                OBJ,
                put,
                vec![k, Value::Int(rng.gen_range(0..100))],
                Value::Int(rng.gen_range(0..100)),
            ),
            6..=8 => Action::new(OBJ, get, vec![k], Value::Int(rng.gen_range(0..100))),
            _ => Action::new(OBJ, size, vec![], Value::Int(rng.gen_range(0..100))),
        };
        trace.push(Event::Action { tid, action });
    }
    trace
}

/// Generates a *thread-local* dictionary trace: every thread works a
/// disjoint key range, so each access point is only ever touched by one
/// thread. This is the FastTrack-motivating common case where the adaptive
/// clock representation keeps every `pt.vc` as an epoch — the counterpart
/// to the contended [`mixed_dict_trace`], whose shared bounded key space
/// promotes almost every point to a full vector.
pub fn local_dict_trace(n: usize, threads: u32, keys_per_thread: i64, seed: u64) -> Trace {
    let spec = builtin::dictionary();
    let put = spec.method_id("put").expect("builtin");
    let get = spec.method_id("get").expect("builtin");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for t in 1..=threads {
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(t),
        });
    }
    for _ in 0..n {
        let t = rng.gen_range(0..threads);
        let tid = ThreadId(1 + t);
        let base = i64::from(t) * keys_per_thread;
        let k = Value::Int(base + rng.gen_range(0..keys_per_thread));
        let action = if rng.gen_bool(0.6) {
            Action::new(
                OBJ,
                put,
                vec![k, Value::Int(rng.gen_range(0..100))],
                Value::Int(rng.gen_range(0..100)),
            )
        } else {
            Action::new(OBJ, get, vec![k], Value::Int(rng.gen_range(0..100)))
        };
        trace.push(Event::Action { tid, action });
    }
    trace
}

/// Generates a *sharded* dictionary trace: `objects` independent
/// dictionaries (ids `1..=objects`), each worked by all `threads` over a
/// bounded per-object key space, with realistic cross-thread
/// synchronization — one warm-up acquire/release of a global lock per
/// thread (so thread clocks are dense, as they would be in any program
/// whose threads ever synchronized) and a lock pair every ~200 events
/// thereafter. Because the dictionaries are
/// independent, this is the shape the parallel pipeline can split across
/// detector workers — and the dense clocks make the serial replay path
/// pay its per-action cost in full (a sync-clock clone per action,
/// O(threads)), which is exactly the work the pipeline's workers avoid
/// by reading the `Arc`'d clocks the ingress replayed once. The trace
/// has `n + 3 * threads` events.
pub fn sharded_dict_trace(
    n: usize,
    threads: u32,
    objects: u64,
    key_space: i64,
    seed: u64,
) -> Trace {
    let spec = builtin::dictionary();
    let put = spec.method_id("put").expect("builtin");
    let get = spec.method_id("get").expect("builtin");
    let size = spec.method_id("size").expect("builtin");
    let lock = crace_model::LockId(0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for t in 1..=threads {
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(t),
        });
    }
    for t in 1..=threads {
        let tid = ThreadId(t);
        trace.push(Event::Acquire { tid, lock });
        trace.push(Event::Release { tid, lock });
    }
    let objects = objects.max(1);
    let mut i = 0usize;
    while i < n {
        let tid = ThreadId(1 + rng.gen_range(0..threads));
        if i % 200 == 198 && i + 1 < n {
            trace.push(Event::Acquire { tid, lock });
            trace.push(Event::Release { tid, lock });
            i += 2;
            continue;
        }
        let obj = ObjId(1 + rng.gen_range(0..objects));
        let k = Value::Int(rng.gen_range(0..key_space));
        let action = match rng.gen_range(0..10) {
            0..=5 => Action::new(
                obj,
                put,
                vec![k, Value::Int(rng.gen_range(0..100))],
                Value::Int(rng.gen_range(0..100)),
            ),
            6..=8 => Action::new(obj, get, vec![k], Value::Int(rng.gen_range(0..100))),
            _ => Action::new(obj, size, vec![], Value::Int(rng.gen_range(0..100))),
        };
        trace.push(Event::Action { tid, action });
        i += 1;
    }
    trace
}

/// Generates a read/write shadow-memory trace for FastTrack measurements.
pub fn rw_trace(n: usize, threads: u32, locs: u64, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for t in 1..=threads {
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(t),
        });
    }
    for _ in 0..n {
        let tid = ThreadId(1 + rng.gen_range(0..threads));
        let loc = crace_model::LocId(rng.gen_range(0..locs));
        if rng.gen_bool(0.3) {
            trace.push(Event::Write { tid, loc });
        } else {
            trace.push(Event::Read { tid, loc });
        }
    }
    trace
}

/// Builds a synthetic ECL specification with `methods` methods and `atoms`
/// LB atoms per same-method rule — used to measure how translation scales
/// with specification size.
pub fn synthetic_spec(methods: usize, atoms: usize) -> Spec {
    let mut b = SpecBuilder::new(format!("synthetic_{methods}x{atoms}"));
    let mut refs = Vec::new();
    for m in 0..methods {
        refs.push(b.method(format!("m{m}"), 1));
    }
    for (i, mi) in refs.iter().enumerate() {
        for mj in refs.iter().skip(i) {
            // k1 != k2 || (per-side atom conjunction)
            let mut lhs = Formula::True;
            let mut rhs = Formula::True;
            for a in 0..atoms {
                lhs = lhs.and(Formula::atom(
                    Side::First,
                    CmpOp::Eq,
                    Term::Slot(1),
                    Term::Const(Value::Int(a as i64)),
                ));
                rhs = rhs.and(Formula::atom(
                    Side::Second,
                    CmpOp::Eq,
                    Term::Slot(1),
                    Term::Const(Value::Int(a as i64)),
                ));
            }
            let phi = Formula::NeqCross { i: 0, j: 0 }.or(lhs.and(rhs));
            b.rule(mi.id, mj.id, phi).expect("well-formed");
        }
    }
    b.finish().expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_has_requested_size() {
        let t = put_size_storm(256, 4, 1);
        assert_eq!(t.len(), 256 + 4);
        assert!(t.iter().any(|e| e.action().is_some()));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(put_size_storm(100, 2, 9), put_size_storm(100, 2, 9));
        assert_eq!(
            mixed_dict_trace(100, 2, 16, 9),
            mixed_dict_trace(100, 2, 16, 9)
        );
        assert_eq!(rw_trace(100, 2, 16, 9), rw_trace(100, 2, 16, 9));
        assert_eq!(
            sharded_dict_trace(100, 8, 32, 16, 9),
            sharded_dict_trace(100, 8, 32, 16, 9)
        );
    }

    #[test]
    fn sharded_trace_spreads_over_objects() {
        let t = sharded_dict_trace(512, 8, 32, 16, 7);
        assert_eq!(t.len(), 512 + 3 * 8);
        let objects: std::collections::BTreeSet<_> = t
            .iter()
            .filter_map(|e| e.action().map(|a| a.obj()))
            .collect();
        assert!(objects.len() > 16, "only {} objects touched", objects.len());
        let syncs = t
            .iter()
            .filter(|e| matches!(e, Event::Acquire { .. } | Event::Release { .. }))
            .count();
        assert_eq!(syncs, 2 * 8 + 2 * (512 / 200), "warm-up + sparse pairs");
    }

    #[test]
    fn synthetic_specs_translate() {
        let spec = synthetic_spec(3, 2);
        assert!(spec.is_ecl());
        let compiled = crace_core::translate(&spec).unwrap();
        assert!(compiled.num_classes() > 0);
    }
}
