//! Overhead-vs-concurrency sweep: runs the ComplexConcurrency circuit at
//! growing worker counts under the three Table 2 settings and prints the
//! slowdown series.
//!
//! Vector-clock work grows with thread count (see the `vclock_ops`
//! bench), so detector overhead is expected to rise gently with workers —
//! this binary measures that trend for both detectors.
//!
//! Usage: `cargo run -p crace-bench --bin sweep --release [ops_per_worker]`

use crace_core::Rd2;
use crace_fasttrack::FastTrack;
use crace_model::NoopAnalysis;
use crace_workloads::circuits::{run_circuit, Circuit, CircuitConfig};
use std::sync::Arc;

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);

    println!(
        "{:>8} {:>16} {:>16} {:>16} {:>12} {:>12}",
        "workers", "uninstr (qps)", "fasttrack (qps)", "rd2 (qps)", "ft slowdown", "rd2 slowdown"
    );
    for workers in [1usize, 2, 4, 8] {
        let config = CircuitConfig {
            workers,
            ops_per_worker: ops,
            keys_per_worker: 1_024,
            busy_units: 40,
            seed: 0xFACE,
            locked_maintenance: true,
        };
        let base = run_circuit(
            Circuit::ComplexConcurrency,
            Arc::new(NoopAnalysis::new()),
            &config,
        )
        .qps();
        let ft = run_circuit(
            Circuit::ComplexConcurrency,
            Arc::new(FastTrack::new()),
            &config,
        )
        .qps();
        let rd2 = run_circuit(Circuit::ComplexConcurrency, Arc::new(Rd2::new()), &config).qps();
        println!(
            "{workers:>8} {base:>16.0} {ft:>16.0} {rd2:>16.0} {:>11.2}× {:>11.2}×",
            base / ft.max(1e-9),
            base / rd2.max(1e-9)
        );
    }
}
