//! Regenerates Table 2 of the paper: six H2 Pole-Position circuits plus
//! the Cassandra DynamicEndpointSnitch test, each run uninstrumented,
//! under FastTrack, and under RD2.
//!
//! Usage:
//!
//! ```text
//! cargo run -p crace-bench --bin table2 --release [scale] [--metrics[=json|prom]]
//! ```
//!
//! `scale` multiplies the default operation counts (default 1; use 0 to
//! get a fast smoke run). Expect qps shape, not the paper's absolute
//! numbers — the substrate differs (see EXPERIMENTS.md).
//!
//! `--metrics` re-emits the table as a [`crace_obs`] snapshot (per-row
//! qps gauges and race counters) after the human-readable rendering —
//! `json` by default, `prom` for the Prometheus text format — so CI and
//! dashboards can track the Table 2 shape without scraping the table.

use crace_obs::Registry;
use crace_workloads::circuits::CircuitConfig;
use crace_workloads::snitch::SnitchConfig;
use crace_workloads::table2::{run_table2, Table2Config};

fn main() {
    let mut scale: u64 = 1;
    let mut metrics: Option<&'static str> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--metrics" | "--metrics=json" => metrics = Some("json"),
            "--metrics=prom" => metrics = Some("prom"),
            other => match other.parse() {
                Ok(s) => scale = s,
                Err(_) => {
                    eprintln!("table2: unknown argument {other:?}");
                    std::process::exit(2);
                }
            },
        }
    }

    let config = if scale == 0 {
        Table2Config::smoke()
    } else {
        Table2Config {
            circuit: CircuitConfig {
                workers: 4,
                ops_per_worker: (20_000 * scale) as usize,
                keys_per_worker: 2_048,
                busy_units: 40,
                seed: 0xC0FFEE,
                locked_maintenance: true,
            },
            snitch: SnitchConfig {
                nodes: 16,
                samplers: 4,
                updates_per_sampler: (30_000 * scale) as usize,
                rank_iterations: (400 * scale) as usize,
                busy_units: 30,
                seed: 0xCA55,
            },
        }
    };

    eprintln!(
        "running Table 2 (scale {scale}): {} workers × {} ops per circuit …",
        config.circuit.workers, config.circuit.ops_per_worker
    );
    let table = run_table2(&config);
    println!("{table}");

    // Shape summary, mirroring the paper's observations.
    println!();
    for row in &table.rows {
        let ft = &row.fasttrack;
        let rd2 = &row.rd2;
        let slowdown_ft = row.uninstrumented.qps() / ft.qps().max(1e-9);
        let slowdown_rd2 = row.uninstrumented.qps() / rd2.qps().max(1e-9);
        println!(
            "{:<46} FT slowdown {:>5.2}×, RD2 slowdown {:>5.2}×, races FT {} vs RD2 {}",
            row.benchmark, slowdown_ft, slowdown_rd2, ft.races, rd2.races
        );
    }

    if let Some(format) = metrics {
        let registry = Registry::new();
        for row in &table.rows {
            // Dotted metric names keyed by the benchmark; the Prometheus
            // renderer mangles the spaces away.
            let base = format!("table2.{}", row.benchmark);
            registry.set_gauge(
                &format!("{base}.qps.uninstrumented"),
                row.uninstrumented.qps(),
            );
            registry.set_gauge(&format!("{base}.qps.fasttrack"), row.fasttrack.qps());
            registry.set_gauge(&format!("{base}.qps.rd2"), row.rd2.qps());
            registry
                .counter(&format!("{base}.races.fasttrack"))
                .add(row.fasttrack.races.total());
            registry
                .counter(&format!("{base}.races.rd2"))
                .add(row.rd2.races.total());
        }
        let snapshot = registry.snapshot();
        println!();
        match format {
            "prom" => print!("{}", snapshot.to_prometheus()),
            _ => print!("{}", snapshot.to_json()),
        }
    }
}
