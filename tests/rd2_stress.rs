//! Concurrency stress tests for the lock-free `Rd2` hot path.
//!
//! `Rd2::on_action` takes no process-global lock: thread clocks are read
//! from sharded published snapshots and object shadow state lives behind
//! per-object mutexes in a sharded map. These tests drive it with real
//! threads through the instrumented runtime and check it against results
//! that are *invariant under scheduling*:
//!
//! 1. workloads whose race count is the same in every linearization
//!    (disjoint keys → zero; k pairwise-concurrent same-key writes → k−1),
//! 2. an exact record/replay differential: a `Tee` analysis atomically
//!    feeds every event to both a [`Recorder`] and a live [`Rd2`], and the
//!    recorded trace replayed through the serial [`TraceDetector`] must
//!    yield a bit-for-bit identical [`RaceReport`].

use std::sync::{Arc, Mutex};

use crace::model::replay;
use crace::runtime::ObjectRegistry;
use crace::{
    translate, Action, Analysis, LockId, MonitoredDict, ObjId, RaceReport, Rd2, Recorder, Runtime,
    Spec, ThreadId, TraceDetector, Value,
};

const THREADS: u32 = 8;
const OPS_PER_THREAD: i64 = 200;

/// Disjoint keys: every thread owns its own key, so all cross-thread pairs
/// commute and *no* linearization contains a race. The main thread
/// pre-populates every key (so no worker put resizes the dictionary and
/// touches the shared resize class); after that ordered handoff each key's
/// access points are only ever touched by one thread, so the adaptive
/// clocks must also stay entirely in the epoch representation.
#[test]
fn disjoint_key_writers_report_no_races_and_stay_on_epochs() {
    let rd2 = Arc::new(Rd2::new());
    let rt = Runtime::new(rd2.clone());
    let main = rt.main_ctx();
    let dict = MonitoredDict::new(&rt);
    for t in 0..THREADS {
        dict.put(&main, Value::Int(i64::from(t)), Value::Int(-1));
    }

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let dict = dict.clone();
        handles.push(rt.spawn(&main, move |ctx| {
            for i in 0..OPS_PER_THREAD {
                dict.put(ctx, Value::Int(i64::from(t)), Value::Int(i));
                dict.get(ctx, Value::Int(i64::from(t)));
            }
        }));
    }
    for h in handles {
        h.join(&main).unwrap();
    }

    let report = rd2.report();
    assert!(report.is_empty(), "disjoint keys cannot race: {report:?}");

    let stats = rd2.clock_stats();
    assert_eq!(stats.promotions, 0, "single-owner points must stay epochs");
    assert_eq!(stats.vector_updates, 0);
    assert!(stats.epoch_updates as i64 >= i64::from(THREADS) * (2 * OPS_PER_THREAD - 2));
}

/// k pairwise-concurrent writers of the *same* key: the dictionary emits
/// each action under the key's shard lock, so the analysis always sees the
/// resizing (nil-returning) put first. It installs the `put|remove` class;
/// the second put conflicts with that one class, and each of the remaining
/// k−2 puts conflicts with both it and the `put` class installed by the
/// second — a total of exactly `1 + 2(k−2) = 2k−3` races in *every*
/// schedule, with a single distinct race class.
#[test]
fn same_key_writers_race_exactly_2k_minus_3_times() {
    for round in 0..10u64 {
        let rd2 = Arc::new(Rd2::new());
        let rt = Runtime::new(rd2.clone());
        let main = rt.main_ctx();
        let dict = MonitoredDict::new(&rt);

        let mut handles = Vec::new();
        for t in 0..THREADS {
            let dict = dict.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                dict.put(ctx, Value::Int(7), Value::Int(i64::from(t)));
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }

        let report = rd2.report();
        assert_eq!(
            report.total(),
            2 * u64::from(THREADS) - 3,
            "round {round}: {report:?}"
        );
        assert_eq!(report.distinct(), 1, "round {round}: one race class");
    }
}

/// Mutex-protected same-key writers: the runtime's tracked lock orders all
/// critical sections, so no linearization contains a race even though every
/// thread hammers one key.
#[test]
fn lock_protected_writers_never_race() {
    let rd2 = Arc::new(Rd2::new());
    let rt = Runtime::new(rd2.clone());
    let main = rt.main_ctx();
    let dict = MonitoredDict::new(&rt);
    let mutex = Arc::new(rt.new_mutex());

    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let dict = dict.clone();
        let mutex = Arc::clone(&mutex);
        handles.push(rt.spawn(&main, move |ctx| {
            for _ in 0..50 {
                let _g = mutex.lock(ctx);
                let v = dict.get(ctx, Value::Int(1)).as_int().unwrap_or(0);
                dict.put(ctx, Value::Int(1), Value::Int(v + 1));
            }
        }));
    }
    for h in handles {
        h.join(&main).unwrap();
    }
    assert_eq!(
        dict.get_untracked(&Value::Int(1)),
        Value::Int(i64::from(THREADS) * 50)
    );
    let report = rd2.report();
    assert!(report.is_empty(), "{report:?}");
}

/// An [`Analysis`] that atomically forwards every event to both a
/// [`Recorder`] and a live [`Rd2`]. The mutex serializes the pair, so the
/// recorded trace is exactly the event order the live detector saw — which
/// makes an *exact* (not merely existence-level) differential against the
/// serial [`TraceDetector`] possible even though race totals are
/// schedule-dependent.
struct Tee {
    gate: Mutex<()>,
    recorder: Recorder,
    rd2: Rd2,
}

impl Tee {
    fn new() -> Tee {
        Tee {
            gate: Mutex::new(()),
            recorder: Recorder::new(),
            rd2: Rd2::new(),
        }
    }
}

impl Analysis for Tee {
    fn name(&self) -> &str {
        "tee(recorder, rd2)"
    }

    fn on_fork(&self, parent: ThreadId, child: ThreadId) {
        let _g = self.gate.lock().unwrap();
        self.recorder.on_fork(parent, child);
        self.rd2.on_fork(parent, child);
    }

    fn on_join(&self, parent: ThreadId, child: ThreadId) {
        let _g = self.gate.lock().unwrap();
        self.recorder.on_join(parent, child);
        self.rd2.on_join(parent, child);
    }

    fn on_acquire(&self, tid: ThreadId, lock: LockId) {
        let _g = self.gate.lock().unwrap();
        self.recorder.on_acquire(tid, lock);
        self.rd2.on_acquire(tid, lock);
    }

    fn on_release(&self, tid: ThreadId, lock: LockId) {
        let _g = self.gate.lock().unwrap();
        self.recorder.on_release(tid, lock);
        self.rd2.on_release(tid, lock);
    }

    fn on_action(&self, tid: ThreadId, action: &Action) {
        let _g = self.gate.lock().unwrap();
        self.recorder.on_action(tid, action);
        self.rd2.on_action(tid, action);
    }

    fn report(&self) -> RaceReport {
        self.rd2.report()
    }
}

impl ObjectRegistry for Tee {
    fn on_new_object(&self, obj: ObjId, spec: &Spec) {
        let _g = self.gate.lock().unwrap();
        self.recorder.on_new_object(obj, spec);
        self.rd2.on_new_object(obj, spec);
    }
}

/// The exact differential: run a deliberately messy workload (two dicts,
/// shared and private keys, a partially-protecting lock) under the `Tee`,
/// then replay the recording through the serial detector and require the
/// two reports to be equal as values — same total, same race-class set,
/// same per-class counts, same retained sample records in the same order.
#[test]
fn live_rd2_report_equals_serial_replay_of_the_recorded_trace() {
    for round in 0..5u64 {
        let tee = Arc::new(Tee::new());
        let rt = Runtime::new(tee.clone());
        let main = rt.main_ctx();
        let d1 = MonitoredDict::new(&rt);
        let d2 = MonitoredDict::new(&rt);
        let mutex = Arc::new(rt.new_mutex());

        let mut handles = Vec::new();
        for t in 0..THREADS {
            let d1 = d1.clone();
            let d2 = d2.clone();
            let mutex = Arc::clone(&mutex);
            handles.push(rt.spawn(&main, move |ctx| {
                for i in 0..40i64 {
                    match (i64::from(t) + i) % 4 {
                        0 => {
                            // Unprotected shared-key put: races.
                            d1.put(ctx, Value::Int(0), Value::Int(i));
                        }
                        1 => {
                            // Private key: never races.
                            d1.put(ctx, Value::Int(100 + i64::from(t)), Value::Int(i));
                        }
                        2 => {
                            // Lock-protected shared key on the other dict.
                            let _g = mutex.lock(ctx);
                            d2.put(ctx, Value::Int(1), Value::Int(i));
                        }
                        _ => {
                            // Unprotected read of the shared key.
                            d1.get(ctx, Value::Int(0));
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }

        let live = tee.rd2.report();
        let trace = tee.recorder.snapshot();

        let detector = TraceDetector::new();
        let compiled = Arc::new(translate(MonitoredDict::spec()).unwrap());
        detector.register(d1.obj(), compiled.clone());
        detector.register(d2.obj(), compiled);
        let replayed = replay(&trace, &detector);

        assert_eq!(
            live, replayed,
            "round {round}: live sharded Rd2 and serial replay diverge"
        );
        assert!(live.total() > 0, "round {round}: workload must race");
    }
}
