//! Differential soak: the daemon-streamed report is bit-for-bit the
//! offline replay report.
//!
//! The daemon path has every opportunity to diverge from `crace replay`:
//! a socket in the middle, arbitrary write chunking, a bounded ingress
//! ring, a dispatcher thread, lazy per-object registration, concurrent
//! tenants sharing one process. None of it may show: for every program
//! here — random and fixture, serial and sharded at 1/2/4/8 workers,
//! streamed whole, chunked, or dribbled one byte at a time, alone or as
//! one of eight simultaneous tenants — the `REPORT` JSON coming back
//! over the wire must equal `RaceReport::to_json()` of an offline serial
//! replay of the same events, byte for byte.

use std::sync::Arc;

use crace::daemon::{Client, Endpoint, Server, ServerConfig};
use crace::model::replay;
use crace::spec::builtin;
use crace::{translate, Action, Event, LockId, ObjId, Spec, ThreadId, Trace, TraceDetector, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WIDTHS: [usize; 4] = [1, 2, 4, 8];
const NUM_OBJECTS: u64 = 4;

/// Same shape as the `parallel_vs_serial` generator: forks, joins,
/// acquire/release pairs, and put/get/size actions over four objects
/// with tiny keys so conflicts are frequent.
fn random_trace(seed: u64, events: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = builtin::dictionary();
    let put = spec.method_id("put").unwrap();
    let get = spec.method_id("get").unwrap();
    let size = spec.method_id("size").unwrap();
    let mut trace = Trace::new();
    let mut live: Vec<u32> = vec![0];
    let mut next_tid = 1u32;
    let value = |rng: &mut StdRng| -> Value {
        if rng.gen_bool(0.3) {
            Value::Nil
        } else {
            Value::Int(rng.gen_range(0..3))
        }
    };
    for _ in 0..events {
        let tid = ThreadId(live[rng.gen_range(0..live.len())]);
        let obj = ObjId(1 + rng.gen_range(0..NUM_OBJECTS));
        match rng.gen_range(0..10) {
            0 => {
                let child = ThreadId(next_tid);
                next_tid += 1;
                trace.push(Event::Fork { parent: tid, child });
                live.push(child.0);
            }
            1 if live.len() > 1 => {
                let other = live[rng.gen_range(0..live.len())];
                if other != tid.0 {
                    trace.push(Event::Join {
                        parent: tid,
                        child: ThreadId(other),
                    });
                    live.retain(|&t| t != other);
                }
            }
            2 => {
                let lock = LockId(rng.gen_range(0..2));
                trace.push(Event::Acquire { tid, lock });
                trace.push(Event::Release { tid, lock });
            }
            3..=6 => {
                let k = Value::Int(rng.gen_range(0..3));
                let action = Action::new(obj, put, vec![k, value(&mut rng)], value(&mut rng));
                trace.push(Event::Action { tid, action });
            }
            7 | 8 => {
                let k = Value::Int(rng.gen_range(0..3));
                let action = Action::new(obj, get, vec![k], value(&mut rng));
                trace.push(Event::Action { tid, action });
            }
            _ => {
                let action = Action::new(obj, size, vec![], Value::Int(rng.gen_range(0..4)));
                trace.push(Event::Action { tid, action });
            }
        }
    }
    trace
}

/// The offline ground truth: a serial replay's report JSON — exactly the
/// bytes `crace replay --json` prints for the same events.
fn offline_json(trace: &Trace) -> String {
    let detector = TraceDetector::new();
    let compiled = Arc::new(translate(&builtin::dictionary()).unwrap());
    for obj in 1..=NUM_OBJECTS {
        detector.register(ObjId(obj), Arc::clone(&compiled));
    }
    replay(trace, &detector).to_json()
}

fn start_server() -> Server {
    Server::start(
        &Endpoint::Tcp("127.0.0.1:0".to_string()),
        ServerConfig::default(),
    )
    .expect("bind test server")
}

/// Streams `trace` to `server` as a fresh session and returns the final
/// report JSON. `chunk == 0` sends one framed line per write; otherwise
/// the whole framed body goes out in `chunk`-byte pieces.
fn stream_session(
    server: &Server,
    session: &str,
    trace: &Trace,
    spec: &Spec,
    workers: usize,
    chunk: usize,
) -> String {
    let mut client = Client::connect(server.endpoint()).expect("connect");
    client
        .hello(session, "dictionary", workers, None)
        .expect("HELLO accepted");
    if chunk == 0 {
        for event in trace.events() {
            client.send_event(event, spec).expect("send");
        }
    } else {
        let body = crace::cli::render_framed(trace, spec);
        client.send_chunked(body.as_bytes(), chunk).expect("send");
    }
    let (report, stats) = client.bye().expect("BYE accepted");
    assert_eq!(
        stats.get("events"),
        trace.len() as u64,
        "session `{session}`: daemon ingested a different event count"
    );
    assert_eq!(stats.get("torn"), 0, "clean session must not be torn");
    report
}

/// The headline: 100+ random programs, every worker width, chunk sizes
/// down to a single byte per write — wire report equals offline replay.
#[test]
fn daemon_reports_equal_offline_replay_on_random_programs() {
    let server = start_server();
    let spec = builtin::dictionary();
    // Chunk cycle: per-event lines, big chunks, awkward primes, and the
    // 1-byte dribble (kept for the smaller corpus below — it is slow).
    let chunks = [0usize, 4096, 17, 3];
    for seed in 0..100u64 {
        let trace = random_trace(seed, 100);
        let offline = offline_json(&trace);
        let workers = WIDTHS[seed as usize % WIDTHS.len()];
        let chunk = chunks[seed as usize % chunks.len()];
        let wire = stream_session(
            &server,
            &format!("rand-{seed}"),
            &trace,
            &spec,
            workers,
            chunk,
        );
        assert_eq!(
            wire, offline,
            "seed {seed}, {workers} worker(s), chunk {chunk}: daemon diverges from replay"
        );
    }
    server.shutdown();
}

/// A smaller corpus crossed against *every* width, plus the 1-byte
/// dribble — the pathological framing case where each socket read sees
/// a fragment of a record.
#[test]
fn every_width_and_the_one_byte_dribble_agree() {
    let server = start_server();
    let spec = builtin::dictionary();
    for seed in 1000..1010u64 {
        let trace = random_trace(seed, 60);
        let offline = offline_json(&trace);
        for workers in WIDTHS {
            let wire = stream_session(
                &server,
                &format!("width-{seed}-{workers}"),
                &trace,
                &spec,
                workers,
                0,
            );
            assert_eq!(wire, offline, "seed {seed}, {workers} worker(s)");
        }
        let dribbled = stream_session(&server, &format!("dribble-{seed}"), &trace, &spec, 2, 1);
        assert_eq!(dribbled, offline, "seed {seed}: dribble diverges");
    }
    server.shutdown();
}

/// Concurrent tenants: 2–8 clients stream different programs into one
/// daemon simultaneously; each gets exactly its own offline report.
#[test]
fn concurrent_tenants_each_get_their_own_report() {
    let server = Arc::new(start_server());
    for tenants in [2usize, 5, 8] {
        let mut workers_threads = Vec::new();
        for t in 0..tenants {
            let server = Arc::clone(&server);
            workers_threads.push(std::thread::spawn(move || {
                let spec = builtin::dictionary();
                let seed = 2000 + (tenants * 100 + t) as u64;
                let trace = random_trace(seed, 120);
                let offline = offline_json(&trace);
                let wire = stream_session(
                    &server,
                    &format!("tenant-{tenants}-{t}"),
                    &trace,
                    &spec,
                    WIDTHS[t % WIDTHS.len()],
                    [0usize, 64][t % 2],
                );
                assert_eq!(
                    wire, offline,
                    "tenant {t}/{tenants}: report cross-contaminated or diverged"
                );
            }));
        }
        for handle in workers_threads {
            handle.join().expect("tenant thread panicked");
        }
        assert_eq!(server.active_sessions(), 0, "sessions leaked");
    }
}

/// Interim REPORTs mid-stream are a read-only barrier: they must be
/// valid JSON, monotone in total, and must not perturb the final report.
#[test]
fn interim_reports_do_not_perturb_the_final_report() {
    let server = start_server();
    let spec = builtin::dictionary();
    let trace = random_trace(77, 150);
    let offline = offline_json(&trace);
    let mut client = Client::connect(server.endpoint()).expect("connect");
    client
        .hello("interim", "dictionary", 4, None)
        .expect("HELLO");
    let mut last_total = 0u64;
    for (i, event) in trace.events().iter().enumerate() {
        client.send_event(event, &spec).expect("send");
        if i % 40 == 39 {
            let interim = client.report().expect("interim REPORT");
            crace::obs::json::validate(&interim).expect("interim report is valid JSON");
            let total = total_of(&interim);
            assert!(total >= last_total, "interim totals must be monotone");
            last_total = total;
        }
    }
    let (fin, _) = client.bye().expect("BYE");
    assert_eq!(fin, offline, "interim barriers perturbed the final report");
    assert!(total_of(&fin) >= last_total);
    server.shutdown();
}

/// The paper's fixture file, streamed verbatim (header line and all) the
/// way `crace submit` does, against the known answer and offline replay.
#[test]
fn fixture_trace_streams_verbatim_to_the_fixture_answer() {
    let server = start_server();
    let spec = builtin::dictionary();
    let body = std::fs::read_to_string("crates/cli/tests/data/fig3.framed.trace").unwrap();
    let trace = crace::cli::parse_trace(&body, &spec).unwrap();
    let offline = offline_json(&trace);

    for (chunk, name) in [(4096usize, "fixture-whole"), (1, "fixture-dribble")] {
        let mut client = Client::connect(server.endpoint()).expect("connect");
        client.hello(name, "dictionary", 2, None).expect("HELLO");
        client.send_chunked(body.as_bytes(), chunk).expect("send");
        let (report, stats) = client.bye().expect("BYE");
        assert_eq!(report, offline, "{name}: fixture diverges");
        assert_eq!(stats.get("races"), 1, "{name}: fig3 has exactly one race");
        assert_eq!(stats.get("events"), trace.len() as u64);
    }
    server.shutdown();
}

/// Pulls `"total": N` out of a report JSON (first field, hand-written
/// deterministic writer — no parser needed).
fn total_of(report: &str) -> u64 {
    report
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"total\": "))
        .and_then(|v| v.trim_end_matches(',').parse().ok())
        .expect("report carries a total")
}
