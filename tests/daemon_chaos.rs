//! Chaos plane for the daemon: torn streams, injected detector panics,
//! forced overload shedding, and a bounded connect/disconnect soak.
//!
//! The contract under test is the degradation contract of DESIGN.md,
//! now at the service boundary: under *any* of these failures the
//! daemon **may hide races but never invents them**, every loss is
//! counted exactly, one tenant's failure never touches another, and no
//! session or connection leaks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crace::daemon::{Client, Endpoint, Server, ServerConfig};
use crace::model::replay;
use crace::obs::MetricValue;
use crace::spec::builtin;
use crace::{
    translate, Action, Event, LockId, ObjId, RaceReport, ThreadId, Trace, TraceDetector, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NUM_OBJECTS: u64 = 4;

/// Same generator as `daemon_vs_replay.rs` (duplicated on purpose: each
/// differential file stays self-contained).
fn random_trace(seed: u64, events: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = builtin::dictionary();
    let put = spec.method_id("put").unwrap();
    let get = spec.method_id("get").unwrap();
    let mut trace = Trace::new();
    let mut live: Vec<u32> = vec![0];
    let mut next_tid = 1u32;
    for _ in 0..events {
        let tid = ThreadId(live[rng.gen_range(0..live.len())]);
        let obj = ObjId(1 + rng.gen_range(0..NUM_OBJECTS));
        match rng.gen_range(0..10) {
            0 => {
                let child = ThreadId(next_tid);
                next_tid += 1;
                trace.push(Event::Fork { parent: tid, child });
                live.push(child.0);
            }
            1 if live.len() > 1 => {
                let other = live[rng.gen_range(0..live.len())];
                if other != tid.0 {
                    trace.push(Event::Join {
                        parent: tid,
                        child: ThreadId(other),
                    });
                    live.retain(|&t| t != other);
                }
            }
            2 => {
                let lock = LockId(rng.gen_range(0..2));
                trace.push(Event::Acquire { tid, lock });
                trace.push(Event::Release { tid, lock });
            }
            3..=7 => {
                let k = Value::Int(rng.gen_range(0..3));
                let action = Action::new(obj, put, vec![k, Value::Int(1)], Value::Nil);
                trace.push(Event::Action { tid, action });
            }
            _ => {
                let k = Value::Int(rng.gen_range(0..3));
                let action = Action::new(obj, get, vec![k], Value::Nil);
                trace.push(Event::Action { tid, action });
            }
        }
    }
    trace
}

fn offline_report(trace: &Trace) -> RaceReport {
    let detector = TraceDetector::new();
    let compiled = Arc::new(translate(&builtin::dictionary()).unwrap());
    for obj in 1..=NUM_OBJECTS {
        detector.register(ObjId(obj), Arc::clone(&compiled));
    }
    replay(trace, &detector)
}

fn start_server(cfg: ServerConfig) -> Server {
    Server::start(&Endpoint::Tcp("127.0.0.1:0".to_string()), cfg).expect("bind test server")
}

/// `a`'s per-site counts are a pointwise subset of `b`'s — the "may hide,
/// never invent" order on reports.
fn is_subreport(a: &RaceReport, b: &RaceReport) -> bool {
    let full: std::collections::HashMap<String, u64> = b.per_site().into_iter().collect();
    a.per_site()
        .into_iter()
        .all(|(site, n)| full.get(&site).is_some_and(|&m| n <= m))
}

/// Polls until the server retains an outcome for `name` (the connection
/// handler finalizes asynchronously after a disconnect).
fn wait_outcome(server: &Server, name: &str) -> crace::SessionOutcome {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(outcome) = server.outcome(name) {
            return outcome;
        }
        assert!(
            Instant::now() < deadline,
            "no outcome for `{name}` within 10s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn wait_no_sessions(server: &Server) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active_sessions() > 0 {
        assert!(Instant::now() < deadline, "sessions leaked");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A client killed mid-record still yields a report: the valid prefix is
/// analyzed, the torn tail is counted byte-for-byte, and nothing leaks.
#[test]
fn mid_stream_kill_reports_the_torn_prefix_with_exact_loss_accounting() {
    let server = start_server(ServerConfig::default());
    let spec = builtin::dictionary();
    let trace = random_trace(11, 60);
    let lines: Vec<String> = trace
        .events()
        .iter()
        .map(|e| crace::cli::frame_event(e, &spec))
        .collect();

    // Case 1: die in the middle of a record.
    let cut = 40usize;
    let partial = &lines[cut].as_bytes()[..7];
    {
        let mut client = Client::connect(server.endpoint()).expect("connect");
        client
            .hello("kill-mid", "dictionary", 2, None)
            .expect("HELLO");
        for line in &lines[..cut] {
            client
                .send_raw(format!("{line}\n").as_bytes())
                .expect("send");
        }
        client.send_raw(partial).expect("send partial");
        // Drop without BYE: the socket closes with a torn tail in flight.
    }
    let outcome = wait_outcome(&server, "kill-mid");
    let damage = outcome.damage.expect("mid-record kill must be torn");
    assert_eq!(
        damage.lost_bytes,
        partial.len() as u64,
        "exact torn-tail bytes"
    );
    assert_eq!(damage.lost_records, 1);
    assert!(!outcome.clean_bye);
    assert!(outcome.degraded, "a torn session is a degraded session");
    let mut prefix = Trace::new();
    for event in &trace.events()[..cut] {
        prefix.push(event.clone());
    }
    assert_eq!(
        outcome.report_json,
        offline_report(&prefix).to_json(),
        "torn-prefix report must equal offline replay of the prefix"
    );

    // Case 2: die exactly on a record boundary — nothing was lost, but
    // the missing BYE still marks the stream torn.
    {
        let mut client = Client::connect(server.endpoint()).expect("connect");
        client
            .hello("kill-edge", "dictionary", 0, None)
            .expect("HELLO");
        for line in &lines[..cut] {
            client
                .send_raw(format!("{line}\n").as_bytes())
                .expect("send");
        }
    }
    let outcome = wait_outcome(&server, "kill-edge");
    let damage = outcome.damage.expect("no BYE means torn");
    assert_eq!(damage.lost_bytes, 0);
    assert_eq!(damage.lost_records, 0);
    assert_eq!(outcome.report_json, offline_report(&prefix).to_json());

    wait_no_sessions(&server);
    server.shutdown();
}

/// A damaged record (CRC flip) on the wire tears the session at that
/// line: the intact prefix reports, the bad line is counted.
#[test]
fn damaged_record_tears_the_session_and_counts_the_bad_line() {
    let server = start_server(ServerConfig::default());
    let spec = builtin::dictionary();
    let trace = random_trace(12, 30);
    let lines: Vec<String> = trace
        .events()
        .iter()
        .map(|e| crace::cli::frame_event(e, &spec))
        .collect();
    let mut client = Client::connect(server.endpoint()).expect("connect");
    client
        .hello("crc-flip", "dictionary", 0, None)
        .expect("HELLO");
    for line in &lines[..20] {
        client
            .send_raw(format!("{line}\n").as_bytes())
            .expect("send");
    }
    // Flip one payload byte: the length still matches, the CRC cannot.
    let mut bad = lines[20].clone().into_bytes();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    bad.push(b'\n');
    client.send_raw(&bad).expect("send damaged");
    let reply = client.drain();
    assert!(
        reply.contains("ERR torn:"),
        "server must name the tear: {reply}"
    );
    let outcome = wait_outcome(&server, "crc-flip");
    let damage = outcome.damage.expect("damaged record is a torn stream");
    assert_eq!(damage.lost_bytes, bad.len() as u64);
    assert_eq!(damage.lost_records, 1);
    let mut prefix = Trace::new();
    for event in &trace.events()[..20] {
        prefix.push(event.clone());
    }
    assert_eq!(outcome.report_json, offline_report(&prefix).to_json());
    wait_no_sessions(&server);
    server.shutdown();
}

/// `faults=panic@K` detonates inside one tenant's detector: that session
/// quarantines and fails open (a subreport, panic counted, degraded
/// flagged, metrics visible) while a concurrent clean tenant's report
/// stays bit-for-bit exact.
#[test]
fn injected_detector_panic_is_isolated_to_its_tenant() {
    let server = Arc::new(start_server(ServerConfig::default()));
    let spec = builtin::dictionary();
    let trace = random_trace(13, 80);
    let offline = offline_report(&trace);

    // The clean tenant runs concurrently with the panicking one.
    let clean_server = Arc::clone(&server);
    let clean_trace = trace.clone();
    let clean = std::thread::spawn(move || {
        let spec = builtin::dictionary();
        let mut client = Client::connect(clean_server.endpoint()).expect("connect");
        client.hello("clean", "dictionary", 4, None).expect("HELLO");
        for event in clean_trace.events() {
            client.send_event(event, &spec).expect("send");
        }
        client.bye().expect("BYE")
    });

    let mut client = Client::connect(server.endpoint()).expect("connect");
    client
        .hello("chaotic", "dictionary", 0, Some("panic@5"))
        .expect("faults accepted when the server allows them");
    for event in trace.events() {
        client.send_event(event, &spec).expect("send");
    }
    // Barrier mid-session so the scrape below observes the armed state.
    client.report().expect("interim report");
    let scrape = server.scrape();
    assert_eq!(
        scrape.get("session.chaotic.rd2.analysis_panics"),
        Some(&MetricValue::Counter(1)),
        "the panic counter must move on the live scrape"
    );
    assert_eq!(
        scrape.get("session.chaotic.rd2.degraded_mode"),
        Some(&MetricValue::Gauge(1.0)),
        "the degraded gauge must move on the live scrape"
    );
    assert_eq!(
        scrape.get("session.chaotic.fault.panics_injected"),
        Some(&MetricValue::Counter(1)),
    );
    let (_, stats) = client.bye().expect("BYE");
    assert_eq!(stats.get("panics"), 1);
    assert_eq!(stats.get("degraded"), 1);
    let outcome = wait_outcome(&server, "chaotic");
    assert!(outcome.degraded);
    assert_eq!(outcome.analysis_panics, 1);
    assert!(
        is_subreport(&outcome.report, &offline),
        "fail-open may hide races, never invent them"
    );

    let (clean_report, clean_stats) = clean.join().expect("clean tenant panicked");
    assert_eq!(
        clean_report,
        offline.to_json(),
        "a neighbor's panic must not touch a clean tenant"
    );
    assert_eq!(clean_stats.get("degraded"), 0);
    assert_eq!(clean_stats.get("panics"), 0);
    wait_no_sessions(&server);
}

/// A server configured to refuse faults rejects the HELLO outright.
#[test]
fn fault_plans_are_rejected_when_not_allowed() {
    let server = start_server(ServerConfig {
        allow_faults: false,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.endpoint()).expect("connect");
    let err = client
        .hello("nope", "dictionary", 0, Some("panic@1"))
        .expect_err("faults must be refused");
    assert!(err.contains("disabled"), "got: {err}");
    assert_eq!(server.active_sessions(), 0);
    server.shutdown();
}

/// Forced overload: a tiny ring, a near-zero grace, and an injected
/// dispatch delay stall the dispatcher so the ladder must shed. Sync
/// events still all arrive (backpressure), only data-plane events are
/// shed, every shed is counted, and the report is a subreport.
#[test]
fn overload_sheds_data_plane_only_and_counts_every_loss() {
    let server = start_server(ServerConfig {
        ring_capacity: 2,
        shed_grace: Duration::from_millis(1),
        ..ServerConfig::default()
    });
    let spec = builtin::dictionary();
    let trace = random_trace(14, 120);
    let sync_events = trace.events().iter().filter(|e| e.is_sync()).count() as u64;
    let offline = offline_report(&trace);
    let mut client = Client::connect(server.endpoint()).expect("connect");
    // Stall the dispatcher 30ms on each of the first three dispatches;
    // with a 2-slot ring and 1ms grace the producer must shed.
    client
        .hello(
            "overload",
            "dictionary",
            0,
            Some("delay@0:30000,delay@1:30000,delay@2:30000"),
        )
        .expect("HELLO");
    for event in trace.events() {
        client.send_event(event, &spec).expect("send");
    }
    let (_, stats) = client.bye().expect("BYE");
    assert!(
        stats.get("shed_ring") > 0,
        "the ladder never shed: {stats:?}"
    );
    assert_eq!(stats.get("events"), trace.len() as u64);
    let outcome = wait_outcome(&server, "overload");
    assert_eq!(outcome.shed_ring, stats.get("shed_ring"));
    assert!(
        outcome.shed_ring <= trace.len() as u64 - sync_events,
        "sync events must never shed (only {} data events existed)",
        trace.len() as u64 - sync_events
    );
    assert!(
        is_subreport(&outcome.report, &offline),
        "shedding may hide races, never invent them"
    );
    server.shutdown();
}

/// The bounded soak: churn connections against one daemon — clean runs,
/// mid-stream kills, fault injections, instant disconnects, HTTP scrapes
/// — for `CRACE_SOAK_SECS` (default 30). The daemon must stay live
/// (every thread makes progress), keep counters monotone, end with zero
/// sessions, and never diverge on the clean runs.
#[test]
fn soak_survives_connect_disconnect_churn_with_monotone_counters() {
    let secs: u64 = std::env::var("CRACE_SOAK_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let server = Arc::new(start_server(ServerConfig::default()));
    let deadline = Instant::now() + Duration::from_secs(secs);
    let iterations = Arc::new(AtomicU64::new(0));
    let mut churners = Vec::new();
    for worker in 0..4u64 {
        let server = Arc::clone(&server);
        let iterations = Arc::clone(&iterations);
        churners.push(std::thread::spawn(move || {
            let spec = builtin::dictionary();
            let mut round = 0u64;
            while Instant::now() < deadline {
                round += 1;
                let seed = worker * 1_000_000 + round;
                let name = format!("soak-{worker}-{round}");
                let trace = random_trace(seed, 40);
                match round % 5 {
                    // Clean run: the report must stay exact even while
                    // neighbors are being killed and panicked.
                    0 | 1 => {
                        let mut client = Client::connect(server.endpoint()).expect("connect");
                        client
                            .hello(&name, "dictionary", (seed % 4) as usize, None)
                            .expect("HELLO");
                        for event in trace.events() {
                            client.send_event(event, &spec).expect("send");
                        }
                        let (report, _) = client.bye().expect("BYE");
                        assert_eq!(report, offline_report(&trace).to_json(), "{name} diverged");
                    }
                    // Mid-stream kill.
                    2 => {
                        let mut client = Client::connect(server.endpoint()).expect("connect");
                        client.hello(&name, "dictionary", 0, None).expect("HELLO");
                        for event in &trace.events()[..20] {
                            client.send_event(event, &spec).expect("send");
                        }
                        client.send_raw(b"=13:00000000 par").expect("partial");
                        drop(client);
                    }
                    // Injected detector panic.
                    3 => {
                        let mut client = Client::connect(server.endpoint()).expect("connect");
                        client
                            .hello(&name, "dictionary", 0, Some("panic@3"))
                            .expect("HELLO");
                        for event in trace.events() {
                            client.send_event(event, &spec).expect("send");
                        }
                        let (_, stats) = client.bye().expect("BYE");
                        assert_eq!(stats.get("panics"), 1, "{name}");
                    }
                    // Connect-and-vanish, then an HTTP scrape.
                    _ => {
                        let client = Client::connect(server.endpoint()).expect("connect");
                        drop(client);
                        let prom = http_get(server.endpoint(), "/metrics");
                        assert!(prom.contains("crace_daemon_connections"), "scrape broke");
                    }
                }
                iterations.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Meanwhile: counters sampled from the scrape must be monotone.
    let monotone = [
        "daemon.connections",
        "daemon.sessions_opened",
        "daemon.sessions_closed",
        "daemon.events_total",
        "daemon.races_total",
    ];
    let mut last = [0u64; 5];
    while Instant::now() < deadline {
        let scrape = server.scrape();
        for (i, name) in monotone.iter().enumerate() {
            if let Some(MetricValue::Counter(n)) = scrape.get(name) {
                assert!(
                    *n >= last[i],
                    "counter {name} went backwards: {} -> {n}",
                    last[i]
                );
                last[i] = *n;
            }
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    for churner in churners {
        churner
            .join()
            .expect("churner panicked (deadlock or divergence)");
    }
    let total = iterations.load(Ordering::Relaxed);
    assert!(
        total >= 8,
        "only {total} iterations in {secs}s — the daemon stalled"
    );
    wait_no_sessions(&server);
    // Every opened session must eventually close (handlers finalize
    // asynchronously after the churners drop their sockets).
    let end = Instant::now() + Duration::from_secs(10);
    loop {
        let scrape = server.scrape();
        let opened = match scrape.get("daemon.sessions_opened") {
            Some(MetricValue::Counter(n)) => *n,
            _ => 0,
        };
        let closed = match scrape.get("daemon.sessions_closed") {
            Some(MetricValue::Counter(n)) => *n,
            _ => 0,
        };
        if opened == closed {
            break;
        }
        assert!(
            Instant::now() < end,
            "sessions never finished closing: opened={opened} closed={closed}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Minimal HTTP/1.1 GET against the daemon's sniffed endpoint.
fn http_get(endpoint: &Endpoint, path: &str) -> String {
    use std::io::{Read, Write};
    let Endpoint::Tcp(addr) = endpoint else {
        panic!("soak server is TCP");
    };
    let mut stream = std::net::TcpStream::connect(addr).expect("connect http");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: craced\r\n\r\n").as_bytes())
        .expect("write http");
    let mut body = String::new();
    let _ = stream.read_to_string(&mut body);
    body
}
