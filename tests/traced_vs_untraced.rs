//! Differential guarantees for the tracing plane.
//!
//! Span tracing is observability, not semantics: wiring a [`Tracer`]
//! into any detector must not change a single bit of its [`RaceReport`],
//! at any worker count, with GC on or off. This file replays random
//! well-formed programs through the serial detectors and the parallel
//! pipeline with tracing enabled, disabled, and absent, and asserts the
//! reports are identical — then checks the timeline itself: every
//! pipeline phase shows up as at least one span, the Chrome export
//! parses under the repo's RFC 8259 validator, the collapsed stacks are
//! non-empty, and per-worker occupancy derived from span payloads agrees
//! with the pipeline's own `parallel.*` counters.

use std::sync::Arc;

use crace::core::{ParallelConfig, ParallelRd2};
use crace::model::replay;
use crace::obs::EventKind;
use crace::spec::builtin;
use crace::{
    translate, Action, Analysis, Event, LockId, ObjId, RaceReport, Rd2, ThreadId, Trace,
    TraceDetector, Tracer, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WIDTHS: [usize; 4] = [1, 2, 4, 8];
const NUM_OBJECTS: u64 = 4;

/// Random well-formed dictionary programs over four monitored objects —
/// the same generator shape as `parallel_vs_serial.rs`.
fn random_trace(seed: u64, events: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = builtin::dictionary();
    let put = spec.method_id("put").unwrap();
    let get = spec.method_id("get").unwrap();
    let size = spec.method_id("size").unwrap();
    let mut trace = Trace::new();
    let mut live: Vec<u32> = vec![0];
    let mut next_tid = 1u32;
    let value = |rng: &mut StdRng| -> Value {
        if rng.gen_bool(0.3) {
            Value::Nil
        } else {
            Value::Int(rng.gen_range(0..3))
        }
    };
    for _ in 0..events {
        let tid = ThreadId(live[rng.gen_range(0..live.len())]);
        let obj = ObjId(1 + rng.gen_range(0..NUM_OBJECTS));
        match rng.gen_range(0..10) {
            0 => {
                let child = ThreadId(next_tid);
                next_tid += 1;
                trace.push(Event::Fork { parent: tid, child });
                live.push(child.0);
            }
            1 if live.len() > 1 => {
                let other = live[rng.gen_range(0..live.len())];
                if other != tid.0 {
                    trace.push(Event::Join {
                        parent: tid,
                        child: ThreadId(other),
                    });
                    live.retain(|&t| t != other);
                }
            }
            2 => {
                let lock = LockId(rng.gen_range(0..2));
                trace.push(Event::Acquire { tid, lock });
                trace.push(Event::Release { tid, lock });
            }
            3..=6 => {
                let k = Value::Int(rng.gen_range(0..3));
                let action = Action::new(obj, put, vec![k, value(&mut rng)], value(&mut rng));
                trace.push(Event::Action { tid, action });
            }
            7 | 8 => {
                let k = Value::Int(rng.gen_range(0..3));
                let action = Action::new(obj, get, vec![k], value(&mut rng));
                trace.push(Event::Action { tid, action });
            }
            _ => {
                let action = Action::new(obj, size, vec![], Value::Int(rng.gen_range(0..4)));
                trace.push(Event::Action { tid, action });
            }
        }
    }
    trace
}

fn compiled_dict() -> Arc<crace::core::CompiledSpec> {
    Arc::new(translate(&builtin::dictionary()).unwrap())
}

fn register_all<A: Analysis, F: Fn(&A, ObjId)>(detector: &A, register: F) -> &A {
    for obj in 1..=NUM_OBJECTS {
        register(detector, ObjId(obj));
    }
    detector
}

fn run_trace_detector(trace: &Trace, tracer: Option<&Tracer>, sample: u64) -> RaceReport {
    let detector = match tracer {
        Some(t) => TraceDetector::with_tracer(t, sample),
        None => TraceDetector::new(),
    };
    let compiled = compiled_dict();
    register_all(&detector, |d, obj| d.register(obj, Arc::clone(&compiled)));
    replay(trace, &detector)
}

fn run_rd2(trace: &Trace, tracer: Option<&Tracer>, sample: u64) -> RaceReport {
    let detector = match tracer {
        Some(t) => Rd2::with_tracer(t, sample),
        None => Rd2::new(),
    };
    let compiled = compiled_dict();
    register_all(&detector, |d, obj| d.register(obj, Arc::clone(&compiled)));
    replay(trace, &detector)
}

fn run_parallel(trace: &Trace, workers: usize, cfg: ParallelConfig) -> (RaceReport, ParallelRd2) {
    let detector = ParallelRd2::with_config(workers, cfg);
    let compiled = compiled_dict();
    register_all(&detector, |d, obj| d.register(obj, Arc::clone(&compiled)));
    let report = replay(trace, &detector);
    (report, detector)
}

/// Serial detectors: the report with a tracer attached (at several
/// sampling periods, including every-action) is bit-for-bit the report
/// without one.
#[test]
fn serial_reports_are_identical_traced_and_untraced() {
    for seed in 0..30u64 {
        let trace = random_trace(seed, 120);
        let base_td = run_trace_detector(&trace, None, 0);
        let base_rd2 = run_rd2(&trace, None, 0);
        for sample in [1u64, 64] {
            let tracer = Tracer::new();
            assert_eq!(
                run_trace_detector(&trace, Some(&tracer), sample),
                base_td,
                "seed {seed}, sample {sample}: TraceDetector report changed under tracing"
            );
            let tracer = Tracer::new();
            assert_eq!(
                run_rd2(&trace, Some(&tracer), sample),
                base_rd2,
                "seed {seed}, sample {sample}: Rd2 report changed under tracing"
            );
        }
    }
}

/// The pipeline: at widths 1/2/4/8, with GC off and aggressively on, the
/// traced report equals the untraced one bit for bit.
#[test]
fn parallel_reports_are_identical_traced_and_untraced_at_every_width() {
    for seed in 100..130u64 {
        let trace = random_trace(seed, 150);
        for workers in WIDTHS {
            for gc_every in [0usize, 8] {
                let cfg = ParallelConfig {
                    batch: 16,
                    gc_every,
                    ..ParallelConfig::default()
                };
                let (untraced, _) = run_parallel(&trace, workers, cfg.clone());
                let tracer = Arc::new(Tracer::new());
                let traced_cfg = ParallelConfig {
                    tracer: Some(Arc::clone(&tracer)),
                    ..cfg
                };
                let (traced, _) = run_parallel(&trace, workers, traced_cfg);
                assert_eq!(
                    traced, untraced,
                    "seed {seed}, {workers} worker(s), gc {gc_every}: tracing changed the report"
                );
            }
        }
    }
}

/// Returns the total span `aux` payload per phase name, across lanes.
fn aux_by_phase(tracer: &Tracer) -> std::collections::BTreeMap<String, (u64, u64)> {
    let mut by_phase = std::collections::BTreeMap::new();
    for lane in tracer.lanes() {
        for event in lane.events() {
            if let Some(name) = tracer.phase_name(event.phase) {
                let slot = by_phase.entry(name).or_insert((0u64, 0u64));
                slot.0 += 1;
                slot.1 += event.aux;
            }
        }
    }
    by_phase
}

/// A traced pipeline run covers every phase — ingress, worker batches,
/// sync broadcasts, GC sweeps, and the report merge all record at least
/// one span — and both exports are well-formed.
#[test]
fn parallel_timeline_covers_every_phase_and_exports_validate() {
    let trace = random_trace(4242, 400);
    let tracer = Arc::new(Tracer::new());
    let cfg = ParallelConfig {
        batch: 8,
        gc_every: 8,
        tracer: Some(Arc::clone(&tracer)),
        ..ParallelConfig::default()
    };
    let (_, _detector) = run_parallel(&trace, 4, cfg);

    let by_phase = aux_by_phase(&tracer);
    for phase in [
        "parallel.ingress",
        "parallel.worker",
        "parallel.sync",
        "parallel.gc",
        "parallel.merge",
    ] {
        let (spans, _) = by_phase.get(phase).copied().unwrap_or((0, 0));
        assert!(
            spans > 0,
            "phase {phase} recorded no span; got {by_phase:?}"
        );
    }

    let chrome = tracer.to_chrome_json();
    crace::obs::json::validate(&chrome).expect("chrome export is RFC 8259 valid");
    assert!(chrome.contains("\"traceEvents\""));
    let folded = tracer.to_folded();
    assert!(!folded.is_empty(), "collapsed stacks are empty");
    assert!(
        folded.lines().all(|l| l.rsplit_once(' ').is_some()),
        "every folded line ends in a self-time sample"
    );
}

/// Span payloads are the pipeline's own counters: each worker's batch
/// spans accumulate exactly the messages that worker processed, so the
/// span-derived per-worker occupancy share must agree with
/// [`ParallelStats`](crace::ParallelStats) — the acceptance bound is 5%,
/// the construction makes it exact.
#[test]
fn span_derived_worker_occupancy_agrees_with_pipeline_stats() {
    let trace = random_trace(777, 600);
    let tracer = Arc::new(Tracer::new());
    let cfg = ParallelConfig {
        batch: 8,
        tracer: Some(Arc::clone(&tracer)),
        ..ParallelConfig::default()
    };
    let (_, detector) = run_parallel(&trace, 4, cfg);
    let stats = detector.stats();

    let total_events: u64 = stats.workers.iter().map(|w| w.events).sum();
    assert!(total_events > 0, "pipeline processed nothing");
    for (w, worker) in stats.workers.iter().enumerate() {
        let lane = tracer.lane(&format!("worker{w}"));
        let span_events: u64 = lane
            .events()
            .iter()
            .filter(|e| {
                matches!(e.kind, EventKind::Span)
                    && tracer.phase_name(e.phase).as_deref() == Some("parallel.worker")
            })
            .map(|e| e.aux)
            .sum();
        assert!(lane.dropped() == 0, "worker{w} lane overflowed the test");
        let span_share = span_events as f64 / total_events as f64;
        let stats_share = worker.events as f64 / total_events as f64;
        assert!(
            (span_share - stats_share).abs() <= 0.05,
            "worker{w}: span share {span_share:.4} vs stats share {stats_share:.4}"
        );
    }
}

/// Tracing composes with the zero-copy offline path: `ingest_shared`
/// under a tracer still produces the untraced report and a phase-complete
/// timeline.
#[test]
fn shared_ingestion_is_unchanged_by_tracing() {
    let trace = Arc::new(random_trace(999, 300));
    let untraced = {
        let detector = ParallelRd2::with_config(4, ParallelConfig::default());
        let compiled = compiled_dict();
        register_all(&detector, |d, obj| d.register(obj, Arc::clone(&compiled)));
        detector.ingest_shared(&trace);
        detector.report()
    };
    let tracer = Arc::new(Tracer::new());
    let cfg = ParallelConfig {
        tracer: Some(Arc::clone(&tracer)),
        ..ParallelConfig::default()
    };
    let detector = ParallelRd2::with_config(4, cfg);
    let compiled = compiled_dict();
    register_all(&detector, |d, obj| d.register(obj, Arc::clone(&compiled)));
    detector.ingest_shared(&trace);
    assert_eq!(detector.report(), untraced, "tracing changed the report");
    let by_phase = aux_by_phase(&tracer);
    for phase in ["parallel.ingress", "parallel.worker", "parallel.merge"] {
        assert!(
            by_phase.get(phase).is_some_and(|&(spans, _)| spans > 0),
            "phase {phase} missing from shared-ingestion timeline: {by_phase:?}"
        );
    }
}
