//! Integration test for Theorem 5.2: if a trace has no commutativity
//! races, then every trace admitting the same happens-before relation
//! (i.e. every linearization of the same partial order) ends in the same
//! state — and is also race-free. Conversely, racy traces can end in
//! different states.
//!
//! We exercise this by generating structured fork/join programs whose
//! per-thread operation sequences are fixed, executing *different
//! interleavings* against a reference dictionary (so the return values are
//! recomputed per interleaving, as a real execution would), and comparing
//! final states and reports.

use crace::{translate, Action, Event, MethodId, ObjId, ThreadId, Trace, TraceDetector, Value};
use crace_model::replay;
use crace_spec::builtin;
use std::collections::HashMap;
use std::sync::Arc;

const OBJ: ObjId = ObjId(1);

/// An abstract dictionary operation (without return values — those depend
/// on the interleaving).
#[derive(Clone, Copy, Debug)]
enum Op {
    Put(i64, i64),
    Get(i64),
    Size,
}

/// A two-phase program: the main thread forks two workers that run their
/// op lists, then joins both and runs a final op list.
#[derive(Clone, Debug)]
struct Program {
    worker_a: Vec<Op>,
    worker_b: Vec<Op>,
    epilogue: Vec<Op>,
}

/// Executes the program under a specific interleaving of the two workers
/// (`schedule[i] == false` → next op of A, `true` → next op of B),
/// computing real return values against a reference dictionary. Returns
/// the trace and the final dictionary state.
fn execute(program: &Program, schedule: &[bool]) -> (Trace, HashMap<i64, i64>) {
    let spec = builtin::dictionary();
    let put = spec.method_id("put").unwrap();
    let get = spec.method_id("get").unwrap();
    let size = spec.method_id("size").unwrap();
    let mut dict: HashMap<i64, i64> = HashMap::new();
    let mut trace = Trace::new();
    let (main, ta, tb) = (ThreadId(0), ThreadId(1), ThreadId(2));
    trace.push(Event::Fork {
        parent: main,
        child: ta,
    });
    trace.push(Event::Fork {
        parent: main,
        child: tb,
    });

    let apply = |dict: &mut HashMap<i64, i64>, op: Op, tid: ThreadId, trace: &mut Trace| {
        let action = match op {
            Op::Put(k, v) => {
                let prev = dict.insert(k, v).map(Value::Int).unwrap_or(Value::Nil);
                Action::new(OBJ, put, vec![Value::Int(k), Value::Int(v)], prev)
            }
            Op::Get(k) => {
                let v = dict.get(&k).copied().map(Value::Int).unwrap_or(Value::Nil);
                Action::new(OBJ, get, vec![Value::Int(k)], v)
            }
            Op::Size => Action::new(OBJ, size, vec![], Value::Int(dict.len() as i64)),
        };
        trace.push(Event::Action { tid, action });
    };

    let (mut ia, mut ib) = (0usize, 0usize);
    for &pick_b in schedule {
        if pick_b && ib < program.worker_b.len() {
            apply(&mut dict, program.worker_b[ib], tb, &mut trace);
            ib += 1;
        } else if ia < program.worker_a.len() {
            apply(&mut dict, program.worker_a[ia], ta, &mut trace);
            ia += 1;
        }
    }
    while ia < program.worker_a.len() {
        apply(&mut dict, program.worker_a[ia], ta, &mut trace);
        ia += 1;
    }
    while ib < program.worker_b.len() {
        apply(&mut dict, program.worker_b[ib], tb, &mut trace);
        ib += 1;
    }

    trace.push(Event::Join {
        parent: main,
        child: ta,
    });
    trace.push(Event::Join {
        parent: main,
        child: tb,
    });
    for &op in &program.epilogue {
        apply(&mut dict, op, main, &mut trace);
    }
    (trace, dict)
}

fn detect(trace: &Trace) -> u64 {
    let detector = TraceDetector::new();
    detector.register(
        OBJ,
        Arc::new(translate(&builtin::dictionary()).expect("ECL")),
    );
    replay(trace, &detector).total()
}

/// All interleavings of a+b steps (as boolean pick-B masks with exactly
/// `b` trues), capped for sanity.
fn schedules(a: usize, b: usize) -> Vec<Vec<bool>> {
    let n = a + b;
    let mut out = Vec::new();
    for mask in 0u32..(1 << n) {
        if (mask.count_ones() as usize) == b {
            out.push((0..n).map(|i| mask & (1 << i) != 0).collect());
        }
    }
    out
}

#[test]
fn race_free_program_is_deterministic_across_all_interleavings() {
    // Workers touch disjoint keys; the epilogue reads sizes — every
    // interleaving must be race-free AND end in the same state.
    let program = Program {
        worker_a: vec![Op::Put(1, 10), Op::Get(1), Op::Put(2, 20)],
        worker_b: vec![Op::Put(5, 50), Op::Put(6, 60), Op::Get(5)],
        epilogue: vec![Op::Size, Op::Get(2)],
    };
    let mut final_states = Vec::new();
    for schedule in schedules(3, 3) {
        let (trace, state) = execute(&program, &schedule);
        assert_eq!(detect(&trace), 0, "schedule {schedule:?}\n{trace}");
        final_states.push(state);
    }
    let first = &final_states[0];
    assert!(final_states.iter().all(|s| s == first));
}

#[test]
fn commuting_overlaps_are_race_free_and_deterministic() {
    // Both workers read the SAME key and query size — reads commute, so
    // still race-free and deterministic.
    let program = Program {
        worker_a: vec![Op::Get(1), Op::Size, Op::Get(1)],
        worker_b: vec![Op::Get(1), Op::Size],
        epilogue: vec![Op::Size],
    };
    let mut final_states = Vec::new();
    for schedule in schedules(3, 2) {
        let (trace, state) = execute(&program, &schedule);
        assert_eq!(detect(&trace), 0, "{trace}");
        final_states.push(state);
    }
    let first = &final_states[0];
    assert!(final_states.iter().all(|s| s == first));
}

#[test]
fn racy_program_is_racy_in_every_interleaving_and_nondeterministic() {
    // Both workers write the same key with different values: the final
    // state depends on order, and every interleaving reports the race
    // (put/put on one key conflicts regardless of order).
    let program = Program {
        worker_a: vec![Op::Put(1, 10)],
        worker_b: vec![Op::Put(1, 99)],
        epilogue: vec![Op::Get(1)],
    };
    let mut states = Vec::new();
    for schedule in schedules(1, 1) {
        let (trace, state) = execute(&program, &schedule);
        assert!(detect(&trace) > 0, "{trace}");
        states.push(state[&1]);
    }
    states.sort_unstable();
    states.dedup();
    assert_eq!(states, vec![10, 99], "both outcomes are reachable");
}

#[test]
fn size_hint_race_shows_nondeterministic_observation() {
    // Worker A inserts; worker B reads size(). The *returned* size differs
    // across interleavings (the snitch bug in miniature), and the detector
    // flags every interleaving.
    let program = Program {
        worker_a: vec![Op::Put(1, 10)],
        worker_b: vec![Op::Size],
        epilogue: vec![],
    };
    let mut observed = Vec::new();
    for schedule in schedules(1, 1) {
        let (trace, _) = execute(&program, &schedule);
        assert!(detect(&trace) > 0, "{trace}");
        // Extract the size() return from the trace.
        let size_ret = trace
            .iter()
            .filter_map(|e| e.action())
            .find(|a| a.method() == MethodId(2))
            .and_then(|a| a.ret().as_int())
            .unwrap();
        observed.push(size_ret);
    }
    observed.sort_unstable();
    observed.dedup();
    assert_eq!(observed, vec![0, 1]);
}
