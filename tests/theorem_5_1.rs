//! Integration test for Theorem 5.1: Algorithm 1 reports a commutativity
//! race **iff** the observed trace contains one — validated against the
//! quadratic oracle across several object specifications and many random
//! traces.

use crace::core::oracle::find_races;
use crace::{translate, Action, Direct, Event, ObjId, ThreadId, Trace, TraceDetector, Value};
use crace_model::replay;
use crace_spec::{builtin, Spec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

const OBJ: ObjId = ObjId(1);

/// Random action for `spec`, with slot values from a small universe so
/// that collisions (and hence races) are common.
fn random_action(spec: &Spec, rng: &mut StdRng) -> Action {
    let m = rng.gen_range(0..spec.num_methods());
    let method = crace::MethodId(m as u32);
    let sig = spec.sig(method);
    let value = |rng: &mut StdRng| match rng.gen_range(0..4) {
        0 => Value::Nil,
        1 => Value::Bool(rng.gen_bool(0.5)),
        _ => Value::Int(rng.gen_range(0..3)),
    };
    let args: Vec<Value> = (0..sig.num_args()).map(|_| value(rng)).collect();
    let ret = value(rng);
    Action::new(OBJ, method, args, ret)
}

/// Random trace: forks, joins, lock pairs and actions of `spec`.
fn random_trace(spec: &Spec, seed: u64, len: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    let mut live = vec![0u32];
    let mut next = 1u32;
    for _ in 0..len {
        let tid = ThreadId(live[rng.gen_range(0..live.len())]);
        match rng.gen_range(0..12) {
            0 if live.len() < 6 => {
                let child = ThreadId(next);
                next += 1;
                trace.push(Event::Fork { parent: tid, child });
                live.push(child.0);
            }
            1 if live.len() > 1 => {
                let victim = live[rng.gen_range(0..live.len())];
                if victim != tid.0 {
                    trace.push(Event::Join {
                        parent: tid,
                        child: ThreadId(victim),
                    });
                    live.retain(|&t| t != victim);
                }
            }
            2 | 3 => {
                let lock = crace::LockId(rng.gen_range(0..2));
                trace.push(Event::Acquire { tid, lock });
                trace.push(Event::Release { tid, lock });
            }
            _ => {
                trace.push(Event::Action {
                    tid,
                    action: random_action(spec, &mut rng),
                });
            }
        }
    }
    trace
}

fn check_spec(spec: &Spec, seeds: std::ops::Range<u64>) {
    let compiled = Arc::new(translate(spec).expect("builtins are ECL"));
    for seed in seeds {
        let trace = random_trace(spec, seed, 80);
        let registry: HashMap<_, _> = [(OBJ, spec.clone())].into();
        let oracle = find_races(&trace, &registry);

        let rd2 = TraceDetector::new();
        rd2.register(OBJ, Arc::clone(&compiled));
        let rd2_report = replay(&trace, &rd2);

        let direct = Direct::new();
        direct.register(OBJ, Arc::new(spec.clone()));
        let direct_report = replay(&trace, &direct);

        // Theorem 5.1: a race is reported iff one exists.
        assert_eq!(
            rd2_report.total() > 0,
            !oracle.is_empty(),
            "{} seed {seed}: rd2 = {rd2_report:?} vs oracle {} races\n{trace}",
            spec.name(),
            oracle.len(),
        );
        // The direct detector enumerates exactly the oracle's pairs.
        assert_eq!(
            direct_report.total() as usize,
            oracle.len(),
            "{} seed {seed}\n{trace}",
            spec.name(),
        );
    }
}

#[test]
fn dictionary_matches_oracle() {
    check_spec(&builtin::dictionary(), 0..40);
}

#[test]
fn dictionary_ext_matches_oracle() {
    check_spec(&builtin::dictionary_ext(), 100..130);
}

#[test]
fn set_matches_oracle() {
    check_spec(&builtin::set(), 200..230);
}

#[test]
fn counter_matches_oracle() {
    check_spec(&builtin::counter(), 300..330);
}

#[test]
fn register_matches_oracle() {
    check_spec(&builtin::register(), 400..430);
}

#[test]
fn queue_matches_oracle() {
    check_spec(&builtin::queue(), 500..530);
}

/// The online sharded detector (`Rd2`) and the single-lock trace detector
/// agree exactly when fed the same serialized event stream.
#[test]
fn online_and_trace_detectors_agree() {
    let spec = builtin::dictionary();
    let compiled = Arc::new(translate(&spec).unwrap());
    for seed in 600..640u64 {
        let trace = random_trace(&spec, seed, 100);

        let offline = TraceDetector::new();
        offline.register(OBJ, Arc::clone(&compiled));
        let offline_report = replay(&trace, &offline);

        let online = crace::Rd2::new();
        online.register(OBJ, Arc::clone(&compiled));
        let online_report = replay(&trace, &online);

        assert_eq!(
            offline_report.total(),
            online_report.total(),
            "seed {seed}\n{trace}"
        );
        assert_eq!(offline_report.distinct(), online_report.distinct());
    }
}
