//! Differential equivalence test-bed for the sharded parallel pipeline.
//!
//! [`ParallelRd2`] splits detection across N workers: action events are
//! routed to the worker owning their object's shard, synchronization
//! events are broadcast in ingress order, and per-worker findings merge
//! by global sequence number. None of that may be observable: for any
//! trace and any worker count, the merged [`RaceReport`] must be
//! **bit-for-bit equal** to the serial [`Rd2`]'s — same total, same race
//! classes, same per-class counts, same sample records in the same order
//! (`RaceReport` derives `Eq`, so one `assert_eq!` checks all of it).
//!
//! This file replays the paper's fixture traces and randomly generated
//! well-formed programs through both detectors at worker counts 1/2/4/8,
//! with batch sizes down to a single event per batch, with the epoch GC
//! on and off, and checks the pipeline against the quadratic oracle.

use std::sync::Arc;

use crace::core::{oracle, ParallelConfig, ParallelRd2};
use crace::model::replay;
use crace::spec::builtin;
use crace::{
    translate, Action, Analysis, Event, LockId, ObjId, RaceReport, Rd2, ThreadId, Trace, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WIDTHS: [usize; 4] = [1, 2, 4, 8];
const NUM_OBJECTS: u64 = 4;

/// Generates a random well-formed dictionary program over four monitored
/// objects (so the object space actually spreads across workers): forks,
/// joins, lock acquire/release pairs, and put / get / size actions with
/// small keys so that conflicts are frequent.
fn random_trace(seed: u64, events: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = builtin::dictionary();
    let put = spec.method_id("put").unwrap();
    let get = spec.method_id("get").unwrap();
    let size = spec.method_id("size").unwrap();
    let mut trace = Trace::new();
    let mut live: Vec<u32> = vec![0];
    let mut next_tid = 1u32;
    let value = |rng: &mut StdRng| -> Value {
        if rng.gen_bool(0.3) {
            Value::Nil
        } else {
            Value::Int(rng.gen_range(0..3))
        }
    };
    for _ in 0..events {
        let tid = ThreadId(live[rng.gen_range(0..live.len())]);
        let obj = ObjId(1 + rng.gen_range(0..NUM_OBJECTS));
        match rng.gen_range(0..10) {
            0 => {
                let child = ThreadId(next_tid);
                next_tid += 1;
                trace.push(Event::Fork { parent: tid, child });
                live.push(child.0);
            }
            1 if live.len() > 1 => {
                let other = live[rng.gen_range(0..live.len())];
                if other != tid.0 {
                    trace.push(Event::Join {
                        parent: tid,
                        child: ThreadId(other),
                    });
                    live.retain(|&t| t != other);
                }
            }
            2 => {
                let lock = LockId(rng.gen_range(0..2));
                trace.push(Event::Acquire { tid, lock });
                trace.push(Event::Release { tid, lock });
            }
            3..=6 => {
                let k = Value::Int(rng.gen_range(0..3));
                let action = Action::new(obj, put, vec![k, value(&mut rng)], value(&mut rng));
                trace.push(Event::Action { tid, action });
            }
            7 | 8 => {
                let k = Value::Int(rng.gen_range(0..3));
                let action = Action::new(obj, get, vec![k], value(&mut rng));
                trace.push(Event::Action { tid, action });
            }
            _ => {
                let action = Action::new(obj, size, vec![], Value::Int(rng.gen_range(0..4)));
                trace.push(Event::Action { tid, action });
            }
        }
    }
    trace
}

fn compiled_dict() -> Arc<crace::core::CompiledSpec> {
    Arc::new(translate(&builtin::dictionary()).unwrap())
}

/// Replays `trace` through the serial live detector.
fn run_serial(trace: &Trace) -> RaceReport {
    let detector = Rd2::new();
    let compiled = compiled_dict();
    for obj in 1..=NUM_OBJECTS {
        detector.register(ObjId(obj), Arc::clone(&compiled));
    }
    replay(trace, &detector)
}

/// Replays `trace` through the parallel pipeline at the given width and
/// batch size.
fn run_parallel(trace: &Trace, workers: usize, cfg: ParallelConfig) -> RaceReport {
    let detector = ParallelRd2::with_config(workers, cfg);
    let compiled = compiled_dict();
    for obj in 1..=NUM_OBJECTS {
        detector.register(ObjId(obj), Arc::clone(&compiled));
    }
    replay(trace, &detector)
}

/// The tentpole guarantee: on 100 random programs, at every worker count
/// and across batch sizes (including one event per batch, so the ring and
/// merge paths are exercised hard), the merged parallel report equals the
/// serial one bit for bit.
#[test]
fn parallel_reports_equal_serial_at_every_width_on_random_traces() {
    for seed in 0..100u64 {
        let trace = random_trace(seed, 120);
        let serial = run_serial(&trace);
        // Cycle the batch size so single-message batches, small batches
        // and the one-big-batch default all get coverage.
        let batch = [1usize, 3, 512][seed as usize % 3];
        for workers in WIDTHS {
            let cfg = ParallelConfig {
                batch,
                ..ParallelConfig::default()
            };
            let parallel = run_parallel(&trace, workers, cfg);
            assert_eq!(
                parallel, serial,
                "seed {seed}, {workers} worker(s), batch {batch}: reports diverge"
            );
        }
    }
}

/// The paper's fixture traces, parsed from the same files the CLI uses.
#[test]
fn parallel_reports_equal_serial_on_the_fixture_traces() {
    let spec = builtin::dictionary();
    for (fixture, races) in [("fig3.trace", 1u64), ("fig3_ordered.trace", 0)] {
        let path = format!("crates/cli/tests/data/{fixture}");
        let source = std::fs::read_to_string(&path).unwrap();
        let trace = crace::cli::parse_trace(&source, &spec).unwrap();
        let serial = run_serial(&trace);
        assert_eq!(serial.total(), races, "{fixture}");
        for workers in WIDTHS {
            let parallel = run_parallel(&trace, workers, ParallelConfig::default());
            assert_eq!(parallel, serial, "{fixture}, {workers} worker(s)");
        }
    }
}

/// The epoch GC must be invisible in reports: with the watermark sweep
/// running aggressively (every 8 actions per worker), every random
/// program still produces the exact serial report — retired points
/// re-materialize without losing or inventing races.
#[test]
fn gc_on_and_off_produce_identical_reports_on_random_traces() {
    let mut retired_total = 0u64;
    for seed in 300..340u64 {
        let trace = random_trace(seed, 150);
        let serial = run_serial(&trace);
        for workers in [1usize, 4] {
            let cfg = ParallelConfig {
                batch: 16,
                gc_every: 8,
                ..ParallelConfig::default()
            };
            let detector = ParallelRd2::with_config(workers, cfg);
            let compiled = compiled_dict();
            for obj in 1..=NUM_OBJECTS {
                detector.register(ObjId(obj), Arc::clone(&compiled));
            }
            let gc_report = replay(&trace, &detector);
            assert_eq!(
                gc_report, serial,
                "seed {seed}, {workers} worker(s): GC changed the report"
            );
            retired_total += detector.gc_retired();
        }
    }
    // The differential is only meaningful if sweeps actually retired
    // state somewhere in the corpus.
    assert!(retired_total > 0, "no sweep ever retired an access point");
}

/// The zero-copy offline path: `ingest_shared` broadcasts `Arc`'d trace
/// ranges instead of cloning events into messages, and every worker
/// filters its own shard out of the shared stream. That, too, must be
/// invisible: on random programs, at every width and batch size, the
/// shared-ingestion report equals serial per-event dispatch bit for bit.
#[test]
fn shared_ingestion_equals_serial_at_every_width_on_random_traces() {
    for seed in 500..560u64 {
        let trace = Arc::new(random_trace(seed, 120));
        let serial = run_serial(&trace);
        let batch = [1usize, 7, 512][seed as usize % 3];
        for workers in WIDTHS {
            let detector = ParallelRd2::with_config(
                workers,
                ParallelConfig {
                    batch,
                    ..ParallelConfig::default()
                },
            );
            let compiled = compiled_dict();
            for obj in 1..=NUM_OBJECTS {
                detector.register(ObjId(obj), Arc::clone(&compiled));
            }
            detector.ingest_shared(&trace);
            assert_eq!(
                detector.report(),
                serial,
                "seed {seed}, {workers} worker(s), batch {batch}: shared ingestion diverges"
            );
        }
    }
}

/// Shared ingestion composes with online dispatch: a stream may mix
/// per-event prefixes, a shared recorded middle, and a per-event suffix
/// without perturbing the merge order.
#[test]
fn shared_ingestion_composes_with_online_dispatch() {
    for seed in 600..620u64 {
        let full = random_trace(seed, 150);
        let serial = run_serial(&full);
        let events = full.events();
        let (head, rest) = events.split_at(events.len() / 3);
        let (mid, tail) = rest.split_at(rest.len() / 2);
        let mut middle = Trace::new();
        for event in mid {
            middle.push(event.clone());
        }
        let middle = Arc::new(middle);
        for workers in [1usize, 4] {
            let detector = ParallelRd2::with_config(workers, ParallelConfig::default());
            let compiled = compiled_dict();
            for obj in 1..=NUM_OBJECTS {
                detector.register(ObjId(obj), Arc::clone(&compiled));
            }
            for event in head {
                detector.on_event(event);
            }
            detector.ingest_shared(&middle);
            for event in tail {
                detector.on_event(event);
            }
            assert_eq!(
                detector.report(),
                serial,
                "seed {seed}, {workers} worker(s): mixed dispatch diverges"
            );
        }
    }
}

/// The pipeline also agrees with the quadratic oracle (Theorem 5.1): it
/// reports a race iff some pair of actions races.
#[test]
fn parallel_detector_agrees_with_the_quadratic_oracle() {
    let spec = builtin::dictionary();
    for seed in 200..220u64 {
        let trace = random_trace(seed, 60);
        let registry: std::collections::HashMap<_, _> = (1..=NUM_OBJECTS)
            .map(|o| (ObjId(o), spec.clone()))
            .collect();
        let oracle_races = oracle::find_races(&trace, &registry);
        let parallel = run_parallel(&trace, 4, ParallelConfig::default());
        assert_eq!(
            parallel.is_empty(),
            oracle_races.is_empty(),
            "seed {seed}: pipeline and oracle disagree on race existence"
        );
    }
}

/// Interleaved report barriers: asking a pipeline for interim reports
/// mid-stream must not perturb the final report (collect is a read-only
/// barrier), and the final report still equals serial.
#[test]
fn interim_report_barriers_do_not_perturb_the_final_report() {
    let trace = random_trace(4242, 200);
    let serial = run_serial(&trace);
    let detector = ParallelRd2::with_config(
        4,
        ParallelConfig {
            batch: 8,
            ..ParallelConfig::default()
        },
    );
    let compiled = compiled_dict();
    for obj in 1..=NUM_OBJECTS {
        detector.register(ObjId(obj), Arc::clone(&compiled));
    }
    let mut interim_totals = Vec::new();
    for (i, event) in trace.iter().enumerate() {
        detector.on_event(event);
        if i % 50 == 49 {
            interim_totals.push(detector.report().total());
        }
    }
    let fin = detector.report();
    assert_eq!(fin, serial);
    // Interim totals are monotone prefixes of the final count.
    assert!(interim_totals.windows(2).all(|w| w[0] <= w[1]));
    assert!(interim_totals.last().is_none_or(|&t| t <= fin.total()));
}
