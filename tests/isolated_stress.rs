//! Stress: a panicking analysis behind [`Isolated`] must never crash,
//! deadlock, or slow-stop the instrumented application — across real
//! threads, real locks, and real injected faults.

use crace::runtime::ObjectRegistry;
use crace::{
    Action, Analysis, Fault, FaultInjector, FaultPlan, Isolated, LockId, MonitoredDict, RaceReport,
    Recorder, Registry, Runtime, ThreadId, Value,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Panics on the `fuse`-th data-plane delivery, forever after healthy.
/// Everything else is counted so the test can audit delivery totals.
struct Flaky {
    fuse: u64,
    delivered: AtomicU64,
}

impl Flaky {
    fn armed(fuse: u64) -> Flaky {
        Flaky {
            fuse,
            delivered: AtomicU64::new(0),
        }
    }
}

impl Analysis for Flaky {
    fn name(&self) -> &str {
        "flaky"
    }
    fn on_fork(&self, _: ThreadId, _: ThreadId) {}
    fn on_join(&self, _: ThreadId, _: ThreadId) {}
    fn on_acquire(&self, _: ThreadId, _: LockId) {}
    fn on_release(&self, _: ThreadId, _: LockId) {}
    fn on_action(&self, _: ThreadId, _: &Action) {
        let n = self.delivered.fetch_add(1, Ordering::Relaxed) + 1;
        if n == self.fuse {
            panic!("flaky analysis blew up at delivery {n}");
        }
    }
    fn report(&self) -> RaceReport {
        RaceReport::new()
    }
}

impl ObjectRegistry for Flaky {}

/// Runs `f` with the default panic hook silenced so the intentional
/// panics (caught ones included) don't spam the test output.
fn quiet<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Eight threads hammer a monitored dictionary while the analysis blows
/// up mid-run. Every application thread must still complete and join
/// cleanly; the blast is contained to degradation counters.
#[test]
fn panicking_analysis_never_takes_down_application_threads() {
    quiet(|| {
        let iso = Arc::new(Isolated::new(Flaky::armed(17)));
        let rt = Runtime::new(iso.clone());
        let dict = MonitoredDict::new(&rt);
        let mutex = Arc::new(rt.new_mutex());
        let main = rt.main_ctx();

        let workers: Vec<_> = (0..8)
            .map(|w| {
                let d = dict.clone();
                let m = Arc::clone(&mutex);
                rt.spawn(&main, move |ctx| {
                    for i in 0..20 {
                        let _g = m.lock(ctx);
                        d.put(ctx, Value::Int(w * 100 + i), Value::Int(i));
                        drop(_g);
                        d.get(ctx, Value::Int(w * 100 + i));
                    }
                })
            })
            .collect();
        for w in workers {
            w.join(&main).expect("application thread must survive");
        }

        assert!(iso.quarantined(), "the fuse must have blown");
        assert_eq!(iso.analysis_panics(), 1);
        assert!(iso.events_shed() > 0, "post-panic events must be shed");
        assert!(
            iso.last_panic()
                .is_some_and(|m| m.contains("blew up at delivery 17")),
            "panic message must be captured"
        );
        // Fail-open report path still answers.
        assert!(iso.report().is_empty());

        // Degradation is visible, not hidden.
        let registry = Registry::new();
        iso.feed(&registry);
        let snap = registry.snapshot().to_json();
        assert!(snap.contains("\"flaky.analysis_panics\""));
        assert!(snap.contains("\"flaky.degraded_mode\""));
    });
}

/// An injected `PanicThread` fault kills the application thread at the
/// planned event index. The host must observe it as a `JoinError` (with
/// the payload), the join event must still reach the analysis, and the
/// runtime must stay usable afterwards.
#[test]
fn injected_panic_surfaces_as_join_error_and_join_event_still_lands() {
    quiet(|| {
        // Event indices: 0 = fork, 1 = child's put (the planned casualty),
        // 2 = join.
        let plan = FaultPlan::new().with(1, Fault::PanicThread);
        let injector = Arc::new(FaultInjector::new(plan));
        let recorder = Arc::new(Recorder::new());
        let rt = Runtime::with_faults(recorder.clone(), Arc::clone(&injector));
        let dict = MonitoredDict::new(&rt);
        let main = rt.main_ctx();

        let d = dict.clone();
        let handle = rt.spawn(&main, move |ctx| {
            d.put(ctx, Value::str("doomed"), Value::Int(1));
        });
        let err = handle
            .join(&main)
            .expect_err("the injected panic must surface");
        assert!(
            err.message()
                .is_some_and(|m| m.contains("injected thread panic at event 1")),
            "JoinError must carry the panic payload, got {:?}",
            err.message()
        );
        let victim = err.tid();

        // The runtime survives: the main thread keeps emitting events.
        dict.put(&main, Value::str("alive"), Value::Int(2));

        let trace = recorder.snapshot();
        let rendered: Vec<String> = trace.events().iter().map(|e| format!("{e:?}")).collect();
        assert!(
            rendered.iter().any(|e| e.starts_with("Join")),
            "join event must be delivered even for a panicked child: {rendered:?}"
        );
        assert!(
            !rendered
                .iter()
                .any(|e| e.starts_with("Act") && e.contains("doomed")),
            "the casualty event must not be in the delivered prefix: {rendered:?}"
        );
        assert_eq!(injector.degradation().panics_injected, 1);
        let _ = victim;
    });
}

/// Same seeded fault plan, real threads, fifty runs: the degradation
/// counters the injector reports are identical every time (scheduling
/// may vary, but a single-threaded pipeline keeps indices stable).
#[test]
fn seeded_faults_on_a_single_worker_degrade_identically_across_runs() {
    quiet(|| {
        let run = || {
            let plan = FaultPlan::seeded(7, 12, 3);
            let injector = Arc::new(FaultInjector::new(plan));
            let iso = Arc::new(Isolated::new(Flaky::armed(u64::MAX)));
            let rt = Runtime::with_faults(iso.clone(), Arc::clone(&injector));
            let dict = MonitoredDict::new(&rt);
            let main = rt.main_ctx();
            let d = dict.clone();
            let worker = rt.spawn(&main, move |ctx| {
                for i in 0..10 {
                    d.put(ctx, Value::Int(i), Value::Int(i));
                }
            });
            let joined_ok = worker.join(&main).is_ok();
            let deg = injector.degradation();
            (
                joined_ok,
                deg.panics_injected,
                deg.events_dropped,
                deg.events_delayed,
                iso.inner().delivered.load(Ordering::Relaxed),
            )
        };
        let reference = run();
        for i in 0..50 {
            assert_eq!(run(), reference, "run {i} diverged from the first");
        }
    });
}
