//! Schedule-space property tests on the deterministic simulator: random
//! scripted programs, many seeded interleavings per program.
//!
//! Checked per schedule:
//!
//! 1. **Theorem 5.1** — Algorithm 1 reports a race iff the quadratic
//!    oracle finds a racing pair (on *consistent* executions with real
//!    return values, complementing the random-trace tests whose returns
//!    are arbitrary);
//! 2. **Theorem 5.2** — if no sampled schedule of a program races, all
//!    sampled schedules end in the same dictionary state (determinism),
//!    and conversely nondeterministic final states imply some schedule
//!    raced.

use crace::core::oracle::find_races;
use crace::runtime::sim::{sim_dict_obj, simulate_with_state, SimOp, SimProgram};
use crace::{translate, TraceDetector, Value};
use crace_model::replay;
use crace_spec::builtin;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Random scripted program: up to 4 threads, ops over one dictionary with
/// a small key space, optional lock-protected sections. Roughly a third of
/// the programs are generated in "disjoint" mode — per-thread private keys
/// and commuting shared reads only — so the race-free regime is sampled
/// too.
fn random_program(rng: &mut StdRng) -> SimProgram {
    if rng.gen_bool(0.35) {
        return disjoint_program(rng);
    }
    let threads = rng.gen_range(2..=4);
    let num_locks = 1;
    let mut scripts = Vec::new();
    for _ in 0..threads {
        let mut ops = Vec::new();
        let len = rng.gen_range(1..=6);
        let mut k = 0;
        while k < len {
            match rng.gen_range(0..8) {
                0..=2 => ops.push(SimOp::DictPut {
                    dict: 0,
                    key: Value::Int(rng.gen_range(0..3)),
                    value: Value::Int(rng.gen_range(0..4)),
                }),
                3..=4 => ops.push(SimOp::DictGet {
                    dict: 0,
                    key: Value::Int(rng.gen_range(0..3)),
                }),
                5 => ops.push(SimOp::DictSize { dict: 0 }),
                6 => {
                    // A lock-protected read-modify-write.
                    let key = Value::Int(rng.gen_range(0..3));
                    ops.push(SimOp::Lock(0));
                    ops.push(SimOp::DictGet {
                        dict: 0,
                        key: key.clone(),
                    });
                    ops.push(SimOp::DictPut {
                        dict: 0,
                        key,
                        value: Value::Int(rng.gen_range(0..4)),
                    });
                    ops.push(SimOp::Unlock(0));
                }
                _ => ops.push(SimOp::DictPut {
                    dict: 0,
                    // A thread-private key (beyond the shared space).
                    key: Value::Int(100 + scripts.len() as i64),
                    value: Value::Int(rng.gen_range(0..4)),
                }),
            }
            k += 1;
        }
        scripts.push(ops);
    }
    SimProgram {
        num_dicts: 1,
        num_locks,
        threads: scripts,
    }
}

/// A structurally race-free program: every thread writes only its own
/// keys and shared keys are only read (reads commute).
fn disjoint_program(rng: &mut StdRng) -> SimProgram {
    let threads = rng.gen_range(2..=4);
    let mut scripts = Vec::new();
    for t in 0..threads as i64 {
        let mut ops = Vec::new();
        for _ in 0..rng.gen_range(1..=6) {
            if rng.gen_bool(0.5) {
                ops.push(SimOp::DictPut {
                    dict: 0,
                    key: Value::Int(100 + t),
                    value: Value::Int(rng.gen_range(0..4)),
                });
            } else {
                ops.push(SimOp::DictGet {
                    dict: 0,
                    key: Value::Int(rng.gen_range(0..3)),
                });
            }
        }
        scripts.push(ops);
    }
    SimProgram {
        num_dicts: 1,
        num_locks: 1,
        threads: scripts,
    }
}

fn detect(trace: &crace::Trace) -> u64 {
    let detector = TraceDetector::new();
    detector.register(
        sim_dict_obj(0),
        Arc::new(translate(&builtin::dictionary()).unwrap()),
    );
    replay(trace, &detector).total()
}

#[test]
fn algorithm1_matches_oracle_on_simulated_schedules() {
    let spec = builtin::dictionary();
    for program_seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(program_seed);
        let program = random_program(&mut rng);
        for schedule_seed in 0..8u64 {
            let (trace, _) = simulate_with_state(&program, schedule_seed);
            let registry: HashMap<_, _> = [(sim_dict_obj(0), spec.clone())].into();
            let oracle = find_races(&trace, &registry);
            assert_eq!(
                detect(&trace) > 0,
                !oracle.is_empty(),
                "program {program_seed}, schedule {schedule_seed}\n{trace}"
            );
        }
    }
}

#[test]
fn race_free_programs_are_schedule_deterministic() {
    let mut deterministic_checked = 0;
    let mut racy_checked = 0;
    for program_seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(1_000 + program_seed);
        let program = random_program(&mut rng);
        let runs: Vec<_> = (0..10u64)
            .map(|s| simulate_with_state(&program, s))
            .collect();
        let any_race = runs.iter().any(|(trace, _)| detect(trace) > 0);
        let states: Vec<_> = runs.iter().map(|(_, state)| state.clone()).collect();
        let all_equal = states.iter().all(|s| *s == states[0]);
        if !any_race {
            // Theorem 5.2: race freedom ⇒ determinism.
            assert!(
                all_equal,
                "program {program_seed}: race-free but nondeterministic"
            );
            deterministic_checked += 1;
        } else if !all_equal {
            // Contrapositive sanity: nondeterminism ⇒ some schedule raced.
            racy_checked += 1;
        }
    }
    // The generator must actually produce both regimes for the test to
    // mean anything.
    assert!(deterministic_checked > 0, "no race-free programs sampled");
    assert!(racy_checked > 0, "no nondeterministic programs sampled");
}

#[test]
fn lock_protected_rmw_programs_never_race() {
    // Programs whose every shared access is the lock-protected RMW shape.
    let rmw = |key: i64, value: i64| {
        vec![
            SimOp::Lock(0),
            SimOp::DictGet {
                dict: 0,
                key: Value::Int(key),
            },
            SimOp::DictPut {
                dict: 0,
                key: Value::Int(key),
                value: Value::Int(value),
            },
            SimOp::Unlock(0),
        ]
    };
    let program = SimProgram {
        num_dicts: 1,
        num_locks: 1,
        threads: vec![
            [rmw(1, 1), rmw(2, 2)].concat(),
            [rmw(1, 3), rmw(2, 4)].concat(),
            [rmw(2, 5), rmw(1, 6)].concat(),
        ],
    };
    for seed in 0..60u64 {
        let (trace, _) = simulate_with_state(&program, seed);
        assert_eq!(detect(&trace), 0, "seed {seed}\n{trace}");
    }
}
