//! Differential gate for durable detector state (checkpoint/restore).
//!
//! The RD2 detectors are deterministic folds over the event stream, so
//! durability has a crisp correctness statement:
//!
//! ```text
//! restore(checkpoint(fold(prefix))) ⨟ fold(suffix)  ≡  fold(prefix ⨟ suffix)
//! ```
//!
//! This file proves that equivalence bit-for-bit (`RaceReport` derives
//! `Eq`) on randomly generated well-formed programs, split at random
//! boundaries, for every checkpointable detector: the offline
//! [`TraceDetector`], the live [`Rd2`], the [`FastTrack`] baseline, and
//! the sharded [`ParallelRd2`] at worker counts 1/2/4/8. It also checks
//! the fail-closed half of the contract — a version-bumped, truncated,
//! or byte-flipped checkpoint must be rejected with an error, never
//! silently restored into a detector that reports wrong races — and the
//! supervision half: a worker panic mid-stream heals from its last
//! snapshot and the final report still equals serial exactly.

use std::sync::Arc;

use crace::core::{builtin_resolver, Checkpoint, ParallelConfig, ParallelRd2, TraceDetector};
use crace::model::{replay, LocId};
use crace::spec::builtin;
use crace::{
    translate, Action, Analysis, Event, FastTrack, LockId, ObjId, Rd2, ThreadId, Trace, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WIDTHS: [usize; 4] = [1, 2, 4, 8];
const NUM_OBJECTS: u64 = 4;

/// Generates a random well-formed program mixing high-level dictionary
/// actions (for the RD2 detectors) with low-level reads and writes (for
/// FastTrack), plus forks, joins and lock acquire/release pairs. Small
/// key and location spaces keep conflicts frequent.
fn random_trace(seed: u64, events: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = builtin::dictionary();
    let put = spec.method_id("put").unwrap();
    let get = spec.method_id("get").unwrap();
    let size = spec.method_id("size").unwrap();
    let mut trace = Trace::new();
    let mut live: Vec<u32> = vec![0];
    let mut next_tid = 1u32;
    let value = |rng: &mut StdRng| -> Value {
        if rng.gen_bool(0.3) {
            Value::Nil
        } else {
            Value::Int(rng.gen_range(0..3))
        }
    };
    for _ in 0..events {
        let tid = ThreadId(live[rng.gen_range(0..live.len())]);
        let obj = ObjId(1 + rng.gen_range(0..NUM_OBJECTS));
        match rng.gen_range(0..13) {
            0 => {
                let child = ThreadId(next_tid);
                next_tid += 1;
                trace.push(Event::Fork { parent: tid, child });
                live.push(child.0);
            }
            1 if live.len() > 1 => {
                let other = live[rng.gen_range(0..live.len())];
                if other != tid.0 {
                    trace.push(Event::Join {
                        parent: tid,
                        child: ThreadId(other),
                    });
                    live.retain(|&t| t != other);
                }
            }
            2 => {
                let lock = LockId(rng.gen_range(0..2));
                trace.push(Event::Acquire { tid, lock });
                trace.push(Event::Release { tid, lock });
            }
            3..=5 => {
                let k = Value::Int(rng.gen_range(0..3));
                let action = Action::new(obj, put, vec![k, value(&mut rng)], value(&mut rng));
                trace.push(Event::Action { tid, action });
            }
            6 | 7 => {
                let k = Value::Int(rng.gen_range(0..3));
                let action = Action::new(obj, get, vec![k], value(&mut rng));
                trace.push(Event::Action { tid, action });
            }
            8 => {
                let action = Action::new(obj, size, vec![], Value::Int(rng.gen_range(0..4)));
                trace.push(Event::Action { tid, action });
            }
            9 | 10 => trace.push(Event::Write {
                tid,
                loc: LocId(rng.gen_range(0..4)),
            }),
            _ => trace.push(Event::Read {
                tid,
                loc: LocId(rng.gen_range(0..4)),
            }),
        }
    }
    trace
}

fn compiled_dict() -> Arc<crace::core::CompiledSpec> {
    Arc::new(translate(&builtin::dictionary()).unwrap())
}

/// The core equivalence check, generic over any checkpointable
/// detector: folding the whole trace uninterrupted, pausing at `split`
/// to checkpoint (the live detector keeps running afterwards — a
/// checkpoint must be observation-only), and restoring that checkpoint
/// into a freshly-configured detector all produce the same report.
fn assert_checkpoint_equivalence<D, F>(label: &str, make: F, trace: &Trace, split: usize)
where
    D: Analysis + Checkpoint,
    F: Fn() -> D,
{
    let resolve = builtin_resolver();
    let uninterrupted = replay(trace, &make());
    let (prefix, suffix) = trace.events().split_at(split);

    let live = make();
    for event in prefix {
        live.on_event(event);
    }
    let blob = live.checkpoint();
    for event in suffix {
        live.on_event(event);
    }
    assert_eq!(
        live.report(),
        uninterrupted,
        "{label}: taking a checkpoint perturbed the live detector"
    );

    let restored = make();
    restored
        .restore(&blob, &resolve)
        .unwrap_or_else(|e| panic!("{label}: restore failed: {e}"));
    for event in suffix {
        restored.on_event(event);
    }
    assert_eq!(
        restored.report(),
        uninterrupted,
        "{label}: restore(checkpoint(fold(prefix))) != fold(prefix)"
    );
    assert_eq!(
        restored.report().to_json(),
        uninterrupted.to_json(),
        "{label}: JSON reports diverge after restore"
    );
}

fn make_rd2() -> Rd2 {
    let detector = Rd2::new();
    let compiled = compiled_dict();
    for obj in 1..=NUM_OBJECTS {
        detector.register(ObjId(obj), Arc::clone(&compiled));
    }
    detector
}

fn make_trace_detector() -> TraceDetector {
    let detector = TraceDetector::new();
    let compiled = compiled_dict();
    for obj in 1..=NUM_OBJECTS {
        detector.register(ObjId(obj), Arc::clone(&compiled));
    }
    detector
}

fn make_parallel(workers: usize, cfg: &ParallelConfig) -> ParallelRd2 {
    let detector = ParallelRd2::with_config(workers, cfg.clone());
    let compiled = compiled_dict();
    for obj in 1..=NUM_OBJECTS {
        detector.register(ObjId(obj), Arc::clone(&compiled));
    }
    detector
}

/// `restore(checkpoint(fold(prefix))) ≡ fold(prefix)` for the serial
/// detectors — Rd2, TraceDetector, FastTrack in both provenance modes —
/// on random programs split at random boundaries.
#[test]
fn restore_equals_fold_prefix_for_serial_detectors_on_random_traces() {
    for seed in 0..40u64 {
        let trace = random_trace(seed, 140);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4E9);
        let split = rng.gen_range(0..=trace.len());
        assert_checkpoint_equivalence(
            &format!("rd2 seed {seed} split {split}"),
            make_rd2,
            &trace,
            split,
        );
        assert_checkpoint_equivalence(
            &format!("trace-detector seed {seed} split {split}"),
            make_trace_detector,
            &trace,
            split,
        );
        assert_checkpoint_equivalence(
            &format!("fasttrack seed {seed} split {split}"),
            FastTrack::new,
            &trace,
            split,
        );
        assert_checkpoint_equivalence(
            &format!("fasttrack+prov seed {seed} split {split}"),
            FastTrack::with_provenance,
            &trace,
            split,
        );
    }
}

/// The same equivalence for the sharded pipeline at every worker count:
/// the checkpoint barrier snapshots ingress and all workers against one
/// consistent stream prefix, and a fresh pipeline restored from it and
/// fed the suffix merges to the exact serial report.
#[test]
fn restore_equals_fold_prefix_for_the_parallel_pipeline_at_every_width() {
    for seed in 100..125u64 {
        let trace = random_trace(seed, 120);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37);
        let split = rng.gen_range(0..=trace.len());
        let batch = [1usize, 3, 512][seed as usize % 3];
        for workers in WIDTHS {
            let cfg = ParallelConfig {
                batch,
                ..ParallelConfig::default()
            };
            assert_checkpoint_equivalence(
                &format!("parallel w{workers} seed {seed} split {split} batch {batch}"),
                || make_parallel(workers, &cfg),
                &trace,
                split,
            );
        }
    }
}

/// Supervision differential: poison messages injected at several points
/// mid-stream are healed — snapshot + journal replay, skipping only the
/// poisoned message — and the final report is still bit-for-bit equal
/// to serial. The pipeline never enters the degraded quarantine and the
/// supervisor counters record every respawn.
#[test]
fn healed_pipelines_match_serial_bit_for_bit_on_random_traces() {
    for seed in 700..720u64 {
        let trace = random_trace(seed, 140);
        let serial = replay(&trace, &make_rd2());
        for workers in [1usize, 4] {
            let cfg = ParallelConfig {
                batch: 4,
                snapshot_every: 16,
                ..ParallelConfig::default()
            };
            let detector = make_parallel(workers, &cfg);
            let events = trace.events();
            let injections = [events.len() / 3, 2 * events.len() / 3];
            for (i, event) in events.iter().enumerate() {
                if injections.contains(&i) {
                    detector.inject_worker_panic(seed as usize + i);
                }
                detector.on_event(event);
            }
            let report = detector.report();
            assert_eq!(
                report, serial,
                "seed {seed}, {workers} worker(s): healed run diverges from serial"
            );
            assert!(
                !detector.degraded(),
                "seed {seed}, {workers} worker(s): pipeline degraded instead of healing"
            );
            let stats = detector.stats();
            let respawns: u64 = stats.workers.iter().map(|w| w.respawns).sum();
            assert_eq!(
                respawns,
                injections.len() as u64,
                "seed {seed}, {workers} worker(s): every poison heals exactly once"
            );
        }
    }
}

/// Fail-closed format evolution: a future format version, a checkpoint
/// of a different detector kind, and a checkpoint whose spec names this
/// process cannot resolve are all rejected with an error — never
/// half-restored.
#[test]
fn version_bumps_kind_mismatches_and_unknown_specs_fail_closed() {
    let trace = random_trace(7, 120);
    let detector = make_rd2();
    for event in trace.events() {
        detector.on_event(event);
    }
    let blob = detector.checkpoint();
    let resolve = builtin_resolver();
    assert!(
        blob.starts_with("#%crace-ckpt v1 "),
        "checkpoint header changed; update the format-evolution tests"
    );

    // A version bump from a future writer must be refused.
    let bumped = blob.replacen("#%crace-ckpt v1 ", "#%crace-ckpt v2 ", 1);
    let err = make_rd2().restore(&bumped, &resolve).unwrap_err();
    assert!(
        err.to_string().contains("v"),
        "version error should mention the version: {err}"
    );

    // An Rd2 checkpoint refuses to restore into a TraceDetector (and
    // vice versa): the kinds differ even though the payload would parse.
    assert!(make_trace_detector().restore(&blob, &resolve).is_err());
    assert!(make_rd2()
        .restore(&make_trace_detector().checkpoint(), &resolve)
        .is_err());

    // A resolver that cannot supply the referenced spec fails the
    // restore closed instead of silently dropping the object.
    let none: &crace::core::SpecResolver<'_> = &|_: &str| None;
    assert!(make_rd2().restore(&blob, none).is_err());

    // An empty blob is damage, not an empty detector.
    assert!(make_rd2().restore("", &resolve).is_err());
}

/// Truncation property: cutting the checkpoint anywhere that loses
/// information is detected (the record count trailer or a CRC frame no
/// longer checks out). A cut may only restore cleanly when it removed
/// nothing but trailing whitespace.
#[test]
fn truncated_checkpoints_fail_closed() {
    let trace = random_trace(11, 100);
    let detector = make_rd2();
    for event in trace.events() {
        detector.on_event(event);
    }
    let blob = detector.checkpoint();
    let resolve = builtin_resolver();
    for cut in (0..blob.len()).step_by(17).chain([blob.len() - 1]) {
        let truncated = &blob[..cut];
        if make_rd2().restore(truncated, &resolve).is_ok() {
            assert!(
                blob[cut..].trim().is_empty(),
                "cut at {cut} lost content but restored cleanly"
            );
        }
    }
}

/// Corruption property, in the style of `tracefmt_roundtrip`: flipping
/// any single byte of a checkpoint either leaves a blob that is
/// rejected outright, or — if it somehow still restores — the restored
/// detector must finish with the exact uninterrupted report. A damaged
/// checkpoint never produces a *wrong* report.
#[test]
fn byte_flipped_checkpoints_never_restore_to_a_wrong_report() {
    let trace = random_trace(13, 100);
    let split = trace.len() / 2;
    let uninterrupted = replay(&trace, &make_rd2());
    let (prefix, suffix) = trace.events().split_at(split);
    let detector = make_rd2();
    for event in prefix {
        detector.on_event(event);
    }
    let blob = detector.checkpoint();
    let resolve = builtin_resolver();
    let mut rejected = 0usize;
    let mut tried = 0usize;
    for pos in (0..blob.len()).step_by(5) {
        let mut bytes = blob.clone().into_bytes();
        bytes[pos] = if bytes[pos] == b'~' { b'!' } else { b'~' };
        let Ok(flipped) = String::from_utf8(bytes) else {
            continue;
        };
        tried += 1;
        let fresh = make_rd2();
        match fresh.restore(&flipped, &resolve) {
            Err(_) => rejected += 1,
            Ok(()) => {
                for event in suffix {
                    fresh.on_event(event);
                }
                assert_eq!(
                    fresh.report(),
                    uninterrupted,
                    "flip at {pos} restored but changed the report"
                );
            }
        }
    }
    // The CRC framing should catch essentially every flip; if most get
    // through, the format lost its integrity checking.
    assert!(
        rejected * 10 >= tried * 9,
        "only {rejected}/{tried} byte flips were rejected"
    );
}
