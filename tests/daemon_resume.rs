//! Durable-state differential gate: kill the daemon at random record
//! boundaries, restart it, RESUME the session — the final report must be
//! bit-for-bit the uninterrupted (offline serial replay) report.
//!
//! The "kill" here is the in-process equivalent of SIGKILL: the first
//! server's in-memory state is discarded entirely, and the second server
//! reconstructs the session purely from what is durable on disk — the
//! last atomic checkpoint plus the flush-per-record capture file. The
//! suite also drives every fallback the recovery path promises to fail
//! *closed* through: no checkpoint at all, a corrupted or truncated
//! checkpoint, a capture with a torn tail (clipped with exact
//! `lost_bytes`/`lost_records` accounting), and the lineage rule that a
//! resumed session appends to its original capture instead of forking a
//! `-2` sibling.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crace::daemon::{Client, Endpoint, Server, ServerConfig};
use crace::model::replay;
use crace::spec::builtin;
use crace::{translate, Action, Event, LockId, ObjId, ThreadId, Trace, TraceDetector, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NUM_OBJECTS: u64 = 4;

/// Same generator shape as `daemon_vs_replay.rs`: forks, joins, lock
/// pairs, and put/get/size over four objects with tiny keys.
fn random_trace(seed: u64, events: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = builtin::dictionary();
    let put = spec.method_id("put").unwrap();
    let get = spec.method_id("get").unwrap();
    let size = spec.method_id("size").unwrap();
    let mut trace = Trace::new();
    let mut live: Vec<u32> = vec![0];
    let mut next_tid = 1u32;
    let value = |rng: &mut StdRng| -> Value {
        if rng.gen_bool(0.3) {
            Value::Nil
        } else {
            Value::Int(rng.gen_range(0..3))
        }
    };
    for _ in 0..events {
        let tid = ThreadId(live[rng.gen_range(0..live.len())]);
        let obj = ObjId(1 + rng.gen_range(0..NUM_OBJECTS));
        match rng.gen_range(0..10) {
            0 => {
                let child = ThreadId(next_tid);
                next_tid += 1;
                trace.push(Event::Fork { parent: tid, child });
                live.push(child.0);
            }
            1 if live.len() > 1 => {
                let other = live[rng.gen_range(0..live.len())];
                if other != tid.0 {
                    trace.push(Event::Join {
                        parent: tid,
                        child: ThreadId(other),
                    });
                    live.retain(|&t| t != other);
                }
            }
            2 => {
                let lock = LockId(rng.gen_range(0..2));
                trace.push(Event::Acquire { tid, lock });
                trace.push(Event::Release { tid, lock });
            }
            3..=6 => {
                let k = Value::Int(rng.gen_range(0..3));
                let action = Action::new(obj, put, vec![k, value(&mut rng)], value(&mut rng));
                trace.push(Event::Action { tid, action });
            }
            7 | 8 => {
                let k = Value::Int(rng.gen_range(0..3));
                let action = Action::new(obj, get, vec![k], value(&mut rng));
                trace.push(Event::Action { tid, action });
            }
            _ => {
                let action = Action::new(obj, size, vec![], Value::Int(rng.gen_range(0..4)));
                trace.push(Event::Action { tid, action });
            }
        }
    }
    trace
}

/// The uninterrupted ground truth: a serial replay's report JSON.
fn offline_json(trace: &Trace) -> String {
    let detector = TraceDetector::new();
    let compiled = Arc::new(translate(&builtin::dictionary()).unwrap());
    for obj in 1..=NUM_OBJECTS {
        detector.register(ObjId(obj), Arc::clone(&compiled));
    }
    replay(trace, &detector).to_json()
}

/// A fresh per-test record dir under the system temp dir.
fn record_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("crace-daemon-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_config(dir: &std::path::Path, checkpoint_every: u64) -> ServerConfig {
    ServerConfig {
        record_dir: Some(dir.to_path_buf()),
        checkpoint_every,
        ..ServerConfig::default()
    }
}

fn start(cfg: ServerConfig) -> Server {
    Server::start(&Endpoint::Tcp("127.0.0.1:0".to_string()), cfg).expect("bind test server")
}

/// Streams `trace[..kill_at]` into a fresh session, then "kills" the
/// daemon: drops the connection, waits for the torn finalization (so no
/// handler thread still appends to the capture — a real SIGKILL stops
/// all writers at once), and discards the server's in-memory state.
fn stream_then_kill(
    cfg: ServerConfig,
    session: &str,
    trace: &Trace,
    workers: usize,
    kill_at: usize,
) {
    let spec = builtin::dictionary();
    let server = start(cfg);
    let mut client = Client::connect(server.endpoint()).expect("connect");
    client
        .hello(session, "dictionary", workers, None)
        .expect("HELLO accepted");
    for event in &trace.events()[..kill_at] {
        client.send_event(event, &spec).expect("send");
    }
    drop(client);
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active_sessions() > 0 {
        assert!(Instant::now() < deadline, "torn finalization stuck");
        std::thread::sleep(Duration::from_millis(2));
    }
    server.shutdown();
}

/// Restarts the daemon on the same record dir, RESUMEs, resends from the
/// recovered sequence, and returns the final `(report, events)` plus the
/// restarted server (so callers can inspect its counters).
fn resume_and_finish(
    cfg: ServerConfig,
    session: &str,
    trace: &Trace,
    workers: usize,
) -> (String, u64, Server) {
    let spec = builtin::dictionary();
    let server = start(cfg);
    let mut client = Client::connect(server.endpoint()).expect("connect");
    let (ok, recovered) = client
        .resume(session, trace.len() as u64, "dictionary", workers)
        .expect("RESUME accepted");
    assert!(ok.starts_with("OK craced/1 resume "), "bad reply: {ok}");
    assert!(
        recovered <= trace.len() as u64,
        "recovered {recovered} past what was ever sent"
    );
    for event in &trace.events()[recovered as usize..] {
        client.send_event(event, &spec).expect("resend");
    }
    let (report, stats) = client.bye().expect("BYE accepted");
    assert_eq!(stats.get("torn"), 0, "resumed session must close clean");
    (report, stats.get("events"), server)
}

/// The headline gate: 100 random kill points (20 programs × 5 cuts) over
/// serial and sharded sessions — every resumed report is byte-identical
/// to the uninterrupted offline replay.
#[test]
fn killed_and_resumed_sessions_report_bit_for_bit() {
    let widths = [0usize, 1, 2, 4, 8];
    for seed in 0..20u64 {
        let trace = random_trace(seed, 120);
        let offline = offline_json(&trace);
        let workers = widths[seed as usize % widths.len()];
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        for cut in 0..5 {
            let kill_at = rng.gen_range(0..=trace.len());
            let dir = record_dir(&format!("kill-{seed}-{cut}"));
            let session = format!("k{seed}-{cut}");
            stream_then_kill(durable_config(&dir, 16), &session, &trace, workers, kill_at);
            let (report, events, server) =
                resume_and_finish(durable_config(&dir, 16), &session, &trace, workers);
            assert_eq!(
                report, offline,
                "seed {seed} cut {cut} (kill at {kill_at}, {workers} workers): \
                 resumed report diverges from the uninterrupted run"
            );
            assert_eq!(events, trace.len() as u64, "seed {seed} cut {cut}");
            assert_eq!(
                server.registry().counter("daemon.sessions_resumed").get(),
                1
            );
            server.shutdown();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// With checkpointing disabled the resume falls back to a full capture
/// replay and still reports bit-for-bit.
#[test]
fn resume_without_a_checkpoint_replays_the_full_capture() {
    let trace = random_trace(31, 150);
    let offline = offline_json(&trace);
    let dir = record_dir("nockpt");
    stream_then_kill(durable_config(&dir, 0), "nockpt", &trace, 2, 90);
    assert!(
        !dir.join("nockpt.ckpt").exists(),
        "checkpoint_every=0 must write no checkpoint"
    );
    let (report, events, server) = resume_and_finish(durable_config(&dir, 0), "nockpt", &trace, 2);
    assert_eq!(report, offline);
    assert_eq!(events, trace.len() as u64);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Damaged checkpoints — flipped bytes, truncation, plain garbage — must
/// fail closed: the restore is abandoned, the capture is replayed in
/// full, and the report is still exact.
#[test]
fn corrupt_checkpoints_fall_closed_to_capture_replay() {
    let trace = random_trace(47, 140);
    let offline = offline_json(&trace);
    for (i, corrupt) in [
        |b: &mut Vec<u8>| {
            let mid = b.len() / 2;
            b[mid] = b[mid].wrapping_add(1);
        },
        |b: &mut Vec<u8>| b.truncate(b.len() / 3),
        |b: &mut Vec<u8>| *b = b"#%crace-ckpt v9 craced-session\n".to_vec(),
    ]
    .iter()
    .enumerate()
    {
        let dir = record_dir(&format!("corrupt-{i}"));
        let session = format!("corrupt-{i}");
        stream_then_kill(durable_config(&dir, 16), &session, &trace, 4, 100);
        let ckpt = dir.join(format!("{session}.ckpt"));
        let mut bytes = std::fs::read(&ckpt).expect("a checkpoint was written");
        corrupt(&mut bytes);
        std::fs::write(&ckpt, &bytes).unwrap();
        let (report, events, server) =
            resume_and_finish(durable_config(&dir, 16), &session, &trace, 4);
        assert_eq!(
            report, offline,
            "variant {i}: corrupt checkpoint leaked state"
        );
        assert_eq!(events, trace.len() as u64);
        assert!(
            server
                .registry()
                .counter("daemon.checkpoint_restore_failures")
                .get()
                >= 1,
            "variant {i}: the failed restore must be counted"
        );
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A capture with a torn tail — the record that was mid-write at the
/// kill — is clipped back to the valid prefix with exact byte/record
/// accounting in the RESUME reply, and the resend covers the clipped
/// record so nothing is lost end-to-end.
#[test]
fn torn_capture_tails_are_clipped_with_exact_accounting() {
    let trace = random_trace(59, 130);
    let offline = offline_json(&trace);
    let dir = record_dir("torn");
    stream_then_kill(durable_config(&dir, 32), "torn", &trace, 2, 80);
    // Half a record, no newline: exactly what a SIGKILL mid-write leaves.
    let tail = b"=41:0000";
    let capture = dir.join("torn.framed.trace");
    {
        use std::io::Write;
        let mut f = std::fs::File::options()
            .append(true)
            .open(&capture)
            .unwrap();
        f.write_all(tail).unwrap();
    }
    let server = start(durable_config(&dir, 32));
    let mut client = Client::connect(server.endpoint()).expect("connect");
    let (ok, recovered) = client
        .resume("torn", trace.len() as u64, "dictionary", 2)
        .expect("RESUME accepted");
    let field = |k: &str| -> u64 {
        ok.split_whitespace()
            .find_map(|w| w.strip_prefix(&format!("{k}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("reply lacks {k}=: {ok}"))
    };
    assert_eq!(field("lost_bytes"), tail.len() as u64, "{ok}");
    assert_eq!(field("lost_records"), 1, "{ok}");
    assert_eq!(recovered, 80, "the valid prefix is everything sent");
    let spec = builtin::dictionary();
    for event in &trace.events()[recovered as usize..] {
        client.send_event(event, &spec).expect("resend");
    }
    let (report, stats) = client.bye().expect("BYE");
    assert_eq!(report, offline, "clipped tail leaked into the report");
    assert_eq!(stats.get("events"), trace.len() as u64);
    // The clipped capture was healed in place: it now parses whole.
    let text = std::fs::read_to_string(&capture).unwrap();
    let (reparsed, torn) = crace::cli::parse_framed_tolerant(&text, &spec);
    assert!(
        torn.is_none(),
        "capture still torn after clipping: {torn:?}"
    );
    assert_eq!(reparsed.len(), trace.len(), "capture lineage incomplete");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The lineage audit: a resumed session appends to its original capture
/// file — no `-2` sibling is forked, and the single capture ends up
/// holding the entire stream.
#[test]
fn resumed_sessions_append_to_their_original_capture_lineage() {
    let trace = random_trace(73, 110);
    let dir = record_dir("lineage");
    stream_then_kill(durable_config(&dir, 16), "lineage", &trace, 0, 60);
    let (_, _, server) = resume_and_finish(durable_config(&dir, 16), "lineage", &trace, 0);
    server.shutdown();
    assert!(dir.join("lineage.framed.trace").exists());
    assert!(
        !dir.join("lineage-2.framed.trace").exists(),
        "resume forked a -2 capture lineage"
    );
    let spec = builtin::dictionary();
    let text = std::fs::read_to_string(dir.join("lineage.framed.trace")).unwrap();
    let (reparsed, torn) = crace::cli::parse_framed_tolerant(&text, &spec);
    assert!(torn.is_none());
    assert_eq!(
        reparsed.events(),
        trace.events(),
        "the original capture must hold the whole stream"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A clean BYE retires the session's checkpoint: nothing is left to
/// resume, and a future session reusing the name starts unshadowed.
#[test]
fn clean_bye_retires_the_checkpoint() {
    let trace = random_trace(91, 120);
    let dir = record_dir("retire");
    let spec = builtin::dictionary();
    let server = start(durable_config(&dir, 8));
    let mut client = Client::connect(server.endpoint()).expect("connect");
    client
        .hello("retire", "dictionary", 2, None)
        .expect("HELLO");
    for event in trace.events() {
        client.send_event(event, &spec).expect("send");
    }
    // Mid-session, checkpoints exist …
    client.report().expect("interim REPORT");
    assert!(
        dir.join("retire.ckpt").exists(),
        "checkpoint_every=8 over 100+ records must have checkpointed"
    );
    let (_, stats) = client.bye().expect("BYE");
    assert!(stats.get("checkpoint_seq") > 0, "STATS carries the seq");
    // … and a clean close retires them.
    assert!(
        !dir.join("retire.ckpt").exists(),
        "clean BYE must delete the checkpoint"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
