//! Differential test harness for the epoch-compressed access points.
//!
//! `ClockMode::Adaptive` (the default) stores each active access point's
//! `pt.vc` as a FastTrack-style epoch `c@t` while the point is touched by a
//! single thread, promoting to a full vector clock on contention.
//! `ClockMode::FullVector` is the reference: every `pt.vc` is always a
//! complete vector clock, exactly as Algorithm 1 is written in the paper.
//!
//! The representations must be observationally identical: for any trace,
//! both modes must produce *bit-for-bit equal* [`RaceReport`]s — same
//! total, same distinct race-class count, same per-class counts, same
//! sample records. This file replays randomly generated well-formed traces
//! through both modes and asserts exactly that.

use std::sync::Arc;

use crace::core::oracle;
use crace::model::replay;
use crace::spec::builtin;
use crace::{
    translate, Action, ClockMode, Event, LockId, ObjId, RaceReport, ThreadId, Trace, TraceDetector,
    Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random well-formed dictionary trace over two monitored
/// objects: forks, joins (which retire the joined thread — no events of a
/// thread after it is joined), lock acquire/release pairs, and put / get /
/// size actions with small keys so that conflicts are frequent.
fn random_trace(seed: u64, events: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = builtin::dictionary();
    let put = spec.method_id("put").unwrap();
    let get = spec.method_id("get").unwrap();
    let size = spec.method_id("size").unwrap();
    let mut trace = Trace::new();
    let mut live: Vec<u32> = vec![0];
    let mut next_tid = 1u32;
    let value = |rng: &mut StdRng| -> Value {
        if rng.gen_bool(0.3) {
            Value::Nil
        } else {
            Value::Int(rng.gen_range(0..3))
        }
    };
    for _ in 0..events {
        let tid = ThreadId(live[rng.gen_range(0..live.len())]);
        let obj = ObjId(1 + rng.gen_range(0..2));
        match rng.gen_range(0..10) {
            0 => {
                let child = ThreadId(next_tid);
                next_tid += 1;
                trace.push(Event::Fork { parent: tid, child });
                live.push(child.0);
            }
            1 if live.len() > 1 => {
                let other = live[rng.gen_range(0..live.len())];
                if other != tid.0 {
                    trace.push(Event::Join {
                        parent: tid,
                        child: ThreadId(other),
                    });
                    live.retain(|&t| t != other);
                }
            }
            2 => {
                let lock = LockId(rng.gen_range(0..2));
                trace.push(Event::Acquire { tid, lock });
                trace.push(Event::Release { tid, lock });
            }
            3..=6 => {
                let k = Value::Int(rng.gen_range(0..3));
                let action = Action::new(obj, put, vec![k, value(&mut rng)], value(&mut rng));
                trace.push(Event::Action { tid, action });
            }
            7 | 8 => {
                let k = Value::Int(rng.gen_range(0..3));
                let action = Action::new(obj, get, vec![k], value(&mut rng));
                trace.push(Event::Action { tid, action });
            }
            _ => {
                let action = Action::new(obj, size, vec![], Value::Int(rng.gen_range(0..4)));
                trace.push(Event::Action { tid, action });
            }
        }
    }
    trace
}

/// Replays `trace` through a detector in the given mode, with both objects
/// registered against the builtin dictionary specification.
fn run(trace: &Trace, mode: ClockMode) -> (RaceReport, crace::ClockStats) {
    let spec = builtin::dictionary();
    let compiled = Arc::new(translate(&spec).unwrap());
    let detector = TraceDetector::with_mode(mode);
    detector.register(ObjId(1), compiled.clone());
    detector.register(ObjId(2), compiled);
    let report = replay(trace, &detector);
    (report, detector.clock_stats())
}

/// The tentpole guarantee: on random traces the epoch fast path produces a
/// report *identical* to the full-vector reference — `RaceReport` derives
/// `Eq`, so this compares totals, the distinct race-class set, per-class
/// counts, and the retained sample records all at once.
#[test]
fn adaptive_reports_equal_full_vector_reports_on_random_traces() {
    let mut epoch_updates = 0u64;
    let mut promotions = 0u64;
    for seed in 0..80u64 {
        let trace = random_trace(seed, 120);
        let (adaptive, stats) = run(&trace, ClockMode::Adaptive);
        let (full, full_stats) = run(&trace, ClockMode::FullVector);
        assert_eq!(
            adaptive, full,
            "seed {seed}: adaptive and full-vector reports diverge"
        );
        assert_eq!(adaptive.total(), full.total(), "seed {seed}");
        assert_eq!(adaptive.distinct(), full.distinct(), "seed {seed}");
        epoch_updates += stats.epoch_updates;
        promotions += stats.promotions;
        // The reference mode must never take the epoch path.
        assert_eq!(full_stats.epoch_updates, 0, "seed {seed}");
        assert_eq!(full_stats.promotions, 0, "seed {seed}");
    }
    // The harness is only meaningful if it actually exercised both the
    // O(1) epoch path and the promotion path.
    assert!(epoch_updates > 0, "no trace ever hit the epoch fast path");
    assert!(promotions > 0, "no trace ever promoted an epoch");
}

/// Both modes also agree with the quadratic oracle (Theorem 5.1): whatever
/// representation `pt.vc` uses, Algorithm 1 still reports a race iff some
/// pair of actions races.
#[test]
fn both_modes_agree_with_the_quadratic_oracle() {
    let spec = builtin::dictionary();
    for seed in 200..220u64 {
        let trace = random_trace(seed, 60);
        let registry: std::collections::HashMap<_, _> =
            [(ObjId(1), spec.clone()), (ObjId(2), spec.clone())].into();
        let oracle_races = oracle::find_races(&trace, &registry);
        let (adaptive, _) = run(&trace, ClockMode::Adaptive);
        let (full, _) = run(&trace, ClockMode::FullVector);
        assert_eq!(adaptive, full, "seed {seed}");
        assert_eq!(
            adaptive.is_empty(),
            oracle_races.is_empty(),
            "seed {seed}: detector and oracle disagree on race existence"
        );
    }
}

/// A purely single-threaded trace never leaves the epoch representation:
/// every occupied-point update is an O(1) epoch overwrite.
#[test]
fn single_threaded_traces_stay_entirely_on_the_epoch_path() {
    let spec = builtin::dictionary();
    let put = spec.method_id("put").unwrap();
    let mut trace = Trace::new();
    for i in 0..200 {
        trace.push(Event::Action {
            tid: ThreadId(0),
            action: Action::new(
                ObjId(1),
                put,
                vec![Value::Int(i % 3), Value::Int(i)],
                Value::Nil,
            ),
        });
    }
    let (report, stats) = run(&trace, ClockMode::Adaptive);
    assert!(report.is_empty());
    assert!(stats.epoch_updates > 0);
    assert_eq!(stats.promotions, 0);
    assert_eq!(stats.vector_updates, 0);
    assert_eq!(stats.epoch_hit_rate(), 1.0);
}

/// Well-ordered multi-thread traces (every handoff through fork/join) also
/// stay on the epoch path: the next thread's clock always absorbs the
/// previous epoch, so ownership transfers without promotion.
#[test]
fn fork_join_pipelines_transfer_epoch_ownership_without_promotion() {
    let spec = builtin::dictionary();
    let put = spec.method_id("put").unwrap();
    let mut trace = Trace::new();
    let mut prev = ThreadId(0);
    for gen in 1..6u32 {
        trace.push(Event::Action {
            tid: prev,
            action: Action::new(
                ObjId(1),
                put,
                vec![Value::Int(0), Value::Int(i64::from(gen))],
                Value::Nil,
            ),
        });
        let child = ThreadId(gen);
        trace.push(Event::Fork {
            parent: prev,
            child,
        });
        trace.push(Event::Join {
            parent: child,
            child: prev,
        });
        prev = child;
    }
    let (report, stats) = run(&trace, ClockMode::Adaptive);
    assert!(report.is_empty(), "{report:?}");
    assert_eq!(stats.promotions, 0);
    assert_eq!(stats.vector_updates, 0);
    assert!(stats.epoch_updates >= 4);
}
