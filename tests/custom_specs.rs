//! Integration: user-written specifications through the whole pipeline —
//! parse → fragment check → translate → detect — including non-ECL
//! specifications falling back to the direct detector.

use crace::{
    parse_spec, translate, Action, Direct, Event, ObjId, ThreadId, Trace, TraceDetector, Value,
};
use crace_model::replay;
use std::sync::Arc;

const OBJ: ObjId = ObjId(1);

/// A bank account: deposits commute with each other but not with balance
/// reads; withdrawals never commute (they can fail depending on order).
const BANK: &str = r#"
spec bank_account {
    method deposit(amount);
    method withdraw(amount) -> ok;
    method balance() -> b;

    commute deposit(_), deposit(_) when true;
    commute deposit(_), withdraw(_) -> _ when false;
    commute deposit(_), balance() -> _ when false;
    commute withdraw(_) -> _, withdraw(_) -> _ when false;
    commute withdraw(_) -> _, balance() -> _ when false;
    commute balance() -> _, balance() -> _ when true;
}
"#;

fn fork2() -> Trace {
    let mut t = Trace::new();
    t.push(Event::Fork {
        parent: ThreadId(0),
        child: ThreadId(1),
    });
    t
}

#[test]
fn bank_account_deposits_commute_but_withdrawals_race() {
    let spec = parse_spec(BANK).unwrap();
    assert!(spec.is_ecl());
    let compiled = Arc::new(translate(&spec).unwrap());
    let deposit = spec.method_id("deposit").unwrap();
    let withdraw = spec.method_id("withdraw").unwrap();

    // Concurrent deposits: no race.
    let mut trace = fork2();
    for t in 0..2u32 {
        trace.push(Event::Action {
            tid: ThreadId(t),
            action: Action::new(OBJ, deposit, vec![Value::Int(100)], Value::Nil),
        });
    }
    let detector = TraceDetector::new();
    detector.register(OBJ, Arc::clone(&compiled));
    assert!(replay(&trace, &detector).is_empty());

    // Concurrent withdrawals: race.
    let mut trace = fork2();
    for t in 0..2u32 {
        trace.push(Event::Action {
            tid: ThreadId(t),
            action: Action::new(OBJ, withdraw, vec![Value::Int(50)], Value::Bool(true)),
        });
    }
    let detector = TraceDetector::new();
    detector.register(OBJ, compiled);
    assert_eq!(replay(&trace, &detector).total(), 1);
}

/// A union-find-style object whose merge operations commute only when the
/// roots involved are all distinct — expressible with cross-action
/// inequalities over both arguments (pure LS with four conjuncts).
const UNION: &str = r#"
spec union_find {
    method union(x, y);
    method find(x) -> root;

    commute union(x1, y1), union(x2, y2)
        when x1 != x2 && x1 != y2 && y1 != x2 && y1 != y2;
    commute union(x1, y1), find(x2) -> _
        when x1 != x2 && y1 != x2;
    commute find(_) -> _, find(_) -> _ when true;
}
"#;

#[test]
fn union_find_spec_detects_overlapping_merges() {
    let spec = parse_spec(UNION).unwrap();
    assert!(spec.is_ecl());
    let compiled = Arc::new(translate(&spec).unwrap());
    let union = spec.method_id("union").unwrap();

    let act =
        |x: i64, y: i64| Action::new(OBJ, union, vec![Value::Int(x), Value::Int(y)], Value::Nil);

    // Disjoint unions commute.
    let mut trace = fork2();
    trace.push(Event::Action {
        tid: ThreadId(0),
        action: act(1, 2),
    });
    trace.push(Event::Action {
        tid: ThreadId(1),
        action: act(3, 4),
    });
    let detector = TraceDetector::new();
    detector.register(OBJ, Arc::clone(&compiled));
    assert!(replay(&trace, &detector).is_empty());

    // Overlapping unions (sharing element 2) race.
    let mut trace = fork2();
    trace.push(Event::Action {
        tid: ThreadId(0),
        action: act(1, 2),
    });
    trace.push(Event::Action {
        tid: ThreadId(1),
        action: act(2, 3),
    });
    let detector = TraceDetector::new();
    detector.register(OBJ, compiled);
    assert_eq!(replay(&trace, &detector).total(), 1);
}

/// A spec outside ECL (negated cross-inequality): rejected by the
/// translation, still checkable by the direct detector.
#[test]
fn non_ecl_spec_falls_back_to_direct() {
    let spec =
        parse_spec("spec weird { method m(a); commute m(x1), m(x2) when !(x1 != x2); }").unwrap();
    assert!(!spec.is_ecl());
    assert!(translate(&spec).is_err());

    let m = spec.method_id("m").unwrap();
    let direct = Direct::new();
    direct.register(OBJ, Arc::new(spec));
    let mut trace = fork2();
    trace.push(Event::Action {
        tid: ThreadId(0),
        action: Action::new(OBJ, m, vec![Value::Int(1)], Value::Nil),
    });
    trace.push(Event::Action {
        tid: ThreadId(1),
        action: Action::new(OBJ, m, vec![Value::Int(2)], Value::Nil),
    });
    // Different args: ¬(x1 ≠ x2) is false → race.
    assert_eq!(replay(&trace, &direct).total(), 1);
}

#[test]
fn multiple_objects_with_different_specs_coexist() {
    let bank = parse_spec(BANK).unwrap();
    let union = parse_spec(UNION).unwrap();
    let detector = TraceDetector::new();
    detector.register(ObjId(1), Arc::new(translate(&bank).unwrap()));
    detector.register(ObjId(2), Arc::new(translate(&union).unwrap()));

    let deposit = bank.method_id("deposit").unwrap();
    let u = union.method_id("union").unwrap();

    let mut trace = fork2();
    // Concurrent deposits on object 1 (fine) and overlapping unions on
    // object 2 (race).
    for t in 0..2u32 {
        trace.push(Event::Action {
            tid: ThreadId(t),
            action: Action::new(ObjId(1), deposit, vec![Value::Int(5)], Value::Nil),
        });
        trace.push(Event::Action {
            tid: ThreadId(t),
            action: Action::new(
                ObjId(2),
                u,
                vec![Value::Int(7), Value::Int(8 + t as i64)],
                Value::Nil,
            ),
        });
    }
    let report = replay(&trace, &detector);
    assert_eq!(report.total(), 1);
    assert_eq!(report.distinct(), 1);
}
