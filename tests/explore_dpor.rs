//! Property tests for the DPOR explorer: on tiny scripted programs
//! (≤3 threads, ≤3 ops each) sleep-set pruning must be *sound* —
//! exploring a representative of every Mazurkiewicz trace — so DPOR and
//! brute-force enumeration must
//!
//! 1. visit exactly the same set of final dictionary states,
//! 2. agree on whether any schedule races, and
//! 3. raise no detector invariant violation (Theorem 5.1 is asserted on
//!    every explored schedule inside [`explore`]),
//!
//! while DPOR explores at most as many schedules as brute force.

use crace::core::oracle::find_races;
use crace::runtime::explore::{explore, ExploreConfig, ExploreReport};
use crace::runtime::sim::{sim_dict_obj, simulate, SimOp, SimProgram};
use crace::Value;
use crace_spec::builtin;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};

/// A tiny random program: 2–3 threads, 1–3 ops each, one dictionary,
/// keys from a 3-value space so conflicts are common but not universal.
fn random_tiny(rng: &mut StdRng) -> SimProgram {
    let threads = rng.gen_range(2..=3);
    let mut scripts = Vec::new();
    for _ in 0..threads {
        let len = rng.gen_range(1..=3);
        let mut ops = Vec::new();
        for _ in 0..len {
            let key = Value::Int(rng.gen_range(0..3));
            ops.push(match rng.gen_range(0..4) {
                0 | 1 => SimOp::DictPut {
                    dict: 0,
                    key,
                    value: Value::Int(rng.gen_range(0..5)),
                },
                2 => SimOp::DictGet { dict: 0, key },
                _ => SimOp::DictSize { dict: 0 },
            });
        }
        scripts.push(ops);
    }
    SimProgram {
        num_dicts: 1,
        num_locks: 0,
        threads: scripts,
    }
}

/// Like [`random_tiny`], but each thread's ops may be wrapped in a
/// `lock 0 … unlock 0` critical section, exercising the lock footprints
/// and blocked-thread handling of the explorer.
fn random_tiny_locked(rng: &mut StdRng) -> SimProgram {
    let mut program = random_tiny(rng);
    program.num_locks = 1;
    for script in &mut program.threads {
        if rng.gen_bool(0.5) {
            script.insert(0, SimOp::Lock(0));
            script.push(SimOp::Unlock(0));
        }
    }
    program
}

fn check_agreement(program: &SimProgram) {
    let base = ExploreConfig {
        max_schedules: 500_000,
        ..ExploreConfig::default()
    };
    let dpor = explore(program, &base);
    let brute = explore(
        program,
        &ExploreConfig {
            dpor: false,
            ..base.clone()
        },
    );
    assert!(
        !dpor.stats.truncated && !brute.stats.truncated,
        "exploration must be exhaustive for the comparison: {program:?}"
    );
    for (name, report) in [("dpor", &dpor), ("brute", &brute)] {
        assert!(
            report.violation.is_none(),
            "{name} exploration violated a detector invariant on {program:?}: {:?}",
            report.violation
        );
    }
    let dpor_states: BTreeSet<_> = dpor.final_states.keys().cloned().collect();
    let brute_states: BTreeSet<_> = brute.final_states.keys().cloned().collect();
    assert_eq!(
        dpor_states, brute_states,
        "DPOR missed or invented a final state on {program:?}"
    );
    assert_eq!(
        dpor.race.is_some(),
        brute.race.is_some(),
        "DPOR and brute force disagree on race presence for {program:?}"
    );
    assert!(
        dpor.stats.schedules_explored <= brute.stats.schedules_explored,
        "DPOR explored more schedules than brute force on {program:?}"
    );
}

#[test]
fn dpor_and_brute_force_visit_the_same_final_states() {
    let mut rng = StdRng::seed_from_u64(0xD1_90);
    for _ in 0..80 {
        check_agreement(&random_tiny(&mut rng));
    }
}

#[test]
fn dpor_and_brute_force_agree_under_locks() {
    let mut rng = StdRng::seed_from_u64(0x10C_4ED);
    for _ in 0..40 {
        check_agreement(&random_tiny_locked(&mut rng));
    }
}

/// On a program whose threads touch disjoint keys, every interleaving
/// commutes: DPOR should collapse the schedule space to a single
/// representative per Mazurkiewicz class while brute force enumerates
/// all `(a+b)!/(a!b!)` interleavings.
#[test]
fn dpor_collapses_fully_independent_programs() {
    let program = SimProgram {
        num_dicts: 1,
        num_locks: 0,
        threads: vec![
            vec![
                SimOp::DictPut {
                    dict: 0,
                    key: Value::Int(1),
                    value: Value::Int(10),
                },
                SimOp::DictPut {
                    dict: 0,
                    key: Value::Int(1),
                    value: Value::Int(11),
                },
            ],
            vec![
                SimOp::DictPut {
                    dict: 0,
                    key: Value::Int(2),
                    value: Value::Int(20),
                },
                SimOp::DictPut {
                    dict: 0,
                    key: Value::Int(2),
                    value: Value::Int(21),
                },
            ],
        ],
    };
    let dpor = explore(&program, &ExploreConfig::default());
    let brute = explore(
        &program,
        &ExploreConfig {
            dpor: false,
            ..ExploreConfig::default()
        },
    );
    assert_eq!(brute.stats.schedules_explored, 6); // C(4,2)
    assert!(dpor.stats.schedules_explored < 6);
    assert_eq!(dpor.stats.distinct_final_states, 1);
    assert_eq!(brute.stats.distinct_final_states, 1);
    assert!(dpor.race.is_none() && brute.race.is_none());
}

/// A preemption bound of zero restricts exploration to non-preemptive
/// schedules; the explorer must report the cut as `schedules_bounded`
/// rather than silently shrinking coverage.
#[test]
fn preemption_bound_is_reported() {
    let program = SimProgram {
        num_dicts: 1,
        num_locks: 0,
        threads: vec![
            vec![
                SimOp::DictPut {
                    dict: 0,
                    key: Value::Int(1),
                    value: Value::Int(10),
                },
                SimOp::DictGet {
                    dict: 0,
                    key: Value::Int(1),
                },
            ],
            vec![SimOp::DictPut {
                dict: 0,
                key: Value::Int(1),
                value: Value::Int(20),
            }],
        ],
    };
    let bounded = explore(
        &program,
        &ExploreConfig {
            dpor: false,
            max_preemptions: Some(0),
            ..ExploreConfig::default()
        },
    );
    let full = explore(
        &program,
        &ExploreConfig {
            dpor: false,
            ..ExploreConfig::default()
        },
    );
    assert!(bounded.stats.schedules_explored < full.stats.schedules_explored);
    assert!(bounded.stats.schedules_bounded > 0);
    assert_eq!(full.stats.schedules_bounded, 0);
}

/// A program whose race manifests only on rare schedules: worker A is
/// `put k; lock; unlock`, worker B is `<prefix of private puts>; lock;
/// unlock; put k`. If A acquires first, the release→acquire edge orders
/// A's put before B's (no race); only when B's critical section — gated
/// behind the long prefix — wins the lock are the two puts unordered.
fn rare_race_program(prefix: usize) -> SimProgram {
    let mut b_ops: Vec<SimOp> = (0..prefix)
        .map(|i| SimOp::DictPut {
            dict: 0,
            key: Value::Int(100 + i as i64),
            value: Value::Int(0),
        })
        .collect();
    b_ops.extend([
        SimOp::Lock(0),
        SimOp::Unlock(0),
        SimOp::DictPut {
            dict: 0,
            key: Value::Int(1),
            value: Value::Int(2),
        },
    ]);
    SimProgram {
        num_dicts: 1,
        num_locks: 1,
        threads: vec![
            vec![
                SimOp::DictPut {
                    dict: 0,
                    key: Value::Int(1),
                    value: Value::Int(1),
                },
                SimOp::Lock(0),
                SimOp::Unlock(0),
            ],
            b_ops,
        ],
    }
}

fn trace_races(trace: &crace::Trace) -> bool {
    let mut specs = HashMap::new();
    specs.insert(sim_dict_obj(0), builtin::dictionary());
    !find_races(trace, &specs).is_empty()
}

/// The EXPERIMENTS.md comparison: systematic exploration reaches the
/// rare racing schedule deterministically after a bounded number of
/// schedules, while seeded random sampling needs however many draws the
/// schedule's probability dictates — and gives no termination guarantee.
#[test]
fn exploration_beats_random_sampling_to_first_race() {
    let program = rare_race_program(6);

    let report = explore(
        &program,
        &ExploreConfig {
            stop_on_race: true,
            ..ExploreConfig::default()
        },
    );
    let explored = report.stats.schedules_explored;
    assert!(report.race.is_some(), "exploration must find the rare race");

    let sampled = (0..10_000u64)
        .position(|seed| trace_races(&simulate(&program, seed)))
        .map(|i| i + 1)
        .expect("random sampling should eventually hit the race");

    println!("explore: {explored} schedule(s) to first race; random sampling: {sampled} run(s)");
    // The schedule space of the prefix-6 program is ≈ 10⁴ interleavings;
    // DPOR + stop-on-race reaches the race in a handful.
    assert!(explored <= 50, "exploration took {explored} schedules");
    // Keep the sampling count honest without over-pinning the shim's
    // stream: the racing interleaving must actually be rare.
    assert!(
        sampled > 10,
        "random sampling found the race after only {sampled} run(s); \
         the program no longer discriminates"
    );
}

/// `stop_on_race` still produces a usable witness.
#[test]
fn stop_on_race_returns_a_witness() {
    let program = SimProgram {
        num_dicts: 1,
        num_locks: 0,
        threads: vec![
            vec![SimOp::DictPut {
                dict: 0,
                key: Value::Int(1),
                value: Value::Int(10),
            }],
            vec![SimOp::DictPut {
                dict: 0,
                key: Value::Int(1),
                value: Value::Int(20),
            }],
        ],
    };
    let report: ExploreReport = explore(
        &program,
        &ExploreConfig {
            stop_on_race: true,
            ..ExploreConfig::default()
        },
    );
    let witness = report.race.expect("racing puts must be detected");
    assert!(witness.races >= 1);
    assert_eq!(witness.schedule.len(), 2);
}
