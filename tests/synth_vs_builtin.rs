//! The synthesized specifications versus the handwritten Fig. 6
//! builtins, end to end: pinned verdict tables under the bounded oracle,
//! the full lint gate over every emitted artifact, the `crace synth` CLI
//! contract, and a bit-for-bit replay differential — the committed
//! fixture must produce the *identical* race report under the
//! synthesized dictionary spec and the handwritten one.

use crace::speclint::oracle::{self, OracleConfig};
use crace::{synthesize, synthesize_all, SynthConfig};
use std::path::PathBuf;
use std::process::{Command, Output};

fn data(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("crates/cli/tests/data");
    p.push(name);
    p.to_str().unwrap().to_string()
}

fn crace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_crace"))
        .args(args)
        .output()
        .expect("run crace")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf-8 stderr")
}

/// The headline acceptance: on the bounded oracle's aggregated samples,
/// the synthesized dict/set/counter specs admit every truly-commuting
/// pair and zero non-commuting ones — matching or beating handwritten.
#[test]
fn synthesized_specs_match_or_beat_handwritten_on_the_oracle() {
    for name in ["dictionary", "set", "counter"] {
        let synthesis = synthesize(name, &SynthConfig::default()).expect(name);
        let handwritten = crace::spec::builtin::all()
            .into_iter()
            .find(|s| s.name() == name)
            .unwrap();
        let kind = oracle::kind_for(name).unwrap();
        for i in 0..handwritten.num_methods() {
            for j in i..handwritten.num_methods() {
                let (m1, m2) = (crace::MethodId(i as u32), crace::MethodId(j as u32));
                let samples = oracle::labeled_samples(
                    kind,
                    handwritten.sig(m1),
                    handwritten.sig(m2),
                    &OracleConfig::default(),
                )
                .expect("within budget")
                .expect("modeled");
                let synth_phi = synthesis.spec.formula(m1, m2);
                let hand_phi = handwritten.formula(m1, m2);
                for s in &samples {
                    let synth_admits = synth_phi.eval(&s.slots1, &s.slots2);
                    let hand_admits = hand_phi.eval(&s.slots1, &s.slots2);
                    assert_eq!(
                        synth_admits, s.commutes,
                        "{name} ({i},{j}): synthesized disagrees with the oracle on {s:?}"
                    );
                    // "Beat": wherever handwritten admits, so do we.
                    assert!(
                        synth_admits || !hand_admits,
                        "{name} ({i},{j}): handwritten admits {s:?} but synthesized rejects"
                    );
                }
            }
        }
    }
}

/// Pinned verdict tables: the exact per-pair conditions for the three
/// headline types, as rendered ECL. A change here is a change to the
/// synthesis algorithm's output and must be reviewed, not absorbed.
type PairRow = (&'static str, &'static str, &'static str);

#[test]
fn verdict_tables_are_pinned() {
    let table: &[(&str, &[PairRow])] = &[
        (
            "dictionary",
            &[
                ("put", "put", "x0 != y0 || [1](w1 == w2) && [2](w1 == w2)"),
                ("put", "get", "x0 != y0 || [1](w1 == w2)"),
                (
                    "put",
                    "size",
                    "[1](w1 == nil) && [1](w2 == nil) || ![1](w1 == nil) && ![1](w2 == nil)",
                ),
                ("get", "get", "true"),
                ("get", "size", "true"),
                ("size", "size", "true"),
            ],
        ),
        (
            "set",
            &[
                (
                    "add",
                    "add",
                    "x0 != y0 || [1](w1 == false) && [2](w1 == false)",
                ),
                ("add", "remove", "x0 != y0"),
                ("add", "contains", "x0 != y0 || [1](w1 == false)"),
                ("add", "size", "[1](w1 == false)"),
                (
                    "remove",
                    "remove",
                    "x0 != y0 || [1](w1 == false) && [2](w1 == false)",
                ),
                ("remove", "contains", "x0 != y0 || [1](w1 == false)"),
                ("remove", "size", "[1](w1 == false)"),
                ("contains", "contains", "true"),
                ("contains", "size", "true"),
                ("size", "size", "true"),
            ],
        ),
        (
            "counter",
            &[
                ("inc", "inc", "true"),
                ("inc", "dec", "true"),
                ("inc", "read", "false"),
                ("dec", "dec", "true"),
                ("dec", "read", "false"),
                ("read", "read", "true"),
            ],
        ),
    ];
    for (name, pairs) in table {
        let synthesis = synthesize(name, &SynthConfig::default()).expect(name);
        assert_eq!(synthesis.pairs.len(), pairs.len(), "{name}");
        for (m1, m2, condition) in *pairs {
            let p = synthesis
                .pairs
                .iter()
                .find(|p| p.method1 == *m1 && p.method2 == *m2)
                .unwrap_or_else(|| panic!("{name}: no pair ({m1}, {m2})"));
            assert_eq!(
                p.condition, *condition,
                "{name} ({m1}, {m2}) drifted from the pinned table"
            );
        }
    }
}

/// Every emitted artifact passes the entire lint gate at exit 0 — the
/// synthesized register/queue specs too, since they *are* the weakest
/// conditions the precision audit compares against.
#[test]
fn every_synthesized_spec_lints_clean() {
    for synthesis in synthesize_all(&SynthConfig::default()).expect("synthesize all") {
        assert_eq!(synthesis.lint_exit, 0, "{}", synthesis.name);
        let report = crace::lint_spec(&synthesis.source)
            .unwrap_or_else(|e| panic!("{}: {}", synthesis.name, e.render(&synthesis.source)));
        assert_eq!(
            report.exit_code(),
            0,
            "{}:\n{}",
            synthesis.name,
            report.render_pretty(&synthesis.source)
        );
    }
}

/// Replay differential: the committed Fig. 3 fixture produces a
/// bit-for-bit identical JSON race report under the synthesized
/// dictionary spec and the handwritten builtin.
#[test]
fn replay_is_report_identical_under_the_synthesized_dictionary() {
    let dir = std::env::temp_dir().join("crace_synth_replay");
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("dictionary.synth.ecl");
    let out = crace(&["synth", "dictionary", "--out", spec_path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    for trace in ["fig3.trace", "fig3_ordered.trace"] {
        let handwritten = crace(&["replay", &data(trace), "--spec", "dictionary", "--json"]);
        let synthesized = crace(&[
            "replay",
            &data(trace),
            "--spec",
            spec_path.to_str().unwrap(),
            "--json",
        ]);
        assert_eq!(
            handwritten.status.code(),
            synthesized.status.code(),
            "{trace}: exit codes diverge"
        );
        assert_eq!(
            stdout(&handwritten),
            stdout(&synthesized),
            "{trace}: reports diverge"
        );
    }
    // The racy fixture really does exit 3 — the differential is not
    // vacuously comparing two empty reports.
    let racy = crace(&["replay", &data("fig3.trace"), "--spec", "dictionary"]);
    assert_eq!(racy.status.code(), Some(3), "{racy:?}");
}

#[test]
fn synth_cli_emits_a_replayable_spec_on_stdout() {
    // stdout is the spec source (stderr carries the summary), so shell
    // redirection produces a valid spec file.
    let out = crace(&["synth", "dictionary"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let source = stdout(&out);
    let spec = crace::parse_spec(&source).expect("stdout parses as a spec");
    assert_eq!(spec.name(), "dictionary");
    assert!(stderr(&out).contains("matches handwritten"), "{out:?}");
}

#[test]
fn synth_cli_json_is_valid_and_complete() {
    let out = crace(&["synth", "all", "--json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let json = stdout(&out);
    crace::obs::json::validate(json.trim()).unwrap_or_else(|e| panic!("{e}\n{json}"));
    let parsed = crace::obs::json::parse(json.trim()).unwrap();
    let types = parsed.get("types").and_then(|t| t.as_array()).unwrap();
    assert_eq!(types.len(), 6);
    for t in types {
        assert_eq!(t.get("lint_exit").and_then(|e| e.as_f64()), Some(0.0));
        let source = t.get("source").and_then(|s| s.as_str()).unwrap();
        crace::parse_spec(source).expect("embedded source parses");
    }
}

#[test]
fn synth_cli_rejects_unknown_types_and_tiny_budgets() {
    let out = crace(&["synth", "btree"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(stderr(&out).contains("supported types"), "{out:?}");

    let out = crace(&["synth", "dictionary", "--max-actions", "10"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(stderr(&out).contains("--max-actions"), "{out:?}");
}

#[test]
fn synth_universe_scales_the_bounded_domain() {
    // A larger universe multiplies the realized executions; the budget
    // error reports the need precisely, and raising the budget succeeds.
    let out = crace(&["synth", "counter", "--universe", "4"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = crace(&[
        "synth",
        "dictionary",
        "--universe",
        "3",
        "--max-actions",
        "100",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(stderr(&out).contains("--max-actions"), "{out:?}");
}
