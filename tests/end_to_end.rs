//! End-to-end integration: the full pipeline (spec text → translation →
//! instrumented runtime → detectors) on the evaluation workloads.

use crace::workloads::circuits::{run_circuit, Circuit, CircuitConfig};
use crace::workloads::connections::run_connections;
use crace::workloads::snitch::{run_snitch, SnitchConfig};
use crace::workloads::table2::{run_circuit_row, run_snitch_row};
use crace::{Analysis, Direct, FastTrack, NoopAnalysis, Rd2};
use std::sync::Arc;

#[test]
fn every_circuit_runs_under_every_detector() {
    let config = CircuitConfig::smoke();
    for circuit in Circuit::ALL {
        for detector in 0..4 {
            match detector {
                0 => {
                    run_circuit(circuit, Arc::new(NoopAnalysis::new()), &config);
                }
                1 => {
                    let ft = Arc::new(FastTrack::new());
                    run_circuit(circuit, ft.clone(), &config);
                    let _ = ft.report();
                }
                2 => {
                    let rd2 = Arc::new(Rd2::new());
                    run_circuit(circuit, rd2.clone(), &config);
                    let _ = rd2.report();
                }
                _ => {
                    let direct = Arc::new(Direct::new());
                    run_circuit(circuit, direct.clone(), &config);
                    let _ = direct.report();
                }
            }
        }
    }
}

#[test]
fn rd2_and_direct_agree_on_race_existence_per_circuit() {
    // Both are precise detectors (Theorem 5.1); on the same *program* the
    // interleavings differ between runs, but circuits are either
    // structurally racy (shared chunk metadata) or structurally race-free
    // (queries only / single worker), so existence agrees.
    let config = CircuitConfig::smoke();
    for circuit in Circuit::ALL {
        let rd2 = Arc::new(Rd2::new());
        run_circuit(circuit, rd2.clone(), &config);
        let direct = Arc::new(Direct::new());
        run_circuit(circuit, direct.clone(), &config);
        let structurally_racy = matches!(
            circuit,
            Circuit::ComplexConcurrency
                | Circuit::ComplexConcurrencyAlt
                | Circuit::InsertCentricConcurrency
        );
        assert_eq!(
            rd2.report().total() > 0,
            structurally_racy,
            "{circuit}: rd2 = {:?}",
            rd2.report()
        );
        assert_eq!(
            direct.report().total() > 0,
            structurally_racy,
            "{circuit}: direct = {:?}",
            direct.report()
        );
    }
}

#[test]
fn snitch_shape_matches_paper_row() {
    let config = SnitchConfig::smoke();
    let rd2 = Arc::new(Rd2::new());
    run_snitch(rd2.clone(), &config);
    let ft = Arc::new(FastTrack::new());
    run_snitch(ft.clone(), &config);
    // RD2 reports more races than FastTrack, on at most 2 objects.
    assert!(rd2.report().total() > ft.report().total());
    assert!(rd2.report().distinct() <= 2);
    assert!(rd2.report().total() > 0);
}

#[test]
fn table_rows_have_consistent_measurements() {
    let row = run_circuit_row(Circuit::InsertCentricConcurrency, &CircuitConfig::smoke());
    for m in [&row.uninstrumented, &row.fasttrack, &row.rd2] {
        assert!(m.total_ops > 0);
        assert!(m.elapsed.as_nanos() > 0);
    }
    assert!(row.uninstrumented.races.is_empty());
    assert!(row.rd2.races.total() > 0);

    let snitch = run_snitch_row(&SnitchConfig::smoke());
    assert!(snitch.in_seconds);
    assert!(snitch.rd2.races.total() > snitch.fasttrack.races.total());
}

#[test]
fn connections_example_under_all_detectors() {
    let hosts: &[&'static str] = &["a.com", "b.com", "a.com", "c.com", "b.com"];
    // RD2 flags the duplicates.
    let rd2 = Arc::new(Rd2::new());
    let r = run_connections(rd2.clone(), hosts);
    assert_eq!(r.connections, 3);
    assert_eq!(r.created, 5);
    assert!(rd2.report().total() >= 2, "{:?}", rd2.report());

    // The direct detector also flags them.
    let direct = Arc::new(Direct::new());
    run_connections(direct.clone(), hosts);
    assert!(direct.report().total() >= 2);

    // FastTrack sees nothing: the dictionary is internally synchronized.
    let ft = Arc::new(FastTrack::new());
    run_connections(ft.clone(), hosts);
    assert!(ft.report().is_empty());
}

#[test]
fn repeated_runs_do_not_accumulate_state_across_detectors() {
    // A fresh detector per run: reports start empty and runs are
    // independent.
    for _ in 0..3 {
        let rd2 = Arc::new(Rd2::new());
        assert!(rd2.report().is_empty());
        run_connections(rd2.clone(), &["x.com", "x.com"]);
        assert!(rd2.report().total() >= 1);
    }
}
