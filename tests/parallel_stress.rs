//! Concurrency stress tests for the sharded parallel pipeline.
//!
//! [`ParallelRd2`]'s ingress is driven here by real application threads
//! through the instrumented runtime while its detector workers run on
//! their own threads — producers and consumers genuinely overlap. The
//! assertions are all *invariant under scheduling*:
//!
//! 1. workloads whose race count is the same in every linearization
//!    (disjoint keys → zero; k pairwise-concurrent same-key writes →
//!    2k−3; lock-protected writers → zero),
//! 2. supervised healing: a panic injected into one detector worker
//!    mid-stream is healed from the worker's last snapshot — the poison
//!    is skipped, no races are invented, no shard is poisoned, and the
//!    pipeline keeps answering reports without ever entering the
//!    degraded quarantine,
//! 3. replay determinism: the merged report — including the order of its
//!    retained sample records — is identical over 50 replays of one
//!    recorded trace at every worker count.

use std::sync::Arc;

use crace::model::replay;
use crace::{
    Action, Analysis, Event, Isolated, MonitoredDict, ObjId, ParallelRd2, Runtime, ThreadId, Trace,
    Value,
};

const THREADS: u32 = 8;
const OPS_PER_THREAD: i64 = 200;
const WORKERS: usize = 4;

/// Silences panic backtraces for the duration of a fail-open test (the
/// injected worker panic is caught inside the pipeline, but the default
/// hook would still print).
fn quiet() -> impl Drop {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            let _ = std::panic::take_hook();
        }
    }
    std::panic::set_hook(Box::new(|_| {}));
    Restore
}

/// Disjoint keys: every thread owns its own key, so all cross-thread
/// pairs commute and *no* linearization contains a race — regardless of
/// how producer batches interleave with worker processing.
#[test]
fn concurrent_disjoint_writers_never_race() {
    let pipeline = Arc::new(ParallelRd2::new(WORKERS));
    let rt = Runtime::new(pipeline.clone());
    let main = rt.main_ctx();
    let dict = MonitoredDict::new(&rt);
    for t in 0..THREADS {
        dict.put(&main, Value::Int(i64::from(t)), Value::Int(-1));
    }

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let dict = dict.clone();
        handles.push(rt.spawn(&main, move |ctx| {
            for i in 0..OPS_PER_THREAD {
                dict.put(ctx, Value::Int(i64::from(t)), Value::Int(i));
                dict.get(ctx, Value::Int(i64::from(t)));
            }
        }));
    }
    for h in handles {
        h.join(&main).unwrap();
    }

    let report = pipeline.report();
    assert!(report.is_empty(), "disjoint keys cannot race: {report:?}");
    assert!(!pipeline.degraded());
}

/// k pairwise-concurrent writers of the *same* key race exactly `2k−3`
/// times in every schedule (see `rd2_stress.rs` for the derivation), and
/// the sharded pipeline must agree in all ten rounds even though each
/// round's producer interleaving differs.
#[test]
fn same_key_writers_race_exactly_2k_minus_3_times_through_the_pipeline() {
    for round in 0..10u64 {
        let pipeline = Arc::new(ParallelRd2::new(WORKERS));
        let rt = Runtime::new(pipeline.clone());
        let main = rt.main_ctx();
        let dict = MonitoredDict::new(&rt);

        let mut handles = Vec::new();
        for t in 0..THREADS {
            let dict = dict.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                dict.put(ctx, Value::Int(7), Value::Int(i64::from(t)));
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }

        let report = pipeline.report();
        assert_eq!(
            report.total(),
            2 * u64::from(THREADS) - 3,
            "round {round}: {report:?}"
        );
        assert_eq!(report.distinct(), 1, "round {round}: one race class");
    }
}

/// Mutex-protected same-key writers: the tracked lock orders all critical
/// sections, and the ingress broadcasts every acquire/release in global
/// order, so no shard may ever report a race.
#[test]
fn lock_protected_writers_never_race_through_the_pipeline() {
    let pipeline = Arc::new(ParallelRd2::new(WORKERS));
    let rt = Runtime::new(pipeline.clone());
    let main = rt.main_ctx();
    let dict = MonitoredDict::new(&rt);
    let mutex = Arc::new(rt.new_mutex());

    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let dict = dict.clone();
        let mutex = Arc::clone(&mutex);
        handles.push(rt.spawn(&main, move |ctx| {
            for _ in 0..50 {
                let _g = mutex.lock(ctx);
                let v = dict.get(ctx, Value::Int(1)).as_int().unwrap_or(0);
                dict.put(ctx, Value::Int(1), Value::Int(v + 1));
            }
        }));
    }
    for h in handles {
        h.join(&main).unwrap();
    }
    assert_eq!(
        dict.get_untracked(&Value::Int(1)),
        Value::Int(i64::from(THREADS) * 50)
    );
    let report = pipeline.report();
    assert!(report.is_empty(), "{report:?}");
}

/// Supervised healing under load: detector workers are poisoned
/// mid-stream while real producer threads keep hammering both a racy
/// shared key and safe private keys. With supervision on (the default),
/// each poisoned worker rebuilds from its last snapshot, skips only the
/// poison, and keeps detecting: nothing real is shed, no race may be
/// *invented*, everything reported must be the one genuine shared-key
/// class, and the pipeline (wrapped in [`Isolated`], as the chaos plane
/// runs it) never enters the degraded quarantine.
#[test]
fn injected_worker_panic_under_load_heals_without_degrading() {
    let _quiet = quiet();
    let shield = Arc::new(Isolated::new(ParallelRd2::new(WORKERS)));
    let rt = Runtime::new(shield.clone());
    let main = rt.main_ctx();
    let dict = MonitoredDict::new(&rt);

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let dict = dict.clone();
        handles.push(rt.spawn(&main, move |ctx| {
            for i in 0..OPS_PER_THREAD {
                if i % 4 == 0 {
                    dict.put(ctx, Value::Int(0), Value::Int(i)); // racy shared key
                } else {
                    dict.put(ctx, Value::Int(100 + i64::from(t)), Value::Int(i));
                }
            }
        }));
    }
    // Poison the worker owning the dictionary's shard while the producers
    // above are still running.
    shield.inner().inject_worker_panic(0);
    shield.inner().inject_worker_panic(1);
    for h in handles {
        h.join(&main).unwrap();
    }

    let report = shield.report();
    // Healing skips only the poison messages themselves, so no real race
    // may be lost *or* fabricated: exactly the genuine shared-key class.
    assert_eq!(
        report.distinct(),
        1,
        "exactly the shared-key class: {report:?}"
    );
    let stats = shield.inner().stats();
    assert!(
        !shield.inner().degraded() && stats.workers.iter().all(|w| !w.degraded),
        "healed workers must not quarantine the pipeline: {stats:?}"
    );
    assert_eq!(
        stats.workers.iter().map(|w| w.panics).sum::<u64>(),
        2,
        "both injected panics must be accounted: {stats:?}"
    );
    assert_eq!(
        stats.workers.iter().map(|w| w.respawns).sum::<u64>(),
        2,
        "each poisoned worker must heal exactly once: {stats:?}"
    );
    assert!(
        !shield.quarantined(),
        "worker panics must not trip the outer shield"
    );
    // The pipeline still answers (fail-open), repeatedly.
    assert_eq!(shield.report(), report);
}

/// Builds a deliberately messy recorded trace: forks, joins, locks, racy
/// and private keys over several objects.
fn messy_trace() -> (Trace, Vec<ObjId>) {
    use crace::LockId;
    let spec = crace::spec::builtin::dictionary();
    let put = spec.method_id("put").unwrap();
    let get = spec.method_id("get").unwrap();
    let objects: Vec<ObjId> = (1..=6).map(ObjId).collect();
    let mut trace = Trace::new();
    for t in 1..=6u32 {
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(t),
        });
    }
    for i in 0..600i64 {
        let tid = ThreadId(1 + (i as u32 * 7 + i as u32 / 5) % 6);
        let obj = objects[(i as usize * 5 + 3) % objects.len()];
        match i % 5 {
            0 => trace.push(Event::Action {
                tid,
                action: Action::new(obj, put, vec![Value::Int(0), Value::Int(i)], Value::Nil),
            }),
            1 => trace.push(Event::Action {
                tid,
                action: Action::new(obj, get, vec![Value::Int(0)], Value::Int(i)),
            }),
            2 => {
                trace.push(Event::Acquire {
                    tid,
                    lock: LockId(0),
                });
                trace.push(Event::Action {
                    tid,
                    action: Action::new(obj, put, vec![Value::Int(1), Value::Int(i)], Value::Nil),
                });
                trace.push(Event::Release {
                    tid,
                    lock: LockId(0),
                });
            }
            _ => trace.push(Event::Action {
                tid,
                action: Action::new(
                    obj,
                    put,
                    vec![Value::Int(1000 + i64::from(tid.0)), Value::Int(i)],
                    Value::Nil,
                ),
            }),
        }
    }
    (trace, objects)
}

/// Replay determinism: the merged report — a value including the retained
/// sample records and their order — must be identical over 50 replays of
/// the same trace, at one worker and at several, even though worker
/// scheduling differs every run.
#[test]
fn merged_report_is_identical_over_fifty_replays() {
    let (trace, objects) = messy_trace();
    let compiled = Arc::new(crace::translate(&crace::spec::builtin::dictionary()).unwrap());
    for workers in [1usize, WORKERS] {
        let reference = {
            let pipeline = ParallelRd2::new(workers);
            for &obj in &objects {
                pipeline.register(obj, Arc::clone(&compiled));
            }
            replay(&trace, &pipeline)
        };
        assert!(reference.total() > 0, "workload must race");
        for run in 0..49 {
            let pipeline = ParallelRd2::new(workers);
            for &obj in &objects {
                pipeline.register(obj, Arc::clone(&compiled));
            }
            let report = replay(&trace, &pipeline);
            assert_eq!(
                report, reference,
                "run {run}, {workers} worker(s): merge order is not deterministic"
            );
        }
    }
}
