//! Binary-level tests for `crace serve` / `crace submit`: the same
//! process boundary CI's smoke job exercises. A real daemon child
//! process, real sockets, real exit codes.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_crace")
}

/// A running `crace serve` child, killed on drop so a failing assertion
/// never leaks a daemon.
struct Daemon {
    child: Child,
    addr: String,
    #[allow(dead_code)]
    dir: PathBuf,
}

impl Daemon {
    /// Spawns `crace serve --tcp 127.0.0.1:0` with extra args, waits for
    /// the addr file, returns the handle.
    fn spawn(extra: &[&str]) -> Daemon {
        let dir = std::env::temp_dir().join(format!(
            "craced-test-{}-{}",
            std::process::id(),
            extra.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let addr_file = dir.join("addr");
        let child = Command::new(bin())
            .arg("serve")
            .args(["--tcp", "127.0.0.1:0"])
            .args(["--addr-file", addr_file.to_str().unwrap()])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn crace serve");
        let deadline = Instant::now() + Duration::from_secs(20);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                let text = text.trim().to_string();
                if !text.is_empty() {
                    break text;
                }
            }
            assert!(
                Instant::now() < deadline,
                "daemon never wrote its addr file"
            );
            std::thread::sleep(Duration::from_millis(20));
        };
        Daemon { child, addr, dir }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn fixture() -> &'static str {
    "crates/cli/tests/data/fig3.framed.trace"
}

fn submit(daemon: &Daemon, args: &[&str]) -> std::process::Output {
    Command::new(bin())
        .arg("submit")
        .args(args)
        .args(["--tcp", &daemon.addr])
        .output()
        .expect("run crace submit")
}

/// The CI smoke path: submit the fixture, get exit 3 (races found) and a
/// report byte-identical to offline `crace replay --json`.
#[test]
fn submit_exits_3_with_the_exact_replay_report() {
    let daemon = Daemon::spawn(&[]);
    let offline = Command::new(bin())
        .args(["replay", fixture(), "--spec", "dictionary", "--json"])
        .output()
        .expect("run crace replay");
    assert!(offline.status.code() == Some(3), "fig3 has a race");

    let streamed = submit(
        &daemon,
        &[
            fixture(),
            "--spec",
            "dictionary",
            "--session",
            "smoke",
            "--workers",
            "2",
            "--json",
        ],
    );
    assert_eq!(
        streamed.status.code(),
        Some(3),
        "submit must exit 3 on races"
    );
    assert_eq!(
        String::from_utf8_lossy(&streamed.stdout),
        String::from_utf8_lossy(&offline.stdout),
        "daemon-streamed report must equal `crace replay --json` byte-for-byte"
    );
}

/// `--tolerate-truncation` through the daemon path: a torn trace file is
/// refused with exit 6 by default, and with the flag the valid prefix
/// streams and the report matches tolerant offline replay.
#[test]
fn tolerate_truncation_streams_the_valid_prefix() {
    let daemon = Daemon::spawn(&[]);
    let torn_path =
        std::env::temp_dir().join(format!("fig3-torn-{}.framed.trace", std::process::id()));
    let full = std::fs::read_to_string(fixture()).unwrap();
    // Chop into the final record: bytes arrive, the record never completes.
    std::fs::write(&torn_path, &full[..full.len() - 5]).unwrap();

    let refused = submit(
        &daemon,
        &[torn_path.to_str().unwrap(), "--spec", "dictionary"],
    );
    assert_eq!(
        refused.status.code(),
        Some(6),
        "a torn file without the flag is exit 6: {}",
        String::from_utf8_lossy(&refused.stderr)
    );

    let tolerated = submit(
        &daemon,
        &[
            torn_path.to_str().unwrap(),
            "--spec",
            "dictionary",
            "--tolerate-truncation",
            "--session",
            "tolerant",
            "--json",
        ],
    );
    let offline = Command::new(bin())
        .args([
            "replay",
            torn_path.to_str().unwrap(),
            "--spec",
            "dictionary",
            "--tolerate-truncation",
            "--json",
        ])
        .output()
        .expect("run crace replay");
    assert_eq!(tolerated.status.code(), offline.status.code());
    assert_eq!(
        String::from_utf8_lossy(&tolerated.stdout),
        String::from_utf8_lossy(&offline.stdout),
        "tolerant daemon submit must equal tolerant offline replay"
    );
    assert!(
        String::from_utf8_lossy(&tolerated.stderr).contains("torn"),
        "the recovery warning must be surfaced"
    );
    let _ = std::fs::remove_file(&torn_path);
}

/// `--record-dir` captures each session to its own framed file; a reused
/// session name claims a `-2` suffix instead of clobbering or
/// interleaving (the single-writer audit, at the service boundary).
#[test]
fn concurrent_session_captures_never_share_a_file() {
    let record_dir = std::env::temp_dir().join(format!("craced-caps-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&record_dir);
    let daemon = Daemon::spawn(&["--record-dir", record_dir.to_str().unwrap()]);

    // Same session name, twice, sequentially: two distinct files.
    for _ in 0..2 {
        let out = submit(
            &daemon,
            &[fixture(), "--spec", "dictionary", "--session", "cap"],
        );
        assert_eq!(out.status.code(), Some(3));
    }
    // Different names, concurrently: one file each.
    let concurrent: Vec<_> = (0..3)
        .map(|i| {
            let addr = daemon.addr.clone();
            std::thread::spawn(move || {
                Command::new(bin())
                    .arg("submit")
                    .args([fixture(), "--spec", "dictionary"])
                    .args(["--session", &format!("par-{i}")])
                    .args(["--chunk", "7"])
                    .args(["--tcp", &addr])
                    .output()
                    .expect("run crace submit")
            })
        })
        .collect();
    for handle in concurrent {
        assert_eq!(handle.join().unwrap().status.code(), Some(3));
    }

    let spec = crace::spec::builtin::dictionary();
    let original =
        crace::cli::parse_trace(&std::fs::read_to_string(fixture()).unwrap(), &spec).unwrap();
    let mut expected: Vec<String> = vec!["cap".into(), "cap-2".into()];
    expected.extend((0..3).map(|i| format!("par-{i}")));
    for name in expected {
        let path = record_dir.join(format!("{name}.framed.trace"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("capture `{}` missing: {e}", path.display()));
        let captured = crace::cli::parse_trace(&text, &spec)
            .unwrap_or_else(|e| panic!("capture `{name}` is damaged (interleaved writes?): {e}"));
        assert_eq!(
            captured, original,
            "capture `{name}` diverged from the stream"
        );
    }
    let _ = std::fs::remove_dir_all(&record_dir);
}

/// The `/metrics` endpoint on a daemon child: Prometheus text has TYPE
/// lines and the `crace_` prefix; the JSON rendering passes the
/// RFC 8259 validator.
#[test]
fn metrics_endpoint_serves_valid_prometheus_and_json() {
    let daemon = Daemon::spawn(&[]);
    let out = submit(
        &daemon,
        &[fixture(), "--spec", "dictionary", "--session", "m"],
    );
    assert_eq!(out.status.code(), Some(3));

    let prom = http_get(&daemon.addr, "/metrics");
    assert!(prom.starts_with("HTTP/1.1 200 OK"), "{prom:.120}");
    let prom_body = prom.split("\r\n\r\n").nth(1).unwrap_or("");
    assert!(prom_body.contains("# TYPE crace_daemon_sessions_closed counter"));
    assert!(prom_body.contains("crace_daemon_events_total 7"));

    let json = http_get(&daemon.addr, "/metrics.json");
    let json_body = json.split("\r\n\r\n").nth(1).unwrap_or("");
    crace::obs::json::validate(json_body).expect("scrape must be RFC 8259 valid");
    assert!(json_body.contains("\"daemon.races_total\": 1"));

    let missing = http_get(&daemon.addr, "/nothere");
    assert!(missing.starts_with("HTTP/1.1 404"));
}

/// Exit-code contract for an unreachable daemon: connection refused maps
/// to exit 7, with and without the retry loop.
#[test]
fn submit_to_a_dead_daemon_exits_7() {
    // Bind-then-drop: the port is real but nobody listens.
    let dead = {
        let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        sock.local_addr().unwrap().to_string()
    };
    let refused = Command::new(bin())
        .arg("submit")
        .args([fixture(), "--spec", "dictionary"])
        .args(["--tcp", &dead])
        .output()
        .expect("run crace submit");
    assert_eq!(
        refused.status.code(),
        Some(7),
        "refused connection must exit 7: {}",
        String::from_utf8_lossy(&refused.stderr)
    );

    let retried = Command::new(bin())
        .arg("submit")
        .args([fixture(), "--spec", "dictionary"])
        .args(["--retry", "2", "--backoff-ms", "10"])
        .args(["--tcp", &dead])
        .output()
        .expect("run crace submit");
    assert_eq!(
        retried.status.code(),
        Some(7),
        "exhausted retries must still exit 7"
    );
    assert!(
        String::from_utf8_lossy(&retried.stderr).contains("cannot connect"),
        "stderr must say the daemon was unreachable: {}",
        String::from_utf8_lossy(&retried.stderr)
    );
}

/// Durability telemetry at the scrape boundary: a live checkpointing
/// session exposes `checkpoint.seq` / `checkpoint.age_ms` gauges and the
/// `supervisor.respawns` counter under its `session.<name>.` prefix, and
/// the closing STATS line carries the same fields.
#[test]
fn scrape_and_stats_expose_checkpoint_and_supervisor_fields() {
    use crace::daemon::{Client, Endpoint};

    let record_dir =
        std::env::temp_dir().join(format!("craced-ckpt-scrape-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&record_dir);
    let daemon = Daemon::spawn(&[
        "--record-dir",
        record_dir.to_str().unwrap(),
        "--checkpoint-every",
        "2",
    ]);

    let spec = crace::spec::builtin::dictionary();
    let trace = crace::cli::parse_trace(&std::fs::read_to_string(fixture()).unwrap(), &spec)
        .expect("fixture parses");
    let endpoint = Endpoint::Tcp(daemon.addr.clone());
    let mut client = Client::connect(&endpoint).expect("connect");
    client
        .hello("live", "dictionary", 2, None)
        .expect("HELLO accepted");
    for event in trace.events() {
        client.send_event(event, &spec).expect("send");
    }
    // Interim REPORT forces a drain, so the scrape sees settled gauges.
    client.report().expect("interim REPORT");

    let prom = http_get(&daemon.addr, "/metrics");
    let body = prom.split("\r\n\r\n").nth(1).unwrap_or("");
    let gauge = |name: &str| -> f64 {
        body.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("scrape lacks {name}:\n{body}"))
            .parse()
            .unwrap()
    };
    assert!(
        gauge("crace_session_live_checkpoint_seq") >= 2.0,
        "checkpoint-every=2 over 7 records must have checkpointed"
    );
    assert!(gauge("crace_session_live_checkpoint_age_ms") >= 0.0);
    assert!(
        body.contains("# TYPE crace_session_live_supervisor_respawns counter"),
        "supervisor.respawns must be scraped:\n{body}"
    );

    let (_, stats) = client.bye().expect("BYE");
    assert!(stats.get("checkpoint_seq") >= 2, "STATS line: {stats:?}");
    assert!(stats.fields.contains_key("checkpoint_age_ms"));
    assert_eq!(stats.get("respawns"), 0, "healthy run respawns nothing");
    let _ = std::fs::remove_dir_all(&record_dir);
}

fn http_get(addr: &str, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect http");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: craced\r\n\r\n").as_bytes())
        .expect("write http");
    let mut body = String::new();
    let _ = stream.read_to_string(&mut body);
    body
}
