//! End-to-end tests of the observability surface of the `crace` binary:
//! exit codes, `--json`, `--metrics`, `--explain`, and `stats`. These are
//! the same invocations CI runs against the committed sample traces.

use std::path::PathBuf;
use std::process::{Command, Output};

fn data(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("crates/cli/tests/data");
    p.push(name);
    p.to_str().unwrap().to_string()
}

fn crace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_crace"))
        .args(args)
        .output()
        .expect("run crace")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

#[test]
fn replay_exits_3_when_races_found() {
    let out = crace(&["replay", &data("fig3.trace"), "--spec", "dictionary"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(stdout(&out).contains("races: 1 (1)"));
}

#[test]
fn replay_exits_0_on_race_free_traces() {
    let out = crace(&[
        "replay",
        &data("fig3_ordered.trace"),
        "--spec",
        "dictionary",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(stdout(&out).contains("races: 0 (0)"));
}

#[test]
fn replay_unknown_subcommand_exits_2() {
    let out = crace(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn replay_bad_file_exits_1() {
    let out = crace(&["replay", "/nonexistent.trace", "--spec", "dictionary"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn replay_json_is_valid_and_machine_readable() {
    let out = crace(&[
        "replay",
        &data("fig3.trace"),
        "--spec",
        "dictionary",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(3));
    let json = stdout(&out);
    crace_obs::json::validate(&json).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{json}"));
    assert!(json.contains("\"total\": 1"));
    assert!(json.contains("\"sites\": {\"o1\": 1}"));
    assert!(json.contains("\"kind\": \"commutativity\""));
}

#[test]
fn replay_metrics_json_is_valid_and_has_latency_summaries() {
    let out = crace(&[
        "replay",
        &data("fig3.trace"),
        "--spec",
        "dictionary",
        "--metrics=json",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(3));
    let text = stdout(&out);
    // Two JSON documents: the race report, then the metrics snapshot.
    // Split at the boundary between them ("}\n{") and validate both.
    let boundary = text.find("}\n{").expect("two documents") + 2;
    let (report, metrics) = text.split_at(boundary);
    crace_obs::json::validate(report).unwrap_or_else(|e| panic!("report: {e}\n{report}"));
    crace_obs::json::validate(metrics).unwrap_or_else(|e| panic!("metrics: {e}\n{metrics}"));
    assert!(metrics.contains("\"rd2-trace.events.action\": 3"));
    assert!(metrics.contains("\"rd2-trace.races.site.o1\""));
    assert!(metrics.contains("\"p99\""));
    assert!(metrics.contains("rd2-trace.clock.epoch_hit_rate"));
}

#[test]
fn replay_metrics_prom_is_well_formed() {
    let out = crace(&[
        "replay",
        &data("fig3.trace"),
        "--spec",
        "dictionary",
        "--metrics=prom",
    ]);
    assert_eq!(out.status.code(), Some(3));
    let text = stdout(&out);
    let prom_start = text.find("# TYPE").expect("prometheus section");
    let prom = &text[prom_start..];
    assert!(prom.contains("# TYPE crace_rd2_trace_events_action counter"));
    assert!(prom.contains("crace_rd2_trace_events_action 3"));
    assert!(prom.contains("quantile=\"0.99\""));
    assert!(prom.contains("crace_rd2_trace_races_site_o1 1"));
    assert!(prom.contains("crace_rd2_trace_clock_epoch_hit_rate"));
    for line in prom
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (_, value) = line.rsplit_once(' ').expect("name value");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad line: {line}"));
    }
}

#[test]
fn replay_explain_prints_provenance() {
    let out = crace(&[
        "replay",
        &data("fig3.trace"),
        "--spec",
        "dictionary",
        "--explain",
    ]);
    assert_eq!(out.status.code(), Some(3));
    let text = stdout(&out);
    assert!(text.contains("current:"), "{text}");
    assert!(text.contains("collision:"), "{text}");
    assert!(text.contains("clocks:"), "{text}");
    assert!(text.contains("last 1 event(s) on the object:"), "{text}");
    // Actions render with numeric method ids (the model layer has no
    // spec-name context): m0 is `put` in the dictionary spec.
    assert!(text.contains("τ2: o1.m0(\"a.com\", 1)/nil"), "{text}");
}

#[test]
fn stats_subcommand_renders_all_formats() {
    let pretty = crace(&["stats", &data("fig3.trace"), "--spec", "dictionary"]);
    assert_eq!(pretty.status.code(), Some(0));
    assert!(stdout(&pretty).contains("rd2-trace.events.action"));

    let json = crace(&[
        "stats",
        &data("fig3.trace"),
        "--spec",
        "dictionary",
        "--format",
        "json",
    ]);
    assert_eq!(json.status.code(), Some(0));
    crace_obs::json::validate(&stdout(&json)).expect("valid stats json");

    let prom = crace(&[
        "stats",
        &data("fig3.trace"),
        "--spec",
        "dictionary",
        "--format",
        "prom",
    ]);
    assert_eq!(prom.status.code(), Some(0));
    assert!(stdout(&prom).starts_with("# TYPE"));
}

#[test]
fn fasttrack_detector_also_reports_through_the_observer() {
    // The commutativity trace has no low-level reads/writes, so FastTrack
    // sees only synchronization — no races, exit 0, but events counted.
    let out = crace(&[
        "stats",
        &data("fig3.trace"),
        "--spec",
        "dictionary",
        "--detector",
        "fasttrack",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("fasttrack.events.fork"));
}
