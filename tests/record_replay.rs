//! Record-and-replay integration: capture a live workload run with the
//! [`Recorder`], then replay the recording into offline detectors, the
//! textual trace format, and the atomicity checker.

use crace::cli::{parse_trace, render_trace};
use crace::workloads::connections::run_connections;
use crace::{
    translate, Analysis, AtomicityChecker, Direct, MonitoredDict, Rd2, Recorder, Runtime,
    TraceDetector, Value,
};
use crace_model::replay;
use std::sync::Arc;

#[test]
fn live_run_and_recorded_replay_agree() {
    // Run the duplicate-hosts program twice with identical structure: once
    // under the online detector, once under the recorder.
    let hosts: &[&'static str] = &["a.com", "a.com", "b.com"];

    let rd2 = Arc::new(Rd2::new());
    run_connections(rd2.clone(), hosts);
    let live_report = rd2.report();

    let recorder = Arc::new(Recorder::new());
    run_connections(recorder.clone(), hosts);
    let trace = recorder.snapshot();

    // The recording contains the fork/join skeleton and all dictionary
    // actions.
    assert!(trace.iter().any(|e| e.is_sync()));
    assert_eq!(trace.iter().filter(|e| e.action().is_some()).count(), 4); // 3 puts + size

    // Replay into the offline detector: the put/put race is found again.
    let detector = TraceDetector::new();
    let spec = MonitoredDict::spec();
    let obj = trace
        .iter()
        .find_map(|e| e.action())
        .map(|a| a.obj())
        .expect("actions recorded");
    detector.register(obj, Arc::new(translate(spec).unwrap()));
    let replayed_report = replay(&trace, &detector);
    assert!(replayed_report.total() >= 1);
    assert_eq!(replayed_report.total() > 0, live_report.total() > 0);

    // The direct detector agrees on existence.
    let direct = Direct::new();
    direct.register(obj, Arc::new(spec.clone()));
    assert!(replay(&trace, &direct).total() >= 1);
}

#[test]
fn recording_round_trips_through_the_text_format() {
    let recorder = Arc::new(Recorder::new());
    run_connections(recorder.clone(), &["x.com", "y.com"]);
    let trace = recorder.snapshot();
    let spec = MonitoredDict::spec();
    let text = render_trace(&trace, spec);
    let reparsed = parse_trace(&text, spec).expect("rendered traces parse");
    assert_eq!(reparsed, trace);
}

#[test]
fn recorded_workload_feeds_the_atomicity_checker() {
    // Record a run where each thread's put is its own unary transaction —
    // unary transactions cannot be non-serializable, so no violations.
    let recorder = Arc::new(Recorder::new());
    run_connections(recorder.clone(), &["a.com", "a.com"]);
    let trace = recorder.snapshot();

    let mut checker = AtomicityChecker::new();
    let obj = trace
        .iter()
        .find_map(|e| e.action())
        .map(|a| a.obj())
        .expect("actions recorded");
    checker.register(obj, Arc::new(translate(MonitoredDict::spec()).unwrap()));
    for event in &trace {
        checker.sync(event);
    }
    assert!(checker.violations().is_empty());
    assert!(checker.num_txns() >= 3);
}

#[test]
fn recorder_preserves_lock_critical_sections() {
    // A lock-protected counter-style program: the recorded trace must
    // replay race-free because acquire/release events were captured in
    // their true serialization order.
    let recorder = Arc::new(Recorder::new());
    let rt = Runtime::new(recorder.clone());
    let main = rt.main_ctx();
    let dict = MonitoredDict::new(&rt);
    let mutex = Arc::new(rt.new_mutex());
    let mut handles = Vec::new();
    for _ in 0..3 {
        let dict = dict.clone();
        let mutex = Arc::clone(&mutex);
        handles.push(rt.spawn(&main, move |ctx| {
            for _ in 0..20 {
                let _g = mutex.lock(ctx);
                let v = dict.get(ctx, Value::Int(1)).as_int().unwrap_or(0);
                dict.put(ctx, Value::Int(1), Value::Int(v + 1));
            }
        }));
    }
    for h in handles {
        h.join(&main).unwrap();
    }
    assert_eq!(dict.get_untracked(&Value::Int(1)), Value::Int(60));

    let trace = recorder.snapshot();
    let detector = TraceDetector::new();
    detector.register(
        dict.obj(),
        Arc::new(translate(MonitoredDict::spec()).unwrap()),
    );
    let report = replay(&trace, &detector);
    assert!(report.is_empty(), "{report:?}");
}
