//! End-to-end tests of `crace lint`: exit-code contract (0 clean, 2
//! warnings only, 3 any error), one intended code per seeded-bug fixture,
//! `--json` output, and the span-carrying compile-error reports. CI runs
//! the same invocations against the committed fixtures.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("crates/cli/tests/data/lint");
    p.push(name);
    p.to_str().unwrap().to_string()
}

fn crace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_crace"))
        .args(args)
        .output()
        .expect("run crace")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

const ALL_CODES: [&str; 12] = [
    "L000", "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010", "L011",
];

/// Lints a fixture and asserts the exit code plus that exactly the intended
/// diagnostic code appears (possibly several times) and no other one does.
fn assert_fixture(name: &str, code: &str, exit: i32) {
    let out = crace(&["lint", &fixture(name)]);
    assert_eq!(out.status.code(), Some(exit), "{name}: {out:?}");
    let text = stdout(&out);
    assert!(text.contains(&format!("[{code}]")), "{name}: {text}");
    for other in ALL_CODES.iter().filter(|c| *c != &code) {
        assert!(
            !text.contains(&format!("[{other}]")),
            "{name} unexpectedly fired {other}: {text}"
        );
    }
    // The JSON view agrees on the code and the exit code.
    let out = crace(&["lint", &fixture(name), "--json"]);
    assert_eq!(out.status.code(), Some(exit), "{name} --json: {out:?}");
    let json = stdout(&out);
    crace_obs::json::validate(json.trim()).unwrap_or_else(|e| panic!("{name}: {e}\n{json}"));
    assert!(
        json.contains(&format!("\"code\":\"{code}\"")),
        "{name}: {json}"
    );
    assert!(
        json.contains(&format!("\"exit_code\":{exit}")),
        "{name}: {json}"
    );
}

#[test]
fn precise_builtins_lint_clean() {
    for name in ["dictionary", "dictionary_ext", "set", "counter"] {
        let out = crace(&["lint", name]);
        assert_eq!(out.status.code(), Some(0), "{name}: {out:?}");
        assert!(stdout(&out).contains("clean: no findings"), "{name}");
    }
}

#[test]
fn underclaiming_builtins_lint_with_l011_warnings_only() {
    // register and queue declare sound but strictly-stronger-than-weakest
    // conditions; the precision audit flags each such pair as a warning
    // (exit 2), with no other code firing.
    for name in ["register", "queue"] {
        let out = crace(&["lint", name]);
        assert_eq!(out.status.code(), Some(2), "{name}: {out:?}");
        let text = stdout(&out);
        assert!(text.contains("[L011]"), "{name}: {text}");
        for other in ALL_CODES.iter().filter(|c| **c != "L011") {
            assert!(
                !text.contains(&format!("[{other}]")),
                "{name} unexpectedly fired {other}: {text}"
            );
        }
        assert!(text.contains("crace synth"), "{name}: {text}");
    }
}

#[test]
fn lint_max_actions_budget_is_a_spanned_error() {
    // A tiny budget turns the realized-execution audit into a spanned
    // L010 error naming the flag, never a silent truncation; a generous
    // budget restores the clean verdict.
    let out = crace(&["lint", "dictionary", "--max-actions", "100"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("[L010]"), "{text}");
    assert!(text.contains("--max-actions"), "{text}");
    let out = crace(&["lint", "dictionary", "--max-actions", "10000"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn asymmetric_rule_fires_l003() {
    assert_fixture("asymmetric.spec", "L003", 3);
}

#[test]
fn non_ecl_formula_fires_l001() {
    assert_fixture("non_ecl.spec", "L001", 3);
}

#[test]
fn subsumed_conjunct_fires_l005() {
    assert_fixture("subsumed.spec", "L005", 2);
}

#[test]
fn dead_conjunct_fires_l006() {
    assert_fixture("dead_conjunct.spec", "L006", 2);
}

#[test]
fn missing_pair_fires_l008() {
    assert_fixture("missing_pair.spec", "L008", 2);
}

#[test]
fn unsound_commute_claim_fires_l010() {
    assert_fixture("unsound.spec", "L010", 3);
}

#[test]
fn disagreeing_orientations_fire_l004() {
    assert_fixture("orientation.spec", "L004", 3);
}

#[test]
fn lint_reports_carets_for_spanned_findings() {
    let out = crace(&["lint", &fixture("asymmetric.spec")]);
    let text = stdout(&out);
    assert!(text.contains("line 4"), "{text}");
    assert!(text.contains('^'), "{text}");
}

#[test]
fn lint_summary_reports_conflict_check_bounds() {
    // Fig. 7: put triggers at most 3 conflict checks, get and size 1 each.
    let out = crace(&["lint", "dictionary"]);
    let text = stdout(&out);
    assert!(text.contains("put <= 3, get <= 1, size <= 1"), "{text}");
}

#[test]
fn lint_syntax_error_exits_3_with_rendered_span() {
    let dir = std::env::temp_dir().join("crace_lint_syntax");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.spec");
    std::fs::write(&path, "spec broken {\n  method m(;\n}\n").unwrap();
    let out = crace(&["lint", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let err = String::from_utf8(out.stderr.clone()).unwrap();
    assert!(err.contains("line 2"), "{err}");
    assert!(err.contains('^'), "{err}");
}

#[test]
fn compile_error_reports_the_offending_rule_span() {
    // `compile` on a non-ECL spec fails with a caret report pointing at the
    // rule, not a bare Debug print.
    let out = crace(&["compile", &fixture("non_ecl.spec")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = String::from_utf8(out.stderr.clone()).unwrap();
    assert!(err.contains("outside ECL"), "{err}");
    assert!(err.contains("line 4"), "{err}");
    assert!(err.contains('^'), "{err}");
}

#[test]
fn lint_unknown_option_exits_1() {
    let out = crace(&["lint", "dictionary", "--bogus"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}
