//! End-to-end tests of the chaos plane's CLI surface: `crace chaos`
//! exit codes and determinism, `crace frame` conversion, and torn-trace
//! detection/recovery through `crace replay`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn data(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("crates/cli/tests/data");
    p.push(name);
    p.to_str().unwrap().to_string()
}

fn crace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_crace"))
        .args(args)
        .output()
        .expect("run crace")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf-8 stderr")
}

fn exit(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

#[test]
fn chaos_on_racy_program_exits_3_and_is_deterministic() {
    let args = ["chaos", &data("fig3.sim"), "--seed", "7", "--trials", "10"];
    let a = crace(&args);
    let b = crace(&args);
    assert_eq!(exit(&a), 3, "fig3 races: {}", stderr(&a));
    assert_eq!(stdout(&a), stdout(&b), "chaos runs must be reproducible");
    assert!(stdout(&a).contains("faults:"));
    assert!(!stdout(&a).contains("CONTRACT VIOLATION"));
}

#[test]
fn chaos_on_race_free_program_exits_0() {
    let out = crace(&[
        "chaos",
        &data("fig3_ordered.sim"),
        "--seed",
        "3",
        "--trials",
        "10",
    ]);
    assert_eq!(
        exit(&out),
        0,
        "stdout: {}\nstderr: {}",
        stdout(&out),
        stderr(&out)
    );
}

#[test]
fn chaos_metrics_export_campaign_counters() {
    let out = crace(&[
        "chaos",
        &data("racy3.sim"),
        "--seed",
        "11",
        "--trials",
        "5",
        "--metrics=json",
    ]);
    let text = stdout(&out);
    assert!(text.contains("\"chaos.trials\": 5"), "{text}");
    assert!(text.contains("\"chaos.violations\": 0"), "{text}");
}

#[test]
fn chaos_rejects_bad_options() {
    assert_eq!(
        exit(&crace(&["chaos", &data("fig3.sim"), "--seed", "x"])),
        1
    );
    assert_eq!(exit(&crace(&["chaos", &data("fig3.sim"), "--bogus"])), 1);
}

#[test]
fn frame_round_trips_through_replay() {
    let plain = crace(&[
        "replay",
        &data("fig3.trace"),
        "--spec",
        "dictionary",
        "--json",
    ]);
    let framed = crace(&[
        "replay",
        &data("fig3.framed.trace"),
        "--spec",
        "dictionary",
        "--json",
    ]);
    assert_eq!(exit(&plain), 3);
    assert_eq!(exit(&framed), 3);
    assert_eq!(
        stdout(&plain),
        stdout(&framed),
        "framed and plain encodings of the same trace must replay identically"
    );

    // `crace frame` reproduces the committed fixture byte-for-byte.
    let converted = crace(&["frame", &data("fig3.trace"), "--spec", "dictionary"]);
    assert_eq!(exit(&converted), 0);
    let committed = std::fs::read_to_string(data("fig3.framed.trace")).unwrap();
    assert_eq!(stdout(&converted), committed);
}

#[test]
fn torn_trace_exits_6_with_a_spanned_diagnostic() {
    let committed = std::fs::read_to_string(data("fig3.framed.trace")).unwrap();
    let dir = std::env::temp_dir().join("crace-cli-chaos-test");
    std::fs::create_dir_all(&dir).unwrap();
    let torn_path = dir.join("fig3.torn.trace");
    // Tear the file mid-way through the final record, as `head -c` would.
    std::fs::write(&torn_path, &committed[..committed.len() - 9]).unwrap();
    let torn = torn_path.to_str().unwrap();

    let out = crace(&["replay", torn, "--spec", "dictionary"]);
    assert_eq!(exit(&out), 6, "stderr: {}", stderr(&out));
    let diag = stderr(&out);
    assert!(diag.contains("torn"), "{diag}");
    assert!(diag.contains("line") || diag.contains(":8:"), "{diag}");
    assert!(diag.contains("--tolerate-truncation"), "{diag}");

    // With the flag, the valid prefix replays: 6 of 7 events survive,
    // the duplicate-put race is still there, and the warning accounts
    // for the loss.
    let out = crace(&[
        "replay",
        torn,
        "--spec",
        "dictionary",
        "--tolerate-truncation",
    ]);
    assert_eq!(exit(&out), 3, "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("replaying 6 event(s)"),
        "{}",
        stdout(&out)
    );
    assert!(
        stderr(&out).contains("recovered 6 event(s)"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn truncation_at_any_point_keeps_replay_usable() {
    let committed = std::fs::read_to_string(data("fig3.framed.trace")).unwrap();
    let dir = std::env::temp_dir().join("crace-cli-chaos-test");
    std::fs::create_dir_all(&dir).unwrap();
    let header_len = committed.lines().next().unwrap().len() + 1;
    for (i, cut) in (header_len..committed.len()).step_by(7).enumerate() {
        let path = dir.join(format!("cut{i}.trace"));
        std::fs::write(&path, &committed[..cut]).unwrap();
        let out = crace(&[
            "replay",
            path.to_str().unwrap(),
            "--spec",
            "dictionary",
            "--tolerate-truncation",
        ]);
        // Recovery must always yield a replayable prefix: exit 0 (no
        // race survived the cut) or 3 (race in the prefix) — never a
        // parse failure.
        assert!(
            matches!(exit(&out), 0 | 3),
            "cut at byte {cut}: exit {} stderr {}",
            exit(&out),
            stderr(&out)
        );
    }
}

#[test]
fn usage_mentions_the_chaos_surface() {
    let out = crace(&[]);
    assert_eq!(exit(&out), 2);
    let usage = stderr(&out);
    assert!(usage.contains("crace chaos"), "{usage}");
    assert!(usage.contains("--tolerate-truncation"), "{usage}");
    assert!(usage.contains("6 torn trace"), "{usage}");
}
