//! Chaos-plane determinism and the delivered-prefix soundness contract,
//! tested across the committed fixtures and randomly generated programs.
//!
//! The contract (DESIGN.md, "Failure model & degradation contract"):
//!
//! 1. Same `(program, schedule, FaultPlan)` → bit-for-bit identical
//!    delivered trace, outcome and degradation counters, every time.
//! 2. The delivered trace's prefix up to the first fired fault equals
//!    the fault-free run's prefix — so any race report computed on that
//!    prefix is exactly what the fault-free run would have reported.
//! 3. The differential harness ([`run_chaos`]) finds no contract
//!    violations on any of these programs.

use crace::runtime::chaos::{run_chaos, ChaosConfig};
use crace::runtime::explore::replay_with_faults;
use crace::runtime::sim::{sim_dict_obj, simulate, simulate_with_faults, SimOp, SimProgram};
use crace::{replay, FaultPlan, Isolated, TraceDetector, Value};
use crace_spec::builtin;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fixture(name: &str) -> SimProgram {
    let path = format!(
        "{}/crates/cli/tests/data/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    crace::cli::parse_program(&source).expect("fixture parses")
}

fn random_program(rng: &mut StdRng) -> SimProgram {
    let threads = rng.gen_range(2..=4);
    let num_locks = rng.gen_range(0..=2);
    let scripts = (0..threads)
        .map(|_| {
            let len = rng.gen_range(1..=6);
            let mut script = Vec::new();
            let mut held: Option<usize> = None;
            for _ in 0..len {
                match rng.gen_range(0..6) {
                    0 if num_locks > 0 && held.is_none() => {
                        let l = rng.gen_range(0..num_locks);
                        script.push(SimOp::Lock(l));
                        held = Some(l);
                    }
                    1 => {
                        if let Some(l) = held.take() {
                            script.push(SimOp::Unlock(l));
                        }
                    }
                    2 | 3 => script.push(SimOp::DictPut {
                        dict: 0,
                        key: Value::Int(rng.gen_range(0..3)),
                        value: Value::Int(rng.gen_range(0..100)),
                    }),
                    4 => script.push(SimOp::DictGet {
                        dict: 0,
                        key: Value::Int(rng.gen_range(0..3)),
                    }),
                    _ => script.push(SimOp::DictSize { dict: 0 }),
                }
            }
            if let Some(l) = held {
                script.push(SimOp::Unlock(l));
            }
            script
        })
        .collect();
    SimProgram {
        num_dicts: 1,
        num_locks,
        threads: scripts,
    }
}

/// Satellite requirement: the same `(program, schedule, FaultPlan)`
/// triple produces identical race reports and degradation counters
/// across 50 runs.
#[test]
fn fifty_runs_of_one_chaos_triple_are_identical() {
    let program = fixture("racy3.sim");
    let plan = FaultPlan::seeded(99, 24, 3);
    let (reference_trace, reference_outcome) = simulate_with_faults(&program, 99, &plan);
    let reference_report = {
        let d = armed(&program);
        replay(&reference_trace, &d).to_json()
    };
    for run in 0..50 {
        let (trace, outcome) = simulate_with_faults(&program, 99, &plan);
        assert_eq!(trace, reference_trace, "run {run}: trace diverged");
        assert_eq!(outcome, reference_outcome, "run {run}: outcome diverged");
        assert_eq!(
            outcome.degradation, reference_outcome.degradation,
            "run {run}: degradation counters diverged"
        );
        let d = armed(&program);
        assert_eq!(
            replay(&trace, &d).to_json(),
            reference_report,
            "run {run}: race report diverged"
        );
        // And the recorded schedule replays to the same run.
        let (replayed, routcome) = replay_with_faults(&program, &outcome.schedule, &plan);
        assert_eq!(replayed, reference_trace, "run {run}: replay diverged");
        assert_eq!(routcome, reference_outcome);
    }
}

fn armed(program: &SimProgram) -> Isolated<TraceDetector> {
    let d = TraceDetector::new();
    let spec = builtin::dictionary();
    for dict in 0..program.num_dicts {
        d.register_spec(sim_dict_obj(dict), &spec).unwrap();
    }
    Isolated::new(d)
}

/// Satellite requirement: prefix-differential over the fig3 and racy3
/// fixtures — the faulty run's delivered prefix replays to the same
/// report as the fault-free run truncated at the same point.
#[test]
fn prefix_differential_over_committed_fixtures() {
    for name in ["fig3.sim", "fig3_ordered.sim", "racy3.sim"] {
        let program = fixture(name);
        for seed in 0..25u64 {
            let plain = simulate(&program, seed);
            let plan = FaultPlan::seeded(seed ^ 0xC0FFEE, 24, 2);
            let (trace, outcome) = simulate_with_faults(&program, seed, &plan);
            let k = outcome
                .first_fault_index
                .map(|k| k as usize)
                .unwrap_or(trace.len())
                .min(trace.len())
                .min(plain.len());
            assert_eq!(
                &trace.events()[..k],
                &plain.events()[..k],
                "{name} seed {seed}: delivered prefix diverged"
            );
            let faulty = armed(&program);
            let clean = armed(&program);
            let mut faulty_prefix = crace::Trace::new();
            let mut clean_prefix = crace::Trace::new();
            for e in &trace.events()[..k] {
                faulty_prefix.push(e.clone());
            }
            for e in &plain.events()[..k] {
                clean_prefix.push(e.clone());
            }
            assert_eq!(
                replay(&faulty_prefix, &faulty).to_json(),
                replay(&clean_prefix, &clean).to_json(),
                "{name} seed {seed}: prefix reports diverged"
            );
            assert!(!faulty.quarantined(), "detector panicked on a prefix");
        }
    }
}

/// The differential harness itself finds no contract violations across
/// fixtures and random programs — and stays deterministic.
#[test]
fn chaos_campaigns_uphold_the_contract_on_random_programs() {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut programs: Vec<SimProgram> = vec![fixture("fig3.sim"), fixture("fig3_ordered.sim")];
    for _ in 0..10 {
        programs.push(random_program(&mut rng));
    }
    for (i, program) in programs.iter().enumerate() {
        let cfg = ChaosConfig {
            seed: 1000 + i as u64,
            trials: 10,
            faults: 2,
            workers: 0,
        };
        let report = run_chaos(program, &cfg);
        assert!(
            report.ok(),
            "program {i}: contract violations: {:?}",
            report.violations
        );
        assert_eq!(
            report,
            run_chaos(program, &cfg),
            "program {i}: nondeterministic"
        );
    }
}
