//! End-to-end tests of `crace explore`: exit codes, determinism (no
//! seed anywhere), DPOR-vs-brute-force schedule counts via `--metrics`,
//! the fig. 3 regressions, and the shrink → replay pipeline on the
//! committed fixtures.

use std::path::PathBuf;
use std::process::{Command, Output};

fn data(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("crates/cli/tests/data");
    p.push(name);
    p.to_str().unwrap().to_string()
}

fn crace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_crace"))
        .args(args)
        .output()
        .expect("run crace")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

/// Pulls one counter value out of `--metrics` pretty output.
fn metric(out: &Output, name: &str) -> u64 {
    stdout(out)
        .lines()
        .find_map(|l| {
            let mut it = l.split_whitespace();
            (it.next() == Some(name)).then(|| it.next().expect("value").parse().expect("number"))
        })
        .unwrap_or_else(|| panic!("metric `{name}` missing from {out:?}"))
}

#[test]
fn explore_finds_the_race_deterministically() {
    let a = crace(&["explore", &data("racy3.sim")]);
    let b = crace(&["explore", &data("racy3.sim")]);
    assert_eq!(a.status.code(), Some(3), "{a:?}");
    assert_eq!(stdout(&a), stdout(&b), "exploration must be seed-free");
    assert!(stdout(&a).contains("race:"));
}

#[test]
fn dpor_explores_strictly_fewer_schedules_than_brute_force() {
    let dpor = crace(&["explore", &data("racy3.sim"), "--metrics"]);
    let brute = crace(&["explore", &data("racy3.sim"), "--no-dpor", "--metrics"]);
    assert_eq!(dpor.status.code(), Some(3));
    assert_eq!(brute.status.code(), Some(3));
    let explored_dpor = metric(&dpor, "explore.schedules.explored");
    let explored_brute = metric(&brute, "explore.schedules.explored");
    assert!(
        explored_dpor < explored_brute,
        "dpor {explored_dpor} !< brute {explored_brute}"
    );
    assert!(metric(&dpor, "explore.schedules.pruned") > 0);
    assert_eq!(metric(&brute, "explore.schedules.pruned"), 0);
}

/// Fig. 3 as a scripted program: both interleavings of the two unordered
/// puts race, and the program is already minimal — the regression pins
/// the exact schedule counts and the shrunk shape.
#[test]
fn fig3_program_races_on_every_interleaving() {
    let out = crace(&["explore", &data("fig3.sim"), "--metrics"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert_eq!(metric(&out, "explore.schedules.explored"), 2);
    assert_eq!(metric(&out, "explore.schedules.racy"), 2);
    assert!(stdout(&out).contains("race: 1 race(s)"));
}

/// The lock-ordered fig. 3 variant: release→acquire edges order the
/// puts in every schedule, so exhaustive exploration finds no race —
/// the explore analogue of `replay fig3_ordered.trace` exiting 0.
#[test]
fn fig3_ordered_program_is_race_free_under_exploration() {
    let out = crace(&["explore", &data("fig3_ordered.sim"), "--metrics"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(stdout(&out).contains("no races found"));
    assert_eq!(metric(&out, "explore.schedules.racy"), 0);
    // Both acquisition orders are explored (the lock ops conflict).
    assert!(metric(&out, "explore.schedules.explored") >= 2);
}

#[test]
fn shrink_emits_a_minimal_replayable_counterexample() {
    let dir = std::env::temp_dir().join(format!("crace_explore_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let stem = dir.join("racy3");
    let stem = stem.to_str().unwrap();

    let out = crace(&["explore", &data("racy3.sim"), "--shrink", "--out", stem]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let text = stdout(&out);
    assert!(
        text.contains("shrunk to 2 op(s) on 2 thread(s)"),
        "counterexample not minimal: {text}"
    );

    // The shrunk trace replays to the same verdict: exit 3, one race.
    let min_trace = format!("{stem}.min.trace");
    let replayed = crace(&["replay", &min_trace, "--spec", "dictionary"]);
    assert_eq!(replayed.status.code(), Some(3), "{replayed:?}");
    assert!(stdout(&replayed).contains("races: 1"));

    // And the shrunk program still races when explored again.
    let min_sim = format!("{stem}.min.sim");
    let re_explored = crace(&["explore", &min_sim]);
    assert_eq!(re_explored.status.code(), Some(3), "{re_explored:?}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explore_bad_program_file_exits_1() {
    let out = crace(&["explore", "/nonexistent.sim"]);
    assert_eq!(out.status.code(), Some(1));

    let dir = std::env::temp_dir().join(format!("crace_explore_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let bad = dir.join("bad.sim");
    std::fs::write(&bad, "dicts 1\nthread\n  put 9 1 2\n").expect("write");
    let out = crace(&["explore", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr.clone()).expect("utf-8 stderr");
    assert!(stderr.contains("out of range"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explore_preemption_bound_reports_the_cut() {
    let out = crace(&[
        "explore",
        &data("racy3.sim"),
        "--no-dpor",
        "--preemption-bound",
        "0",
        "--metrics",
    ]);
    // The racing puts are found even without preemptions…
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    // …and the schedules cut by the bound are reported, not hidden.
    assert!(metric(&out, "explore.schedules.bounded") > 0);
}
