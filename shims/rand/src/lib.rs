//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the *small deterministic subset* of the rand 0.8
//! API it actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over (inclusive and exclusive) integer ranges, and
//! [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 (Steele, Lea & Flood; the seeding PRNG of
//! xoshiro/xoroshiro): a full-period 2⁶⁴ sequence that passes BigCrush, is
//! four instructions per draw, and — crucially for this repository's
//! seeded property tests and benchmark trace generators — is exactly
//! reproducible from a `u64` seed on every platform.
//!
//! Only determinism *within* this workspace matters: the sequences differ
//! from crates.io `rand`'s, which is fine because every consumer seeds its
//! own generator and asserts on behaviour, not on concrete draws.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let die = rng.gen_range(1..=6);
//! assert!((1..=6).contains(&die));
//! let idx = rng.gen_range(0..10usize);
//! assert!(idx < 10);
//! let _coin: bool = rng.gen_bool(0.5);
//! // Same seed, same sequence.
//! let mut rng2 = StdRng::seed_from_u64(42);
//! assert_eq!(rng2.gen_range(1..=6), die);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: the single primitive everything else is
/// derived from.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// sequences.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring the `rand::Rng` extension
/// trait. Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 random bits → a uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a range (the integer slice of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high]` (both ends inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// The largest representable value (used to detect full-range ends).
    const MAX: Self;

    /// Steps `high` down by one (to express `low..high` via the inclusive
    /// sampler).
    fn dec(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            const MAX: $t = <$t>::MAX;

            fn dec(self) -> $t {
                self - 1
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "empty sample range");
                // Width of [low, high] as an unsigned value; `None` means
                // the full domain, where any draw is valid.
                let span = (high as $u).wrapping_sub(low as $u);
                if span == <$u>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (span as u128) + 1;
                // Rejection sampling on the top multiple of `span`, so the
                // result is exactly uniform (no modulo bias).
                let zone = u64::MAX - ((u64::MAX as u128 + 1) % span) as u64;
                loop {
                    let draw = rng.next_u64();
                    if draw <= zone {
                        return low.wrapping_add(((draw as u128 % span) as $u) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty sample range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: SplitMix64.
    ///
    /// NOT the crates.io `StdRng` (ChaCha12) — see the crate docs for why
    /// an exact, dependency-free generator is used instead.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64: add the golden-ratio increment, then mix.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..6usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&v));
            let w = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "{heads}");
    }

    #[test]
    #[should_panic(expected = "empty sample range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5i64);
    }
}
