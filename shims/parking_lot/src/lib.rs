//! Offline stand-in for the crates.io `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the parking_lot API it uses — [`Mutex`], [`RwLock`] and
//! their guards — as thin wrappers over `std::sync`. The semantic deltas
//! that matter to callers are preserved:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no
//!   `Result`): poisoning is absorbed by taking the inner value, matching
//!   parking_lot's no-poisoning behaviour. A panic while holding a lock
//!   therefore does not cascade into every later acquisition.
//! * `Mutex::new` / `RwLock::new` are `const`, so statics keep working.
//!
//! Performance differs from the real parking_lot (std locks are heavier
//! under contention), but every algorithmic claim in this repository is
//! made against *sharding structure*, not against lock implementation
//! micro-costs — see DESIGN.md.
//!
//! # Examples
//!
//! ```
//! use parking_lot::{Mutex, RwLock};
//!
//! let m = Mutex::new(1);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 2);
//!
//! let rw = RwLock::new(vec![1, 2]);
//! assert_eq!(rw.read().len(), 2);
//! rw.write().push(3);
//! assert_eq!(rw.read().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

/// RAII guard of a locked [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// RAII guard of a read-locked [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// RAII guard of a write-locked [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with the parking_lot API (guards without
/// `Result`, no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// A reader-writer lock with the parking_lot API (guards without
/// `Result`, no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> RwLock<T> {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_provides_mutual_exclusion() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4_000);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let rw = RwLock::new(5);
        let r1 = rw.read();
        let r2 = rw.read();
        assert_eq!(*r1 + *r2, 10);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn a_panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: later acquisitions still succeed.
        assert_eq!(*m.lock(), 7);
    }
}
