//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the criterion API its benches use — `benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `Throughput`,
//! `BenchmarkId` and the `criterion_group!` / `criterion_main!` macros —
//! backed by a small, honest wall-clock harness:
//!
//! * each benchmark is auto-calibrated (the iteration count is grown until
//!   one measurement batch exceeds ~100 ms),
//! * the reported number is the **median of 5 batches** (robust against a
//!   scheduler hiccup in any single batch),
//! * with an element throughput set, per-element time is derived from the
//!   same medians.
//!
//! There are no statistical confidence intervals, HTML reports, or
//! baselines; EXPERIMENTS.md quotes these medians directly. Output goes to
//! stdout, one line per benchmark:
//!
//! ```text
//! per_event/rd2 ... 3.04 ms/iter (304 ns/elem, 5x41 iters)
//! ```
//!
//! # Examples
//!
//! ```no_run
//! use criterion::{criterion_group, criterion_main, Criterion};
//!
//! fn bench_sum(c: &mut Criterion) {
//!     let mut group = c.benchmark_group("sums");
//!     group.bench_function("naive", |b| b.iter(|| (0..1000u64).sum::<u64>()));
//!     group.finish();
//! }
//!
//! criterion_group!(benches, bench_sum);
//! criterion_main!(benches);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measurement batch.
const TARGET_BATCH: Duration = Duration::from_millis(100);

/// Number of measured batches; the median is reported.
const BATCHES: usize = 5;

/// The top-level benchmark driver (configuration carrier in the real
/// criterion; here it only needs to exist and hand out groups).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Throughput annotation: lets the harness report per-element cost.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The measured routine processes this many logical elements per
    /// iteration.
    Elements(u64),
    /// The measured routine processes this many bytes per iteration.
    Bytes(u64),
}

/// A `group/function` benchmark identifier, with an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name plus a parameter (`name/param`).
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// A named group of benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive per-element numbers for
    /// subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures `f`, which receives a [`Bencher`].
    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        self.report(&id.into(), &bencher);
        self
    }

    /// Measures `f` with an input value (criterion's parameterized form).
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        mut f: impl FnMut(&mut Bencher, &T),
    ) -> &mut Self {
        let mut bencher = Bencher::new();
        f(&mut bencher, input);
        self.report(&id.into(), &bencher);
        self
    }

    /// Ends the group (a no-op separator line, for parity with criterion).
    pub fn finish(self) {
        println!();
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let Some(m) = &bencher.measurement else {
            println!("{}/{id} ... no measurement", self.name);
            return;
        };
        let per_iter = m.median_per_iter();
        measurements::record(measurements::Record {
            group: self.name.clone(),
            id: id.to_string(),
            ns_per_iter: per_iter.as_nanos() as f64,
            elements: match self.throughput {
                Some(Throughput::Elements(n)) => Some(n),
                _ => None,
            },
        });
        let detail = match self.throughput {
            Some(Throughput::Elements(n)) if n > 0 => {
                format!(" ({}/elem,", fmt_duration(per_iter / n as u32))
            }
            Some(Throughput::Bytes(n)) if n > 0 => {
                format!(" ({}/byte,", fmt_duration(per_iter / n as u32))
            }
            _ => " (".to_string(),
        };
        println!(
            "{}/{id} ... {}/iter{detail} {BATCHES}x{} iters)",
            self.name,
            fmt_duration(per_iter),
            m.iters_per_batch,
        );
    }
}

struct Measurement {
    batch_times: Vec<Duration>,
    iters_per_batch: u64,
}

impl Measurement {
    fn median_per_iter(&self) -> Duration {
        let mut sorted = self.batch_times.clone();
        sorted.sort();
        sorted[sorted.len() / 2] / self.iters_per_batch.max(1) as u32
    }
}

/// Drives one benchmark routine: calibrates, then measures.
pub struct Bencher {
    measurement: Option<Measurement>,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher { measurement: None }
    }

    /// Calibrates and measures `routine`, retaining batch timings for the
    /// group to report. The routine's output is passed through
    /// [`black_box`] so its computation cannot be optimized away.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibration: grow the iteration count until one batch takes
        // long enough to trust the clock.
        let mut iters: u64 = 1;
        loop {
            let t = Self::time_batch(&mut routine, iters);
            if t >= TARGET_BATCH || iters >= (1 << 30) {
                break;
            }
            // Aim directly at the target, with a growth cap to smooth
            // over noisy early readings.
            let factor = (TARGET_BATCH.as_secs_f64() / t.as_secs_f64().max(1e-9)).min(16.0);
            iters = ((iters as f64 * factor).ceil() as u64).max(iters + 1);
        }
        let batch_times = (0..BATCHES)
            .map(|_| Self::time_batch(&mut routine, iters))
            .collect();
        self.measurement = Some(Measurement {
            batch_times,
            iters_per_batch: iters,
        });
    }

    fn time_batch<O>(routine: &mut impl FnMut() -> O, iters: u64) -> Duration {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        start.elapsed()
    }
}

/// Programmatic access to the harness's results — an extension over the
/// real criterion API. Every reported benchmark is appended to a process-
/// global list; a bench `main` can [`drain`](measurements::drain) it after
/// the groups ran and emit machine-readable snapshots (the repo's
/// `BENCH_per_event.json`).
pub mod measurements {
    use std::sync::Mutex;

    /// One reported benchmark measurement.
    #[derive(Clone, Debug, PartialEq)]
    pub struct Record {
        /// The benchmark group name.
        pub group: String,
        /// The benchmark id within the group (`name` or `name/param`).
        pub id: String,
        /// Median wall-clock time per iteration, in nanoseconds.
        pub ns_per_iter: f64,
        /// The group's element throughput when one was set.
        pub elements: Option<u64>,
    }

    impl Record {
        /// Median per-element time in nanoseconds, when a throughput was
        /// set (`ns_per_iter` otherwise).
        pub fn ns_per_element(&self) -> f64 {
            match self.elements {
                Some(n) if n > 0 => self.ns_per_iter / n as f64,
                _ => self.ns_per_iter,
            }
        }
    }

    static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

    pub(crate) fn record(record: Record) {
        RECORDS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(record);
    }

    /// Takes every measurement reported since the last drain.
    pub fn drain() -> Vec<Record> {
        std::mem::take(
            &mut *RECORDS
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("le", 64).to_string(), "le/64");
        assert_eq!(BenchmarkId::from_parameter("dict").to_string(), "dict");
    }

    #[test]
    fn fmt_duration_picks_unit() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn measurements_record_and_drain() {
        let _ = measurements::drain();
        measurements::record(measurements::Record {
            group: "g".into(),
            id: "f/4".into(),
            ns_per_iter: 80.0,
            elements: Some(40),
        });
        let records = measurements::drain();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].ns_per_element(), 2.0);
        assert!(measurements::drain().is_empty(), "drain must consume");
    }

    #[test]
    fn median_is_per_iteration() {
        let m = Measurement {
            batch_times: vec![
                Duration::from_millis(10),
                Duration::from_millis(30),
                Duration::from_millis(20),
            ],
            iters_per_batch: 10,
        };
        assert_eq!(m.median_per_iter(), Duration::from_millis(2));
    }
}
