//! The `crace` command-line tool.
//!
//! ```text
//! crace check   <spec-file>                 # parse a specification, show basic facts
//! crace lint    <spec-file> [--json] [--max-actions N]  # full static analysis (L000–L011)
//! crace synth   <type|all> [--universe N] [--max-actions N] [--json]
//!               [--out spec.ecl]            # synthesize weakest commutativity specs
//! crace compile <spec-file> [--dot]         # show its access points (or DOT graph)
//! crace replay  <trace-file> --spec <file> [--detector rd2|direct|fasttrack]
//!               [--workers N] [--json] [--metrics[=json|prom]] [--explain]
//!               [--sample-rate N] [--trace-out <file>] [--tolerate-truncation]
//! crace stats   <trace-file> --spec <file> [--detector …] [--format pretty|json|prom]
//! crace profile <trace-file> --spec <file> [--workers N] [--sample-rate N]
//!               [--out spans.json] [--folded out.txt]  # span-timeline profile
//! crace explore <program-file> [--no-dpor] [--max-schedules N] [--preemption-bound N]
//!               [--shrink] [--out <stem>] [--metrics[=json|prom]] [--trace-out <file>]
//! crace chaos   <program-file> [--seed N] [--trials N] [--faults N]
//!               [--workers N] [--metrics[=json|prom]] [--trace-out <file>]
//! crace bench-diff <old.json> <new.json> [--threshold PCT]  # bench regression gate
//! crace frame   <trace-file> --spec <file>  # convert to the framed format
//! crace serve   (--socket <path> | --tcp <addr>) [--workers N] [--ring N]
//!               [--grace-ms N] [--max-conns N] [--record-dir D] [--trace-dir D]
//!               [--allow-faults] [--addr-file F]   # streaming detection daemon
//! crace submit  <trace-file> --spec <name> (--socket <path> | --tcp <addr>)
//!               [--session NAME] [--workers N] [--chunk BYTES] [--json]
//!               [--tolerate-truncation]   # stream a trace to a daemon
//! crace table2  [scale]                     # regenerate Table 2
//! crace builtins                            # list builtin specifications
//! ```
//!
//! Spec files may also name a builtin (`dictionary`, `dictionary_ext`,
//! `set`, `counter`, `register`, `queue`) instead of a path.
//!
//! Exit codes: 0 success, 1 error, 2 usage, 3 races found (replay,
//! profile, explore or chaos), 4 explore found a detector invariant
//! violation, 5 chaos found a degradation-contract violation, 6 the
//! trace file is torn (truncated mid-record; `--tolerate-truncation`
//! recovers the valid prefix instead), 7 submit could not reach the
//! daemon (connection refused/reset, or lost after exhausting
//! `--retry`). `lint` has its own contract: 0 clean, 2 warnings only,
//! 3 any error. `bench-diff` exits 2 when a row regresses beyond the
//! threshold.

use crace_cli::{parse_program, parse_trace, render_program, render_trace};
use crace_core::{translate, Direct, ParallelConfig, ParallelRd2, TraceDetector, TranslateError};
use crace_fasttrack::FastTrack;
use crace_model::{replay, Analysis, Event, ObjId, Observer, RaceReport, Trace};
use crace_obs::{json::Json, Registry, Snapshot, Tracer};
use crace_spec::{builtin, Spec};
use crace_vclock::ClockStats;
use std::collections::BTreeSet;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("bench-diff") => cmd_bench_diff(&args[1..]),
        Some("explore") => cmd_explore(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("frame") => cmd_frame(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("table2") => cmd_table2(&args[1..]),
        Some("builtins") => cmd_builtins(),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  crace check   <spec-file|builtin>
  crace lint    <spec-file|builtin> [--json] [--max-actions N]
  crace synth   <type|all> [--universe N] [--max-actions N] [--json]
                [--out <file>]
  crace compile <spec-file|builtin> [--dot]
  crace replay  <trace-file> --spec <spec-file|builtin>
                [--detector rd2|direct|fasttrack] [--workers N] [--json]
                [--metrics[=json|prom]] [--explain] [--sample-rate N]
                [--trace-out <file>] [--tolerate-truncation]
  crace stats   <trace-file> --spec <spec-file|builtin>
                [--detector rd2|direct|fasttrack] [--format pretty|json|prom]
  crace profile <trace-file> --spec <spec-file|builtin> [--workers N]
                [--sample-rate N] [--out spans.json] [--folded out.txt]
  crace explore <program-file> [--no-dpor] [--max-schedules N]
                [--preemption-bound N] [--shrink] [--out <stem>]
                [--metrics[=json|prom]] [--trace-out <file>]
  crace chaos   <program-file> [--seed N] [--trials N] [--faults N]
                [--workers N] [--metrics[=json|prom]] [--trace-out <file>]
  crace bench-diff <old.json> <new.json> [--threshold PCT]
  crace frame   <trace-file> --spec <spec-file|builtin>
  crace serve   (--socket <path> | --tcp <addr>) [--workers N] [--ring N]
                [--grace-ms N] [--max-conns N] [--record-dir <dir>]
                [--trace-dir <dir>] [--checkpoint-every N]
                [--checkpoint-age-ms N] [--allow-faults] [--addr-file <file>]
  crace submit  <trace-file> --spec <spec-file|builtin>
                (--socket <path> | --tcp <addr>) [--session NAME]
                [--workers N] [--chunk BYTES] [--retry N] [--backoff-ms N]
                [--json] [--tolerate-truncation]
  crace table2  [scale]
  crace builtins

exit codes: 0 ok, 1 error, 2 usage, 3 races found, 4 invariant violation,
            5 chaos degradation-contract violation, 6 torn trace file,
            7 submit could not reach the daemon (connection refused, reset,
            or lost after exhausting --retry)
            (lint: 0 clean, 2 warnings only, 3 any error;
             bench-diff: 2 when a row regresses beyond the threshold)
";

/// Window of trailing events kept per object for `--explain`.
const EXPLAIN_WINDOW: usize = 8;

/// `on_action` span sampling period used when `--trace-out` enables
/// tracing on a serial replay — the same 1-in-64 default as the
/// observer's latency sampling.
const TRACE_SAMPLE_EVERY: u64 = 64;

/// GC sweep period used by `crace profile --workers N`, so the timeline
/// shows epoch-GC pauses alongside batch dispatch.
const PROFILE_GC_EVERY: usize = 64;

/// Reads a spec source text: a builtin's embedded source, or a file.
fn load_source(name: &str) -> Result<String, String> {
    match builtin::source(name) {
        Some(src) => Ok(src.to_string()),
        None => std::fs::read_to_string(name).map_err(|e| format!("cannot read `{name}`: {e}")),
    }
}

/// Loads a spec together with its source text, so later errors (e.g. a
/// failed translation) can point back into the offending rule.
fn load_spec(name: &str) -> Result<(Spec, String), String> {
    let source = load_source(name)?;
    let spec = crace_spec::parse(&source).map_err(|e| e.render(&source))?;
    Ok((spec, source))
}

/// Renders a [`TranslateError`] as a compiler-style report with the span of
/// the offending rule, falling back to the bare message when the spec has
/// no recorded span for it.
fn render_translate_error(e: &TranslateError, spec: &Spec, source: &str) -> String {
    let span = match e {
        TranslateError::NotEcl { m1, m2, .. } => spec
            .method_id(m1)
            .zip(spec.method_id(m2))
            .and_then(|(a, b)| spec.rule_span(a, b)),
        TranslateError::TooManyAtoms { method, .. } => spec.method_id(method).and_then(|m| {
            (0..spec.num_methods())
                .filter_map(|o| spec.rule_span(m, crace_model::MethodId(o as u32)))
                .min_by_key(|s| s.start)
        }),
    };
    match span {
        Some(span) => {
            let (line, col) = crace_spec::line_col(source, span);
            format!(
                "{e} (line {line}, column {col})\n{}",
                crace_spec::render_snippet(source, span)
            )
        }
        None => e.to_string(),
    }
}

fn cmd_builtins() -> Result<ExitCode, String> {
    for spec in builtin::all() {
        println!(
            "{:<16} {} method(s), ECL: {}",
            spec.name(),
            spec.num_methods(),
            spec.is_ecl()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_lint(args: &[String]) -> Result<ExitCode, String> {
    let name = args.first().ok_or("expected a spec file")?;
    let mut json = false;
    let mut options = crace_speclint::LintOptions::default();
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--max-actions" => {
                let n = it.next().ok_or("--max-actions needs a budget")?;
                options.max_actions = n.parse().map_err(|_| format!("bad budget `{n}`"))?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let source = load_source(name)?;
    let report = match crace_speclint::lint_with(&source, &options) {
        Ok(report) => report,
        Err(e) => {
            // Unrecoverable (syntax / method table): render and use the
            // lint error exit code.
            eprint!("{}", e.render(&source));
            return Ok(ExitCode::from(3));
        }
    };
    if json {
        println!("{}", report.to_json(&source));
    } else {
        print!("{}", report.render_pretty(&source));
    }
    Ok(ExitCode::from(report.exit_code() as u8))
}

/// Renders the synthesis reports as one JSON object (validated against
/// the crate's own RFC 8259 checker in the test suite).
fn synth_json(syntheses: &[crace_specsynth::Synthesis]) -> String {
    use crace_obs::json::escape;
    use std::fmt::Write;
    let mut out = String::from("{\"types\":[");
    for (i, s) in syntheses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"lint_exit\":{},\"pairs\":[",
            escape(&s.name),
            s.lint_exit
        );
        for (j, p) in s.pairs.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let equivalent = match p.handwritten.equivalent {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "{{\"method1\":\"{}\",\"method2\":\"{}\",\"condition\":\"{}\",\
                 \"samples\":{},\"commuting\":{},\"uncovered\":{},\
                 \"handwritten\":{{\"condition\":\"{}\",\"equivalent\":{equivalent},\
                 \"admitted\":{}}}}}",
                escape(&p.method1),
                escape(&p.method2),
                escape(&p.condition),
                p.samples,
                p.commuting,
                p.uncovered,
                escape(&p.handwritten.formula.to_string()),
                p.handwritten.admitted
            );
        }
        let _ = write!(out, "],\"source\":\"{}\"}}", escape(&s.source));
    }
    out.push_str("]}");
    out
}

/// One human-readable line per pair: the synthesized condition and how it
/// relates to the handwritten builtin.
fn synth_summary(s: &crace_specsynth::Synthesis, out: &mut String) {
    use std::fmt::Write;
    let _ = writeln!(
        out,
        "synthesized `{}`: {} pair(s), lint exit {}",
        s.name,
        s.pairs.len(),
        s.lint_exit
    );
    for p in &s.pairs {
        let verdict = if p.handwritten.equivalent == Some(true) {
            "matches handwritten".to_string()
        } else if p.handwritten.admitted < p.commuting {
            format!(
                "handwritten is stronger: rejects {} always-commuting pair(s)",
                p.commuting - p.handwritten.admitted
            )
        } else {
            "equal on all realized pairs".to_string()
        };
        let _ = writeln!(
            out,
            "  ({}, {}): {}\n      [{verdict}]",
            p.method1, p.method2, p.condition
        );
    }
}

fn cmd_synth(args: &[String]) -> Result<ExitCode, String> {
    let target = args
        .first()
        .ok_or("expected a data type (`dictionary`, `set`, …) or `all`")?
        .clone();
    let mut json = false;
    let mut out_path: Option<String> = None;
    let mut config = crace_specsynth::SynthConfig::default();
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--out" => out_path = Some(it.next().ok_or("--out needs a file")?.clone()),
            "--universe" => {
                let n = it.next().ok_or("--universe needs an integer bound")?;
                config.max_int = n.parse().map_err(|_| format!("bad bound `{n}`"))?;
                if config.max_int < 1 {
                    return Err("--universe must be at least 1".to_string());
                }
            }
            "--max-actions" => {
                let n = it.next().ok_or("--max-actions needs a budget")?;
                config.max_actions = n.parse().map_err(|_| format!("bad budget `{n}`"))?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let syntheses = if target == "all" {
        crace_specsynth::synthesize_all(&config)
    } else {
        crace_specsynth::synthesize(&target, &config).map(|s| vec![s])
    }
    .map_err(|e| e.to_string())?;

    let mut sources = String::new();
    for (i, s) in syntheses.iter().enumerate() {
        if i > 0 {
            sources.push('\n');
        }
        sources.push_str(&s.source);
    }
    if json {
        println!("{}", synth_json(&syntheses));
    }
    if let Some(path) = &out_path {
        std::fs::write(path, &sources).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        if !json {
            let mut summary = String::new();
            for s in &syntheses {
                synth_summary(s, &mut summary);
            }
            print!("{summary}");
            println!("wrote {} spec(s) to `{path}`", syntheses.len());
        }
    } else if !json {
        // Sources go to stdout (`crace synth dictionary > dict.ecl` is a
        // valid spec file); the summary goes to stderr.
        let mut summary = String::new();
        for s in &syntheses {
            synth_summary(s, &mut summary);
        }
        eprint!("{summary}");
        print!("{sources}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let name = args.first().ok_or("expected a spec file")?;
    let (spec, _) = load_spec(name)?;
    println!("spec `{}`: {} method(s)", spec.name(), spec.num_methods());
    println!("  ECL fragment: {}", spec.is_ecl());
    let missing = spec.missing_rules();
    if missing.is_empty() {
        println!("  all method pairs have commute rules");
    } else {
        println!(
            "  {} pair(s) default to `false` (never commute):",
            missing.len()
        );
        for (a, b) in missing {
            println!("    ({}, {})", spec.sig(a).name(), spec.sig(b).name());
        }
    }
    match translate(&spec) {
        Ok(compiled) => {
            let stats = compiled.stats();
            println!(
                "  translation: {} classes (from {} symbolic), max conflict degree {}",
                stats.classes, stats.raw_classes, stats.max_conflict_degree
            );
        }
        Err(e) => println!("  translation: not translatable — {e}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_compile(args: &[String]) -> Result<ExitCode, String> {
    let name = args.first().ok_or("expected a spec file")?;
    let dot = args.iter().any(|a| a == "--dot");
    let (spec, source) = load_spec(name)?;
    let compiled = translate(&spec).map_err(|e| render_translate_error(&e, &spec, &source))?;
    if dot {
        println!("graph conflicts {{");
        println!("  label=\"access-point conflicts of `{}`\";", spec.name());
        for i in 0..compiled.num_classes() {
            let class = crace_core::ClassId(i as u32);
            let shape = match compiled.kind(class) {
                crace_core::PointKind::Ds => "box",
                crace_core::PointKind::Slot => "ellipse",
            };
            println!(
                "  c{i} [label=\"{}\", shape={shape}];",
                compiled.label(class)
            );
        }
        for i in 0..compiled.num_classes() {
            let class = crace_core::ClassId(i as u32);
            for &other in compiled.conflicting(class) {
                if other.index() >= i {
                    println!("  c{i} -- c{};", other.index());
                }
            }
        }
        println!("}}");
    } else {
        print!("{compiled}");
    }
    Ok(ExitCode::SUCCESS)
}

/// Options shared by `replay` and `stats`.
struct ReplayOpts {
    trace_path: String,
    spec_name: String,
    detector: String,
}

fn parse_replay_opts<'a>(
    args: &'a [String],
    mut extra: impl FnMut(&str, &mut std::slice::Iter<'a, String>) -> Result<bool, String>,
) -> Result<ReplayOpts, String> {
    let trace_path = args.first().ok_or("expected a trace file")?.clone();
    let mut spec_name = None;
    let mut detector = "rd2".to_string();
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => spec_name = it.next().cloned(),
            "--detector" => detector = it.next().cloned().unwrap_or_default(),
            other => {
                if !extra(other, &mut it)? {
                    return Err(format!("unknown option `{other}`"));
                }
            }
        }
    }
    Ok(ReplayOpts {
        trace_path,
        spec_name: spec_name.ok_or("missing --spec")?,
        detector,
    })
}

/// The replayed detector behind one observer, plus the detector-specific
/// statistics the snapshot should carry.
struct Replayed {
    report: RaceReport,
    snapshot: Snapshot,
}

/// Feeds [`ClockStats`] into the registry under `<name>.clock.*` — the
/// epoch-hit-rate view of the adaptive representation.
fn feed_clock_stats(registry: &Registry, name: &str, stats: &ClockStats) {
    registry
        .counter(&format!("{name}.clock.epoch_updates"))
        .add(stats.epoch_updates);
    registry
        .counter(&format!("{name}.clock.promotions"))
        .add(stats.promotions);
    registry
        .counter(&format!("{name}.clock.vector_updates"))
        .add(stats.vector_updates);
    registry
        .gauge(&format!("{name}.clock.epoch_hit_rate"))
        .set(stats.epoch_hit_rate());
}

/// Replays `trace` through the named detector wrapped in an [`Observer`],
/// returning the race report and the full metrics snapshot. `workers > 0`
/// selects the sharded parallel pipeline (rd2 only). `sample_rate` is the
/// observer's 1-in-N latency sampling period (`0` disables timing).
/// When `tracer` is set, the rd2 paths additionally record span
/// timelines into it (and fold the derived timeline metrics into the
/// snapshot); `direct` and `fasttrack` are not instrumented and leave
/// the tracer empty.
#[allow(clippy::too_many_arguments)]
fn run_observed(
    trace: &Trace,
    spec: &Spec,
    source: &str,
    detector: &str,
    workers: usize,
    explain: bool,
    sample_rate: u64,
    tracer: Option<&Arc<Tracer>>,
) -> Result<Replayed, String> {
    if workers > 0 && detector != "rd2" {
        return Err(format!(
            "--workers is only supported by the rd2 detector, not `{detector}`"
        ));
    }
    Ok(match detector {
        "rd2" if workers > 0 => {
            let cfg = ParallelConfig {
                provenance_window: explain.then_some(EXPLAIN_WINDOW),
                tracer: tracer.cloned(),
                ..ParallelConfig::default()
            };
            let d = ParallelRd2::with_config(workers, cfg);
            let compiled =
                Arc::new(translate(spec).map_err(|e| render_translate_error(&e, spec, source))?);
            for obj in objects_of(trace) {
                d.register(obj, Arc::clone(&compiled));
            }
            let obs = Observer::with_sampling(d, Arc::new(Registry::new()), sample_rate);
            let report = replay(trace, &obs);
            feed_clock_stats(obs.registry(), obs.name(), &obs.inner().clock_stats());
            obs.registry()
                .counter(&format!("{}.conflict_probes", obs.name()))
                .add(obs.inner().num_probes());
            obs.inner().feed(obs.registry());
            if let Some(t) = tracer {
                t.feed_timeline(obs.registry());
            }
            Replayed {
                report,
                snapshot: obs.snapshot(),
            }
        }
        "rd2" => {
            let d = if explain {
                TraceDetector::with_provenance(EXPLAIN_WINDOW)
            } else if let Some(t) = tracer {
                TraceDetector::with_tracer(t, TRACE_SAMPLE_EVERY)
            } else {
                TraceDetector::new()
            };
            let compiled =
                Arc::new(translate(spec).map_err(|e| render_translate_error(&e, spec, source))?);
            for obj in objects_of(trace) {
                d.register(obj, Arc::clone(&compiled));
            }
            let obs = Observer::with_sampling(d, Arc::new(Registry::new()), sample_rate);
            let report = replay(trace, &obs);
            feed_clock_stats(obs.registry(), obs.name(), &obs.inner().clock_stats());
            obs.registry()
                .counter(&format!("{}.conflict_probes", obs.name()))
                .add(obs.inner().num_probes());
            if let Some(t) = tracer {
                t.feed_timeline(obs.registry());
            }
            Replayed {
                report,
                snapshot: obs.snapshot(),
            }
        }
        "direct" => {
            let d = Direct::new();
            let spec = Arc::new(spec.clone());
            for obj in objects_of(trace) {
                d.register(obj, Arc::clone(&spec));
            }
            let obs = Observer::with_sampling(d, Arc::new(Registry::new()), sample_rate);
            let report = replay(trace, &obs);
            Replayed {
                report,
                snapshot: obs.snapshot(),
            }
        }
        "fasttrack" => {
            let d = if explain {
                FastTrack::with_provenance()
            } else {
                FastTrack::new()
            };
            let obs = Observer::with_sampling(d, Arc::new(Registry::new()), sample_rate);
            let report = replay(trace, &obs);
            Replayed {
                report,
                snapshot: obs.snapshot(),
            }
        }
        other => return Err(format!("unknown detector `{other}`")),
    })
}

/// A loaded trace, plus the recovery note when `tolerate` salvaged a
/// torn file.
struct LoadedTrace {
    spec: Spec,
    spec_source: String,
    trace: Trace,
    recovery: Option<crace_cli::TornTrace>,
}

/// Why a trace failed to load: ordinary errors exit 1, a torn framed
/// file (without `--tolerate-truncation`) exits 6 with a spanned
/// diagnostic.
enum LoadFailure {
    Message(String),
    Torn(String),
}

impl From<String> for LoadFailure {
    fn from(message: String) -> LoadFailure {
        LoadFailure::Message(message)
    }
}

/// Renders a compiler-style diagnostic pointing at the line where the
/// trace file tears.
fn render_torn(path: &str, source: &str, e: &crace_cli::TraceParseError) -> String {
    let line = source.lines().nth(e.line - 1).unwrap_or("");
    let shown: String = line.chars().take(60).collect();
    let ellipsis = if shown.len() < line.len() { "…" } else { "" };
    format!(
        "{path}:{}: trace file is torn: {}\n  {} | {shown}{ellipsis}\n  \
         hint: re-run with --tolerate-truncation to replay the valid prefix",
        e.line, e.message, e.line
    )
}

fn load_trace(opts: &ReplayOpts, tolerate: bool) -> Result<LoadedTrace, LoadFailure> {
    let (spec, spec_source) = load_spec(&opts.spec_name)?;
    let trace_source = std::fs::read_to_string(&opts.trace_path)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.trace_path))?;
    let (trace, recovery) = match parse_trace(&trace_source, &spec) {
        Ok(trace) => (trace, None),
        Err(e) if e.kind == crace_cli::TraceErrorKind::Torn && tolerate => {
            crace_cli::parse_framed_tolerant(&trace_source, &spec)
        }
        Err(e) if e.kind == crace_cli::TraceErrorKind::Torn => {
            return Err(LoadFailure::Torn(render_torn(
                &opts.trace_path,
                &trace_source,
                &e,
            )));
        }
        Err(e) => return Err(LoadFailure::Message(e.to_string())),
    };
    Ok(LoadedTrace {
        spec,
        spec_source,
        trace,
        recovery,
    })
}

/// Maps a [`LoadFailure`] to the command result: torn files print their
/// diagnostic and exit 6, everything else becomes an ordinary error.
fn torn_exit(failure: LoadFailure) -> Result<ExitCode, String> {
    match failure {
        LoadFailure::Message(message) => Err(message),
        LoadFailure::Torn(diagnostic) => {
            eprintln!("error: {diagnostic}");
            Ok(ExitCode::from(6))
        }
    }
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, String> {
    let mut json = false;
    let mut metrics: Option<String> = None;
    let mut explain = false;
    let mut tolerate = false;
    let mut workers = 0usize;
    let mut sample_rate = crace_model::DEFAULT_SAMPLE_EVERY;
    let mut trace_out: Option<String> = None;
    let opts = parse_replay_opts(args, |arg, it| {
        match arg {
            "--json" => json = true,
            "--metrics" => metrics = Some("pretty".to_string()),
            "--explain" => explain = true,
            "--tolerate-truncation" => tolerate = true,
            "--workers" => {
                let n = it.next().ok_or("--workers needs a count")?;
                workers = n.parse().map_err(|_| format!("bad worker count `{n}`"))?;
            }
            "--sample-rate" => {
                let n = it
                    .next()
                    .ok_or("--sample-rate needs a period (0 disables)")?;
                sample_rate = n.parse().map_err(|_| format!("bad sample rate `{n}`"))?;
            }
            "--trace-out" => trace_out = Some(it.next().ok_or("--trace-out needs a file")?.clone()),
            _ if arg.starts_with("--metrics=") => {
                metrics = Some(arg["--metrics=".len()..].to_string());
            }
            _ => return Ok(false),
        }
        Ok(true)
    })?;
    if let Some(format) = &metrics {
        if !matches!(format.as_str(), "json" | "prom" | "pretty") {
            return Err(format!("unknown metrics format `{format}`"));
        }
    }
    let loaded = match load_trace(&opts, tolerate) {
        Ok(loaded) => loaded,
        Err(failure) => return torn_exit(failure),
    };
    let (spec, spec_source, trace) = (loaded.spec, loaded.spec_source, loaded.trace);
    if let Some(recovery) = &loaded.recovery {
        eprintln!("warning: `{}` is torn: {recovery}", opts.trace_path);
    }
    if !json {
        let pool = if workers > 0 {
            format!(" ({workers} worker(s))")
        } else {
            String::new()
        };
        println!(
            "replaying {} event(s), {} thread(s), detector `{}`{pool} …",
            trace.len(),
            trace.num_threads(),
            opts.detector
        );
    }
    let tracer = trace_out.as_ref().map(|_| Arc::new(Tracer::new()));
    let run = run_observed(
        &trace,
        &spec,
        &spec_source,
        &opts.detector,
        workers,
        explain,
        sample_rate,
        tracer.as_ref(),
    )?;
    if let (Some(path), Some(tracer)) = (&trace_out, &tracer) {
        write_span_trace(path, tracer)?;
    }

    if json {
        print!("{}", run.report.to_json());
    } else {
        println!("races: {}", run.report);
        for race in run.report.samples() {
            println!("  - {race}");
            if explain {
                if let Some(p) = &race.provenance {
                    print!("{p}");
                }
            }
        }
    }
    if let Some(format) = metrics {
        match format.as_str() {
            "json" => print!("{}", run.snapshot.to_json()),
            "prom" => print!("{}", run.snapshot.to_prometheus()),
            _ => print!("{}", run.snapshot.to_pretty()),
        }
    }
    Ok(if run.report.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    })
}

fn cmd_stats(args: &[String]) -> Result<ExitCode, String> {
    let mut format = "pretty".to_string();
    let opts = parse_replay_opts(args, |arg, it| {
        if arg == "--format" {
            format = it.next().cloned().unwrap_or_default();
            Ok(true)
        } else {
            Ok(false)
        }
    })?;
    if !matches!(format.as_str(), "json" | "prom" | "pretty") {
        return Err(format!("unknown format `{format}`"));
    }
    let loaded = match load_trace(&opts, false) {
        Ok(loaded) => loaded,
        Err(failure) => return torn_exit(failure),
    };
    let (spec, spec_source, trace) = (loaded.spec, loaded.spec_source, loaded.trace);
    let run = run_observed(
        &trace,
        &spec,
        &spec_source,
        &opts.detector,
        0,
        false,
        crace_model::DEFAULT_SAMPLE_EVERY,
        None,
    )?;
    match format.as_str() {
        "json" => print!("{}", run.snapshot.to_json()),
        "prom" => print!("{}", run.snapshot.to_prometheus()),
        _ => print!("{}", run.snapshot.to_pretty()),
    }
    Ok(ExitCode::SUCCESS)
}

fn objects_of(trace: &Trace) -> BTreeSet<ObjId> {
    trace
        .iter()
        .filter_map(|e| match e {
            Event::Action { action, .. } => Some(action.obj()),
            _ => None,
        })
        .collect()
}

/// Writes a tracer's Chrome trace-event JSON to `path` (self-checked
/// against the RFC 8259 validator first) and prints a one-line summary
/// on stderr. Open the file in `chrome://tracing` or Perfetto.
fn write_span_trace(path: &str, tracer: &Tracer) -> Result<(), String> {
    let chrome = tracer.to_chrome_json();
    crace_obs::json::validate(&chrome)
        .map_err(|e| format!("internal: chrome trace export is not valid JSON: {e}"))?;
    std::fs::write(path, &chrome).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    eprintln!(
        "trace: wrote {} span event(s) across {} lane(s) ({} dropped) to `{path}`",
        tracer.recorded(),
        tracer.lanes().len(),
        tracer.dropped()
    );
    Ok(())
}

/// Replays a trace through rd2 with span tracing on every phase and
/// exports the timeline: Chrome trace-event JSON via `--out` (stdout when
/// no output is chosen) and/or collapsed flamegraph stacks via
/// `--folded`. `--workers N` profiles the sharded parallel pipeline
/// (with epoch GC enabled so sweeps show up); the serial path records a
/// sampled `rd2.on_action` timeline (`--sample-rate`, default every
/// action).
fn cmd_profile(args: &[String]) -> Result<ExitCode, String> {
    let mut workers = 0usize;
    let mut out: Option<String> = None;
    let mut folded: Option<String> = None;
    let mut sample_rate = 1u64;
    let opts = parse_replay_opts(args, |arg, it| {
        match arg {
            "--workers" => {
                let n = it.next().ok_or("--workers needs a count")?;
                workers = n.parse().map_err(|_| format!("bad worker count `{n}`"))?;
            }
            "--sample-rate" => {
                let n = it.next().ok_or("--sample-rate needs a period")?;
                sample_rate = n.parse().map_err(|_| format!("bad sample rate `{n}`"))?;
            }
            "--out" => out = Some(it.next().ok_or("--out needs a file")?.clone()),
            "--folded" => folded = Some(it.next().ok_or("--folded needs a file")?.clone()),
            _ => return Ok(false),
        }
        Ok(true)
    })?;
    if opts.detector != "rd2" {
        return Err(format!(
            "profile instruments the rd2 detector only, not `{}`",
            opts.detector
        ));
    }
    let loaded = match load_trace(&opts, false) {
        Ok(loaded) => loaded,
        Err(failure) => return torn_exit(failure),
    };
    let compiled = Arc::new(
        translate(&loaded.spec)
            .map_err(|e| render_translate_error(&e, &loaded.spec, &loaded.spec_source))?,
    );
    let tracer = Arc::new(Tracer::new());
    let report = if workers > 0 {
        let cfg = ParallelConfig {
            gc_every: PROFILE_GC_EVERY,
            tracer: Some(Arc::clone(&tracer)),
            ..ParallelConfig::default()
        };
        let d = ParallelRd2::with_config(workers, cfg);
        for obj in objects_of(&loaded.trace) {
            d.register(obj, Arc::clone(&compiled));
        }
        replay(&loaded.trace, &d)
    } else {
        let d = TraceDetector::with_tracer(&tracer, sample_rate);
        for obj in objects_of(&loaded.trace) {
            d.register(obj, Arc::clone(&compiled));
        }
        replay(&loaded.trace, &d)
    };
    eprintln!(
        "profile: {} event(s) replayed, races: {}; {} span event(s), {} dropped",
        loaded.trace.len(),
        report,
        tracer.recorded(),
        tracer.dropped()
    );
    for lane in tracer.lanes() {
        eprintln!(
            "  lane {:<12} {} event(s), {} dropped",
            lane.name(),
            lane.len(),
            lane.dropped()
        );
    }
    if let Some(path) = &out {
        write_span_trace(path, &tracer)?;
    }
    if let Some(path) = &folded {
        std::fs::write(path, tracer.to_folded())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("trace: wrote collapsed stacks to `{path}`");
    }
    if out.is_none() && folded.is_none() {
        let chrome = tracer.to_chrome_json();
        crace_obs::json::validate(&chrome)
            .map_err(|e| format!("internal: chrome trace export is not valid JSON: {e}"))?;
        print!("{chrome}");
    }
    Ok(if report.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    })
}

/// Extracts `(id, ns_per_event)` per row from a `BENCH_per_event.json`
/// snapshot. Lenient about extra fields (`meta`, `speedup_*`), so old
/// and new snapshots may differ in schema revision.
fn load_bench_rows(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let json = crace_obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let rows = json
        .get("rows")
        .and_then(Json::as_array)
        .ok_or(format!("{path}: missing `rows` array"))?;
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let id = row
                .get("id")
                .and_then(Json::as_str)
                .ok_or(format!("{path}: row {i} has no `id`"))?;
            let ns = row
                .get("ns_per_event")
                .and_then(Json::as_f64)
                .ok_or(format!("{path}: row `{id}` has no `ns_per_event`"))?;
            Ok((id.to_string(), ns))
        })
        .collect()
}

/// Compares two bench snapshots row by row: prints the per-event-cost
/// delta for every row present in both, notes added/removed rows, and
/// exits 2 when any shared row slowed down by more than the threshold
/// (percent, default 10).
fn cmd_bench_diff(args: &[String]) -> Result<ExitCode, String> {
    let old_path = args.first().ok_or("expected <old.json> <new.json>")?;
    let new_path = args.get(1).ok_or("expected <old.json> <new.json>")?;
    let mut threshold = 10.0f64;
    let mut it = args[2..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let n = it.next().ok_or("--threshold needs a percentage")?;
                threshold = n.parse().map_err(|_| format!("bad threshold `{n}`"))?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let old = load_bench_rows(old_path)?;
    let new = load_bench_rows(new_path)?;
    println!(
        "{:<34} {:>12} {:>12} {:>8}",
        "row", "old ns/ev", "new ns/ev", "delta"
    );
    let mut regressions = 0usize;
    for (id, old_ns) in &old {
        match new.iter().find(|(nid, _)| nid == id) {
            Some((_, new_ns)) => {
                // Sub-nanosecond rows (the noop baseline) are pure jitter;
                // never flag them.
                let delta = if *old_ns >= 1.0 {
                    (new_ns - old_ns) / old_ns * 100.0
                } else {
                    0.0
                };
                let flag = if delta > threshold {
                    regressions += 1;
                    "  REGRESSION"
                } else {
                    ""
                };
                println!("{id:<34} {old_ns:>12.3} {new_ns:>12.3} {delta:>+7.1}%{flag}");
            }
            None => println!("{id:<34} {old_ns:>12.3} {:>12}  (row removed)", "-"),
        }
    }
    for (id, new_ns) in &new {
        if !old.iter().any(|(oid, _)| oid == id) {
            println!("{id:<34} {:>12} {new_ns:>12.3}  (new row)", "-");
        }
    }
    if regressions > 0 {
        eprintln!("bench-diff: {regressions} row(s) regressed beyond {threshold}%");
        Ok(ExitCode::from(2))
    } else {
        println!("bench-diff: no row regressed beyond {threshold}%");
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_explore(args: &[String]) -> Result<ExitCode, String> {
    use crace_runtime::explore::{explore_traced, shrink, ExploreConfig};

    let program_path = args.first().ok_or("expected a program file")?.clone();
    let mut cfg = ExploreConfig::default();
    let mut do_shrink = false;
    let mut out_stem: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-dpor" => cfg.dpor = false,
            "--trace-out" => trace_out = it.next().cloned(),
            "--max-schedules" => {
                let n = it.next().ok_or("--max-schedules needs a count")?;
                cfg.max_schedules = n.parse().map_err(|_| format!("bad count `{n}`"))?;
            }
            "--preemption-bound" => {
                let n = it.next().ok_or("--preemption-bound needs a count")?;
                cfg.max_preemptions = Some(n.parse().map_err(|_| format!("bad count `{n}`"))?);
            }
            "--shrink" => do_shrink = true,
            "--out" => out_stem = it.next().cloned(),
            "--metrics" => metrics = Some("pretty".to_string()),
            other => {
                if let Some(format) = other.strip_prefix("--metrics=") {
                    metrics = Some(format.to_string());
                } else {
                    return Err(format!("unknown option `{other}`"));
                }
            }
        }
    }
    if let Some(format) = &metrics {
        if !matches!(format.as_str(), "json" | "prom" | "pretty") {
            return Err(format!("unknown metrics format `{format}`"));
        }
    }

    let source = std::fs::read_to_string(&program_path)
        .map_err(|e| format!("cannot read `{program_path}`: {e}"))?;
    let program = parse_program(&source).map_err(|e| e.to_string())?;
    println!(
        "exploring {} thread(s), {} op(s), dpor {} …",
        program.threads.len(),
        program.num_ops(),
        if cfg.dpor { "on" } else { "off" }
    );

    let tracer = trace_out.as_ref().map(|_| Tracer::new());
    let report = explore_traced(&program, &cfg, tracer.as_ref());
    if let (Some(path), Some(tracer)) = (&trace_out, &tracer) {
        write_span_trace(path, tracer)?;
    }
    let mut stats = report.stats;
    println!(
        "schedules: {} explored, {} pruned, {} bounded{}",
        stats.schedules_explored,
        stats.schedules_pruned,
        stats.schedules_bounded,
        if stats.truncated { " (truncated)" } else { "" }
    );
    println!(
        "final states: {} distinct; deadlocks: {}; racy schedules: {}",
        stats.distinct_final_states, stats.deadlocks, stats.racy_schedules
    );

    if let Some((violation, witness)) = &report.violation {
        println!("INVARIANT VIOLATION: {violation}");
        println!("  schedule: {:?}", witness.schedule);
    } else if let Some(witness) = &report.race {
        println!(
            "race: {} race(s) on schedule {:?}",
            witness.races, witness.schedule
        );
        if do_shrink {
            let stem = out_stem.unwrap_or_else(|| {
                program_path
                    .strip_suffix(".sim")
                    .unwrap_or(&program_path)
                    .to_string()
            });
            let shrunk = shrink(&program, &cfg).ok_or("shrink lost the race (bound too tight?)")?;
            stats.shrink_iterations = shrunk.iterations;
            let spec = builtin::dictionary();
            let trace_path = format!("{stem}.min.trace");
            let sim_path = format!("{stem}.min.sim");
            std::fs::write(&trace_path, render_trace(&shrunk.witness.trace, &spec))
                .map_err(|e| format!("cannot write `{trace_path}`: {e}"))?;
            std::fs::write(&sim_path, render_program(&shrunk.program))
                .map_err(|e| format!("cannot write `{sim_path}`: {e}"))?;
            println!(
                "shrunk to {} op(s) on {} thread(s) in {} iteration(s)",
                shrunk.program.num_ops(),
                shrunk.program.threads.len(),
                shrunk.iterations
            );
            println!("  wrote {trace_path} and {sim_path}");
        }
    } else {
        println!("no races found");
    }

    if let Some(format) = metrics {
        let registry = Registry::new();
        stats.feed(&registry);
        let snapshot = registry.snapshot();
        match format.as_str() {
            "json" => print!("{}", snapshot.to_json()),
            "prom" => print!("{}", snapshot.to_prometheus()),
            _ => print!("{}", snapshot.to_pretty()),
        }
    }

    Ok(if report.violation.is_some() {
        ExitCode::from(4)
    } else if report.race.is_some() {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    })
}

/// Converts a trace (plain or already framed) to the framed,
/// checksummed format on stdout — the capture format `crace replay
/// --tolerate-truncation` can recover after a crash.
fn cmd_frame(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_replay_opts(args, |_, _| Ok(false))?;
    let loaded = match load_trace(&opts, false) {
        Ok(loaded) => loaded,
        Err(failure) => return torn_exit(failure),
    };
    print!("{}", crace_cli::render_framed(&loaded.trace, &loaded.spec));
    Ok(ExitCode::SUCCESS)
}

/// Parses the one endpoint flag shared by `serve` and `submit`. Returns
/// `Ok(None)` when `arg` is neither flag.
fn parse_endpoint_flag<'a>(
    arg: &str,
    it: &mut std::slice::Iter<'a, String>,
) -> Result<Option<crace_daemon::Endpoint>, String> {
    match arg {
        "--socket" => {
            let path = it.next().ok_or("--socket needs a path")?;
            Ok(Some(crace_daemon::Endpoint::Unix(path.into())))
        }
        "--tcp" => {
            let addr = it.next().ok_or("--tcp needs an address")?;
            Ok(Some(crace_daemon::Endpoint::Tcp(addr.clone())))
        }
        _ => Ok(None),
    }
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut endpoint: Option<crace_daemon::Endpoint> = None;
    let mut cfg = crace_daemon::ServerConfig {
        // A network-facing daemon takes no fault plans unless the
        // operator opts into the chaos test plane.
        allow_faults: false,
        ..crace_daemon::ServerConfig::default()
    };
    let mut addr_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(e) = parse_endpoint_flag(arg, &mut it)? {
            endpoint = Some(e);
            continue;
        }
        match arg.as_str() {
            "--workers" => {
                let n = it.next().ok_or("--workers needs a count")?;
                cfg.default_workers = n.parse().map_err(|_| format!("bad worker count `{n}`"))?;
            }
            "--ring" => {
                let n = it.next().ok_or("--ring needs a capacity")?;
                cfg.ring_capacity = n.parse().map_err(|_| format!("bad ring capacity `{n}`"))?;
            }
            "--grace-ms" => {
                let n = it.next().ok_or("--grace-ms needs a duration")?;
                let ms: u64 = n.parse().map_err(|_| format!("bad grace `{n}`"))?;
                cfg.shed_grace = std::time::Duration::from_millis(ms);
            }
            "--max-conns" => {
                let n = it.next().ok_or("--max-conns needs a count")?;
                cfg.max_connections = n.parse().map_err(|_| format!("bad bound `{n}`"))?;
            }
            "--record-dir" => {
                cfg.record_dir = Some(it.next().ok_or("--record-dir needs a directory")?.into());
            }
            "--trace-dir" => {
                cfg.trace_dir = Some(it.next().ok_or("--trace-dir needs a directory")?.into());
            }
            "--checkpoint-every" => {
                let n = it.next().ok_or("--checkpoint-every needs a record count")?;
                cfg.checkpoint_every = n.parse().map_err(|_| format!("bad record count `{n}`"))?;
            }
            "--checkpoint-age-ms" => {
                let n = it.next().ok_or("--checkpoint-age-ms needs a duration")?;
                let ms: u64 = n.parse().map_err(|_| format!("bad duration `{n}`"))?;
                cfg.checkpoint_max_age = std::time::Duration::from_millis(ms);
            }
            "--allow-faults" => cfg.allow_faults = true,
            "--addr-file" => addr_file = Some(it.next().ok_or("--addr-file needs a file")?.clone()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let endpoint = endpoint.ok_or("serve needs --socket <path> or --tcp <addr>")?;
    let server =
        crace_daemon::Server::start(&endpoint, cfg).map_err(|e| format!("cannot bind: {e}"))?;
    // The resolved endpoint (TCP port 0 becomes the real port) goes to
    // stdout and, for scripts, the --addr-file.
    println!("craced listening on {}", server.endpoint());
    if let Some(path) = addr_file {
        let bare = match server.endpoint() {
            crace_daemon::Endpoint::Unix(p) => p.display().to_string(),
            crace_daemon::Endpoint::Tcp(a) => a.clone(),
        };
        std::fs::write(&path, format!("{bare}\n")).map_err(|e| format!("--addr-file: {e}"))?;
    }
    // Serve until killed; the accept loop runs on its own thread.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// True for the IO failures that mean "the daemon is not there (yet)" —
/// the class `submit --retry` waits out, and exit code 7 reports.
fn is_conn_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::NotFound // unix socket path gone while the daemon is down
            | std::io::ErrorKind::UnexpectedEof
    )
}

/// True when a client-layer error string wraps a socket failure (the
/// daemon died mid-exchange) rather than a server `ERR` rejection.
fn is_wire_failure(message: &str) -> bool {
    [
        "write failed",
        "read failed",
        "short report",
        "expected `REPORT",
    ]
    .iter()
    .any(|p| message.starts_with(p))
}

/// Backoff jitter without a PRNG dependency: a hash of pid + wall-clock
/// nanoseconds, bounded to a quarter of the current delay.
fn backoff_jitter(delay: u64) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::process::id().hash(&mut h);
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos())
        .hash(&mut h);
    h.finish() % (delay / 4).max(1)
}

/// Connects to the daemon, spending retries from `attempts_left` on
/// connection-level failures with bounded exponential backoff + jitter.
fn connect_with_retry(
    endpoint: &crace_daemon::Endpoint,
    attempts_left: &mut u32,
    backoff_ms: u64,
) -> std::io::Result<crace_daemon::Client> {
    let mut delay = backoff_ms.max(1);
    loop {
        match crace_daemon::Client::connect(endpoint) {
            Ok(client) => return Ok(client),
            Err(e) => {
                if *attempts_left == 0 || !is_conn_error(&e) {
                    return Err(e);
                }
                *attempts_left -= 1;
                std::thread::sleep(std::time::Duration::from_millis(
                    delay + backoff_jitter(delay),
                ));
                delay = (delay * 2).min(10_000);
            }
        }
    }
}

fn cmd_submit(args: &[String]) -> Result<ExitCode, String> {
    let mut endpoint: Option<crace_daemon::Endpoint> = None;
    let mut session: Option<String> = None;
    let mut workers = 0usize;
    let mut chunk = 0usize;
    let mut retry = 0u32;
    let mut backoff_ms = 200u64;
    let mut json = false;
    let mut tolerate = false;
    let opts = parse_replay_opts(args, |arg, it| {
        if let Some(e) = parse_endpoint_flag(arg, it)? {
            endpoint = Some(e);
            return Ok(true);
        }
        match arg {
            "--session" => session = Some(it.next().ok_or("--session needs a name")?.clone()),
            "--workers" => {
                let n = it.next().ok_or("--workers needs a count")?;
                workers = n.parse().map_err(|_| format!("bad worker count `{n}`"))?;
            }
            "--chunk" => {
                let n = it.next().ok_or("--chunk needs a byte count")?;
                chunk = n.parse().map_err(|_| format!("bad chunk size `{n}`"))?;
            }
            "--retry" => {
                let n = it.next().ok_or("--retry needs a count")?;
                retry = n.parse().map_err(|_| format!("bad retry count `{n}`"))?;
            }
            "--backoff-ms" => {
                let n = it.next().ok_or("--backoff-ms needs a duration")?;
                backoff_ms = n.parse().map_err(|_| format!("bad backoff `{n}`"))?;
            }
            "--json" => json = true,
            "--tolerate-truncation" => tolerate = true,
            _ => return Ok(false),
        }
        Ok(true)
    })?;
    let endpoint = endpoint.ok_or("submit needs --socket <path> or --tcp <addr>")?;
    let loaded = match load_trace(&opts, tolerate) {
        Ok(loaded) => loaded,
        Err(failure) => return torn_exit(failure),
    };
    if let Some(recovery) = &loaded.recovery {
        eprintln!("warning: `{}` is torn: {recovery}", opts.trace_path);
    }
    // Default session name: the trace file's stem, sanitized to the
    // protocol's name alphabet, pid-suffixed so repeats don't collide.
    let session = session.unwrap_or_else(|| {
        let stem = std::path::Path::new(&opts.trace_path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "submit".to_string());
        let mut name: String = stem
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .take(40)
            .collect();
        if name.is_empty() || name.starts_with('-') {
            name.insert(0, 's');
        }
        format!("{name}-{}", std::process::id())
    });

    // Streams events[from..]; `chunk > 0` keeps the pathological-framing
    // byte dribble, re-rendered per attempt so a resume starts exactly at
    // the recovered record.
    let stream_from = |client: &mut crace_daemon::Client, from: usize| -> std::io::Result<()> {
        if chunk > 0 {
            let mut body = String::new();
            for event in &loaded.trace.events()[from..] {
                body.push_str(&crace_cli::frame_event(event, &loaded.spec));
                body.push('\n');
            }
            client.send_chunked(body.as_bytes(), chunk)
        } else {
            for event in &loaded.trace.events()[from..] {
                client.send_event(event, &loaded.spec)?;
            }
            Ok(())
        }
    };

    let mut attempts_left = retry;
    let mut client = match connect_with_retry(&endpoint, &mut attempts_left, backoff_ms) {
        Ok(client) => client,
        Err(e) if is_conn_error(&e) => {
            eprintln!("error: cannot connect to {endpoint}: {e}");
            return Ok(ExitCode::from(7));
        }
        Err(e) => return Err(format!("cannot connect to {endpoint}: {e}")),
    };
    let ok = client
        .hello(&session, &opts.spec_name, workers, None)
        .map_err(|e| format!("daemon rejected HELLO: {e}"))?;
    if !json {
        println!("{ok}");
        println!(
            "streaming {} event(s) as session `{session}` …",
            loaded.trace.len()
        );
    }
    let mut sent = 0usize;
    loop {
        // One delivery attempt; on success the session closes and we are
        // done. Any socket failure below falls through to the
        // reconnect-and-resume tail of the loop.
        let disconnect = match stream_from(&mut client, sent) {
            Ok(()) => match client.bye() {
                Ok((report, stats)) => {
                    if json {
                        print!("{report}");
                    } else {
                        println!(
                            "events={} shed={} races={} degraded={}",
                            stats.get("events"),
                            stats.get("shed_ring") + stats.get("shed_quarantine"),
                            stats.get("races"),
                            stats.get("degraded"),
                        );
                    }
                    return Ok(if stats.get("races") > 0 {
                        ExitCode::from(3)
                    } else {
                        ExitCode::SUCCESS
                    });
                }
                Err(message) if is_wire_failure(&message) => message,
                Err(message) => return Err(format!("daemon error: {message}")),
            },
            Err(e) => e.to_string(),
        };
        if attempts_left == 0 {
            eprintln!("error: connection to {endpoint} lost ({disconnect}); no retries left");
            return Ok(ExitCode::from(7));
        }
        if !json {
            eprintln!("connection lost ({disconnect}); reconnecting …");
        }
        client = match connect_with_retry(&endpoint, &mut attempts_left, backoff_ms) {
            Ok(client) => client,
            Err(e) if is_conn_error(&e) => {
                eprintln!("error: cannot reconnect to {endpoint}: {e}");
                return Ok(ExitCode::from(7));
            }
            Err(e) => return Err(format!("cannot reconnect to {endpoint}: {e}")),
        };
        match client.resume(&session, sent as u64, &opts.spec_name, workers) {
            Ok((ok_line, recovered)) => {
                sent = recovered as usize;
                if !json {
                    println!("{ok_line}");
                    println!("resuming at record {sent} …");
                }
            }
            Err(message) => {
                // The server cannot resume (no capture dir, old build, a
                // rejected RESUME closes the connection) — start the
                // session over on a fresh connection and resend all.
                if !json {
                    eprintln!("resume unavailable ({message}); resending from the start");
                }
                client = match connect_with_retry(&endpoint, &mut attempts_left, backoff_ms) {
                    Ok(client) => client,
                    Err(e) if is_conn_error(&e) => {
                        eprintln!("error: cannot reconnect to {endpoint}: {e}");
                        return Ok(ExitCode::from(7));
                    }
                    Err(e) => return Err(format!("cannot reconnect to {endpoint}: {e}")),
                };
                client
                    .hello(&session, &opts.spec_name, workers, None)
                    .map_err(|e| format!("daemon rejected HELLO: {e}"))?;
                sent = 0;
            }
        }
    }
}

fn cmd_chaos(args: &[String]) -> Result<ExitCode, String> {
    use crace_runtime::chaos::{run_chaos_traced, ChaosConfig};

    let program_path = args.first().ok_or("expected a program file")?.clone();
    let mut cfg = ChaosConfig::default();
    let mut metrics: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace-out" => trace_out = it.next().cloned(),
            "--seed" => {
                let n = it.next().ok_or("--seed needs a number")?;
                cfg.seed = n.parse().map_err(|_| format!("bad seed `{n}`"))?;
            }
            "--trials" => {
                let n = it.next().ok_or("--trials needs a count")?;
                cfg.trials = n.parse().map_err(|_| format!("bad count `{n}`"))?;
            }
            "--faults" => {
                let n = it.next().ok_or("--faults needs a count")?;
                cfg.faults = n.parse().map_err(|_| format!("bad count `{n}`"))?;
            }
            "--workers" => {
                let n = it.next().ok_or("--workers needs a count")?;
                cfg.workers = n.parse().map_err(|_| format!("bad worker count `{n}`"))?;
            }
            "--metrics" => metrics = Some("pretty".to_string()),
            other => {
                if let Some(format) = other.strip_prefix("--metrics=") {
                    metrics = Some(format.to_string());
                } else {
                    return Err(format!("unknown option `{other}`"));
                }
            }
        }
    }
    if let Some(format) = &metrics {
        if !matches!(format.as_str(), "json" | "prom" | "pretty") {
            return Err(format!("unknown metrics format `{format}`"));
        }
    }

    let source = std::fs::read_to_string(&program_path)
        .map_err(|e| format!("cannot read `{program_path}`: {e}"))?;
    let program = parse_program(&source).map_err(|e| e.to_string())?;
    println!(
        "chaos: {} trial(s) over {} thread(s), {} op(s); seed {}, {} fault(s)/trial …",
        cfg.trials,
        program.threads.len(),
        program.num_ops(),
        cfg.seed,
        cfg.faults
    );

    let tracer = trace_out.as_ref().map(|_| Tracer::new());
    let report = run_chaos_traced(&program, &cfg, tracer.as_ref());
    if let (Some(path), Some(tracer)) = (&trace_out, &tracer) {
        write_span_trace(path, tracer)?;
    }
    println!(
        "faults: {} fired across {} trial(s); {} thread(s) killed, {} abandoned, {} lock(s) poisoned",
        report.faults_fired,
        report.trials_faulted,
        report.threads_killed,
        report.threads_abandoned,
        report.locks_poisoned
    );
    println!(
        "degradation: {} dispatch(es) shed, {} delayed; races on delivered traces: {}",
        report.events_shed, report.events_delayed, report.races
    );
    for violation in &report.violations {
        println!("CONTRACT VIOLATION: {violation}");
    }

    if let Some(format) = metrics {
        let registry = Registry::new();
        report.feed(&registry);
        let snapshot = registry.snapshot();
        match format.as_str() {
            "json" => print!("{}", snapshot.to_json()),
            "prom" => print!("{}", snapshot.to_prometheus()),
            _ => print!("{}", snapshot.to_pretty()),
        }
    }

    Ok(if !report.ok() {
        ExitCode::from(5)
    } else if report.races > 0 {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_table2(args: &[String]) -> Result<ExitCode, String> {
    use crace_workloads::table2::{run_table2, Table2Config};
    let scale: u64 = args
        .first()
        .map(|s| s.parse().map_err(|_| format!("bad scale `{s}`")))
        .transpose()?
        .unwrap_or(1);
    let config = if scale == 0 {
        Table2Config::smoke()
    } else {
        let mut c = Table2Config::default();
        c.circuit.ops_per_worker *= scale as usize;
        c.snitch.updates_per_sampler *= scale as usize;
        c.snitch.rank_iterations *= scale as usize;
        c
    };
    println!("{}", run_table2(&config));
    Ok(ExitCode::SUCCESS)
}
