//! # crace — commutativity race detection
//!
//! A Rust implementation of *“Commutativity Race Detection”* (Dimitrov,
//! Raychev, Vechev, Koskinen — PLDI 2014). A **commutativity race** occurs
//! when two library-method invocations may happen in parallel (unordered
//! by happens-before) yet the library's commutativity specification does
//! not assert that they commute — a generalization of read-write data
//! races to arbitrary library interfaces.
//!
//! This facade re-exports the whole toolkit:
//!
//! * [`spec`] — the ECL specification language: parser, resolver, fragment
//!   checker, builtin specifications (dictionary/set/counter/…),
//! * [`core`] — the ECL → access-point translation and the Algorithm 1
//!   detectors ([`Rd2`], [`TraceDetector`]) plus the naive
//!   [`Direct`] baseline and a quadratic test [`oracle`](core::oracle),
//! * [`speclint`] — static analysis for specifications (`crace lint`):
//!   fragment conformance, symmetry and orientation consistency,
//!   access-point diagnostics, a differential audit of the A.3
//!   optimization passes, and a bounded-model soundness and precision
//!   audit against executable builtin semantics,
//! * [`specsynth`] — the linter's oracle run in reverse (`crace synth`):
//!   synthesizes the weakest bounded-domain ECL commutativity condition
//!   for every method pair of a type with executable reference semantics,
//! * [`fasttrack`] — the FastTrack read-write race detector baseline,
//! * [`vclock`] — vector clocks, epochs and Table 1 synchronization
//!   handling,
//! * [`runtime`] — the instrumented runtime: tracked threads and locks,
//!   monitored dictionaries/sets/counters, tracked plain variables,
//! * [`workloads`] — the paper's evaluation workloads (mini-MVStore with
//!   six Pole-Position circuits, the Cassandra snitch, the Fig. 1
//!   connections program) and the Table 2 harness,
//! * [`model`] — the shared vocabulary (values, actions, events, traces,
//!   the [`Analysis`] interface),
//! * [`obs`] — the observability layer: lock-free counters, gauges and
//!   latency histograms behind a [`Registry`], rendered as JSON or
//!   Prometheus text from a [`Snapshot`], fed by the [`Observer`] tee and
//!   surfaced as race provenance in `crace replay --explain`,
//! * [`atomicity`] — Velodrome-style atomicity checking generalized to
//!   access-point conflicts (the §8 extension),
//! * [`boost`] — abstract locking from access points (commutativity-based
//!   optimistic concurrency control),
//! * [`cli`] — the textual trace format behind the `crace` command-line
//!   tool,
//! * [`daemon`] — the multi-tenant streaming detection service
//!   (`crace serve` / `crace submit`): framed events over Unix or TCP
//!   sockets, one detector per session, live `/metrics`.
//!
//! # Quickstart
//!
//! Detect the paper's running example race in five lines:
//!
//! ```
//! use std::sync::Arc;
//! use crace::{Analysis, MonitoredDict, Rd2, Runtime, Value};
//!
//! let rd2 = Arc::new(Rd2::new());
//! let rt = Runtime::new(rd2.clone());
//! let dict = MonitoredDict::new(&rt);
//! let main = rt.main_ctx();
//!
//! let d = dict.clone();
//! let worker = rt.spawn(&main, move |ctx| {
//!     d.put(ctx, Value::str("a.com"), Value::Int(1));
//! });
//! dict.put(&main, Value::str("a.com"), Value::Int(2)); // concurrent, same key
//! worker.join(&main).unwrap();
//!
//! assert_eq!(rd2.report().total(), 1); // the commutativity race
//! ```
//!
//! Or write your own commutativity specification and compile it to access
//! points:
//!
//! ```
//! use crace::{parse_spec, translate};
//!
//! let spec = parse_spec(r#"
//!     spec bank_account {
//!         method deposit(amount);
//!         method balance() -> b;
//!         commute deposit(_), deposit(_) when true;   # deposits commute!
//!         commute deposit(_), balance() -> _ when false;
//!         commute balance() -> _, balance() -> _ when true;
//!     }
//! "#)?;
//! let compiled = translate(&spec)?;
//! assert!(compiled.stats().max_conflict_degree <= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use crace_atomicity as atomicity;
pub use crace_boost as boost;
pub use crace_cli as cli;
pub use crace_core as core;
pub use crace_daemon as daemon;
pub use crace_fasttrack as fasttrack;
pub use crace_model as model;
pub use crace_obs as obs;
pub use crace_runtime as runtime;
pub use crace_spec as spec;
pub use crace_speclint as speclint;
pub use crace_specsynth as specsynth;
pub use crace_vclock as vclock;
pub use crace_workloads as workloads;

pub use crace_atomicity::AtomicityChecker;
pub use crace_boost::LockManager;
pub use crace_core::{
    translate, ClockMode, Direct, ParallelConfig, ParallelRd2, ParallelStats, Rd2, TraceDetector,
    TranslateError,
};
pub use crace_daemon::{Client, Endpoint, Server, ServerConfig, Session, SessionOutcome};
pub use crace_fasttrack::FastTrack;
pub use crace_model::{
    replay, Action, Analysis, Event, Isolated, LocId, LockId, MethodId, NoopAnalysis, ObjId,
    Observer, RaceReport, Recorder, ThreadId, Trace, Value,
};
pub use crace_obs::{Registry, Snapshot, SpanGuard, Tracer};
pub use crace_runtime::{
    Fault, FaultInjector, FaultPlan, JoinError, MonitoredCounter, MonitoredDict, MonitoredQueue,
    MonitoredRegister, MonitoredSet, Runtime, ThreadCtx, TrackedCell, TrackedMutex,
};
pub use crace_spec::{parse as parse_spec, Spec, SpecBuilder};
pub use crace_speclint::{lint as lint_spec, lint_with, LintOptions, LintReport};
pub use crace_specsynth::{synthesize, synthesize_all, SynthConfig, SynthError, Synthesis};
pub use crace_vclock::{AdaptiveClock, ClockStats, PublishedClocks, VectorClock};
